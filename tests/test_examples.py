"""The example scripts run end-to-end (the README's promises)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(monkeypatch, capsys, script: str, argv: list[str]):
    monkeypatch.setattr(sys, "argv", [script] + argv)
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py",
                      ["sat-solver", "8000"])
    assert "IPC (max 4)" in out
    assert "execution-time breakdown" in out
    assert "L1-I misses/k-instr" in out


def test_quickstart_rejects_unknown_workload(monkeypatch, capsys):
    with pytest.raises(SystemExit):
        run_example(monkeypatch, capsys, "quickstart.py", ["minesweeper"])


def test_smt_study_single_workload(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "smt_study.py", ["sat-solver"])
    assert "IPC(SMT)" in out
    assert "sat-solver" in out


def test_custom_workload(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "custom_workload.py", [])
    assert "memcached" in out
    assert "data-serving" in out

"""Documentation is part of the public API: every module and public
class/function must carry a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_are_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name

"""Shared fixture tree for the linter tests.

``fixture_tree`` builds a miniature simulator source tree — hashing
helper, a consumer module, counter declarations, a ``CoreResult``, and
a validator pairs table — that lints *clean*.  Tests then mutate one
file to reintroduce a bug class and assert the linter catches it, so
every regression test runs against a fixture tree rather than the live
repository.
"""

from __future__ import annotations

import pathlib
import textwrap

import pytest

CLEAN_FILES: dict[str, str] = {
    "machine/hashing.py": """
        import zlib

        def stable_hash(*parts):
            h = 0
            for part in parts:
                h = zlib.crc32(repr(part).encode(), h)
            return (h * 2654435761) & 0xFFFFFFFF
        """,
    "machine/structures.py": """
        from fixture.machine.hashing import stable_hash

        def bucket(key, nbuckets):
            return stable_hash(key) % nbuckets
        """,
    "uarch/counters.py": """
        COUNTER_NAMES = (
            "cycles",
            "instructions",
            "l1i_misses",
        )
        """,
    "uarch/core.py": """
        from dataclasses import dataclass, field

        @dataclass
        class CoreResult:
            cycles: int = 0
            instructions: int = 0
            l1i_misses: int = 0
            per_thread_instructions: list = field(default_factory=list)

        def run(window):
            result = CoreResult()
            for _ in range(window):
                result.instructions += 1
                result.cycles += 1
            return result
        """,
    "cluster/clock.py": """
        import heapq

        class EventLoop:
            def __init__(self):
                self.now = 0
                self._heap = []
                self._seq = 0

            def at(self, when, action):
                heapq.heappush(self._heap, (when, self._seq, action))
                self._seq += 1

            def run(self):
                while self._heap:
                    when, _, action = heapq.heappop(self._heap)
                    self.now = when
                    action()
        """,
    "core/validate.py": """
        _BOUNDED_PAIRS = (
            ("l1i_misses", "instructions"),
        )

        def check(result):
            return [pair for pair in _BOUNDED_PAIRS
                    if getattr(result, pair[0]) > getattr(result, pair[1])]
        """,
}


def write_tree(root: pathlib.Path, files: dict[str, str]) -> pathlib.Path:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source).lstrip())
    return root


@pytest.fixture
def fixture_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    """A miniature simulator tree that lints clean."""
    return write_tree(tmp_path / "fixture", CLEAN_FILES)

"""Regression fixtures for the bug classes the linter exists to stop.

Each test lints a mutated copy of the clean fixture tree (never the
live repository), mirroring how a bad change would land in review.
"""

from __future__ import annotations

import textwrap

from repro.lint.cli import main as lint_main
from repro.lint.engine import run_lint


def mutate(tree, relpath, source):
    (tree / relpath).write_text(textwrap.dedent(source).lstrip())


def test_clean_fixture_tree_lints_clean(fixture_tree):
    assert run_lint(fixture_tree) == []


def test_clean_fixture_tree_exits_zero(fixture_tree, tmp_path):
    status = lint_main([f"--root={fixture_tree}",
                        f"--baseline-file={tmp_path}/baseline.json"])
    assert status == 0


def test_builtin_hash_reintroduction_fails_lint(fixture_tree, tmp_path,
                                                capsys):
    # The PR-2 regression: a consumer drops the stable_hash import and
    # goes back to salted builtin hash() on a string key.
    mutate(fixture_tree, "machine/structures.py", """
        def bucket(key, nbuckets):
            return hash(str(key)) % nbuckets
        """)
    status = lint_main([f"--root={fixture_tree}",
                        f"--baseline-file={tmp_path}/baseline.json"])
    assert status == 1
    out = capsys.readouterr().out
    assert "builtin-hash" in out
    assert "machine/structures.py" in out


def test_undeclared_counter_increment_is_flagged(fixture_tree):
    mutate(fixture_tree, "uarch/core.py", """
        from dataclasses import dataclass

        @dataclass
        class CoreResult:
            cycles: int = 0
            instructions: int = 0
            l1i_misses: int = 0

        def run(window):
            result = CoreResult()
            result.instructions += 1
            result.l1i_missess += 1
            return result
        """)
    findings = run_lint(fixture_tree)
    assert [f.rule for f in findings] == ["counter-schema"]
    assert "l1i_missess" in findings[0].message
    assert findings[0].path == "uarch/core.py"


def test_part_whole_pair_violation_is_flagged(fixture_tree):
    mutate(fixture_tree, "core/validate.py", """
        _BOUNDED_PAIRS = (
            ("l1i_misses", "instructions"),
            ("branch_mispredicts", "branches"),
        )
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"counter-schema"}
    messages = " ".join(f.message for f in findings)
    assert "branch_mispredicts" in messages and "branches" in messages


def test_self_pair_is_flagged(fixture_tree):
    mutate(fixture_tree, "core/validate.py", """
        _BOUNDED_PAIRS = (
            ("cycles", "cycles"),
        )
        """)
    findings = run_lint(fixture_tree)
    assert [f.rule for f in findings] == ["counter-schema"]
    assert "itself" in findings[0].message


def test_undeclared_core_result_field_is_flagged(fixture_tree):
    mutate(fixture_tree, "uarch/counters.py", """
        COUNTER_NAMES = (
            "cycles",
            "instructions",
        )
        """)
    findings = run_lint(fixture_tree)
    assert [f.rule for f in findings] == ["counter-schema"]
    assert "l1i_misses" in findings[0].message


def test_declared_name_without_field_is_flagged(fixture_tree):
    mutate(fixture_tree, "uarch/counters.py", """
        COUNTER_NAMES = (
            "cycles",
            "instructions",
            "l1i_misses",
            "ghost_counter",
        )
        """)
    findings = run_lint(fixture_tree)
    assert [f.rule for f in findings] == ["counter-schema"]
    assert "ghost_counter" in findings[0].message


def test_annotated_core_result_argument_is_tracked(fixture_tree):
    mutate(fixture_tree, "machine/snapshot.py", """
        def apply_delta(result: "CoreResult"):
            result.offchip_bytez = 1
        """)
    findings = run_lint(fixture_tree)
    assert [f.rule for f in findings] == ["counter-schema"]
    assert "offchip_bytez" in findings[0].message


def test_cluster_wallclock_call_is_flagged(fixture_tree):
    # The harness exemption lets time.monotonic/sleep through the global
    # wallclock rule; inside cluster/ the cluster-clock rule closes it.
    mutate(fixture_tree, "cluster/clock.py", """
        import time

        class EventLoop:
            def __init__(self):
                self.now = 0

            def run(self):
                start = time.monotonic()
                time.sleep(0.001)
                self.now = time.monotonic() - start
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"cluster-clock"}
    assert len(findings) == 3
    messages = " ".join(f.message for f in findings)
    assert "time.monotonic" in messages and "time.sleep" in messages


def test_cluster_time_from_import_is_flagged(fixture_tree):
    mutate(fixture_tree, "cluster/clock.py", """
        from time import monotonic, sleep

        def wait(loop, delay):
            deadline = monotonic() + delay
            while monotonic() < deadline:
                sleep(0)
        """)
    findings = run_lint(fixture_tree)
    assert "cluster-clock" in {f.rule for f in findings}
    flagged = [f for f in findings if f.rule == "cluster-clock"]
    assert flagged[0].path == "cluster/clock.py"
    assert "monotonic" in flagged[0].message
    assert "sleep" in flagged[0].message


def test_service_cost_attribute_outside_owners_is_flagged(fixture_tree):
    # Static tables belong to the app classes and calibrate.py's
    # fallback; a backend pricing straight off the literals would dodge
    # the measured-calibration path behind the --costs switch.
    mutate(fixture_tree, "cluster/backend.py", """
        def price(app, op):
            return app.CLUSTER_SERVICE_COSTS[op]
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"service-costs"}
    assert "ServiceCostModel" in findings[0].message


def test_service_cost_name_reference_is_flagged(fixture_tree):
    mutate(fixture_tree, "core/pricing.py", """
        CLUSTER_SERVICE_COSTS = {"read": 1}

        def cost(op):
            return CLUSTER_SERVICE_COSTS[op]
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"service-costs"}
    assert len(findings) == 2  # the definition and the load


def test_service_costs_allowed_in_owning_files(fixture_tree):
    (fixture_tree / "apps/kvstore").mkdir(parents=True)
    mutate(fixture_tree, "apps/kvstore/app.py", """
        CLUSTER_SERVICE_COSTS = {"read": 420}
        """)
    mutate(fixture_tree, "cluster/calibrate.py", """
        def static_model(app):
            return dict(app.CLUSTER_SERVICE_COSTS)
        """)
    assert run_lint(fixture_tree) == []


def test_wallclock_outside_cluster_keeps_harness_exemption(fixture_tree):
    # Same calls in a non-cluster path: the global wallclock rule's
    # harness exemption applies, and cluster-clock stays out of scope.
    mutate(fixture_tree, "core/deadline.py", """
        import time

        def expired(started, budget):
            return time.monotonic() - started > budget
        """)
    assert run_lint(fixture_tree) == []


def test_baseline_grandfathers_fixture_finding(fixture_tree, tmp_path,
                                               capsys):
    mutate(fixture_tree, "machine/structures.py", """
        def bucket(key, nbuckets):
            return hash(str(key)) % nbuckets
        """)
    baseline = tmp_path / "baseline.json"
    assert lint_main([f"--root={fixture_tree}",
                      f"--baseline-file={baseline}", "--baseline"]) == 0
    capsys.readouterr()
    # Grandfathered: green again, but any *new* finding still fails.
    assert lint_main([f"--root={fixture_tree}",
                      f"--baseline-file={baseline}"]) == 0
    capsys.readouterr()
    mutate(fixture_tree, "machine/fresh.py", """
        def jitter(n):
            return hash("salted") % n
        """)
    assert lint_main([f"--root={fixture_tree}",
                      f"--baseline-file={baseline}"]) == 1
    out = capsys.readouterr().out
    assert "machine/fresh.py" in out

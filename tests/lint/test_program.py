"""The whole-program rules: taint flow, fingerprint purity, layering.

Same discipline as ``test_fixture_tree``: every test lints a mutated
copy of the clean fixture tree, so the assertions document exactly the
review scenario each rule exists to stop.
"""

from __future__ import annotations

import textwrap

from repro.lint.cli import main as lint_main
from repro.lint.engine import run_lint


def write(tree, relpath, source):
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip())


def rules_of(findings):
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------
# taint-flow
# ---------------------------------------------------------------------

def _laundered_clock_tree(tree, annotation=""):
    """A clock read two call edges away from a counter write.

    ``time.monotonic`` is exempt from the file-local ``wallclock``
    rule (the harness exemption), so every file here lints clean in
    isolation — only the interprocedural pass can see the flow.
    """
    write(tree, "uarch/entropy.py", f"""
        from time import monotonic

        def jitter():{annotation}
            return monotonic()
        """)
    write(tree, "uarch/weight.py", """
        from fixture.uarch.entropy import jitter

        def weight(step):
            return int(jitter()) + step
        """)
    write(tree, "uarch/core.py", """
        from dataclasses import dataclass

        from fixture.uarch.weight import weight

        @dataclass
        class CoreResult:
            cycles: int = 0
            instructions: int = 0
            l1i_misses: int = 0

        def run(window):
            result = CoreResult()
            for step in range(window):
                result.cycles += weight(step)
            return result
        """)


def test_laundered_clock_reaches_counter_through_two_edges(fixture_tree):
    _laundered_clock_tree(fixture_tree)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"taint-flow"}
    [finding] = findings
    assert finding.path == "uarch/core.py"
    # The witness path reads source-to-sink, one hop per call edge.
    assert ("uarch.core.run -> uarch.weight.weight -> "
            "uarch.entropy.jitter -> time.monotonic()"
            ) in finding.message
    assert "counter store result.cycles" in finding.message


def test_laundered_clock_fails_cli_with_witness(fixture_tree, tmp_path,
                                                capsys):
    _laundered_clock_tree(fixture_tree)
    status = lint_main([f"--root={fixture_tree}",
                        f"--baseline-file={tmp_path}/b.json"])
    assert status == 1
    out = capsys.readouterr().out
    assert "taint-flow" in out
    assert "uarch.entropy.jitter -> time.monotonic()" in out


def test_sanitizer_annotation_blesses_the_wrapper(fixture_tree,
                                                  tmp_path, capsys):
    _laundered_clock_tree(
        fixture_tree,
        annotation="  # repro-lint: sanitizer -- seed material; "
                   "results derive from the logged seed")
    assert run_lint(fixture_tree) == []
    status = lint_main([f"--root={fixture_tree}",
                        f"--baseline-file={tmp_path}/b.json"])
    assert status == 0
    capsys.readouterr()


def test_reasonless_sanitizer_annotation_is_flagged(fixture_tree):
    _laundered_clock_tree(fixture_tree,
                          annotation="  # repro-lint: sanitizer")
    findings = run_lint(fixture_tree)
    # The blessing still applies (intent is clear), but the missing
    # reason is itself an error — same contract as suppressions.
    assert rules_of(findings) == {"bad-suppression"}
    assert "no reason" in findings[0].message


def test_hashing_module_is_blessed_wholesale(fixture_tree):
    # stable_hash gains an internal monotonic read; hashing.py modules
    # are sanitizers by definition, so nothing downstream is tainted.
    write(fixture_tree, "machine/hashing.py", """
        import zlib
        from time import monotonic

        def stable_hash(*parts):
            h = int(monotonic()) * 0
            for part in parts:
                h = zlib.crc32(repr(part).encode(), h)
            return (h * 2654435761) & 0xFFFFFFFF
        """)
    write(fixture_tree, "machine/patch.py", """
        from fixture.machine.hashing import stable_hash

        def apply(result: "CoreResult", key):
            result.cycles += stable_hash(key)
        """)
    assert run_lint(fixture_tree) == []


def test_same_wrapper_outside_hashing_module_is_tainted(fixture_tree):
    write(fixture_tree, "machine/mix.py", """
        import zlib
        from time import monotonic

        def loose_mix(*parts):
            h = int(monotonic()) * 0
            for part in parts:
                h = zlib.crc32(repr(part).encode(), h)
            return h
        """)
    write(fixture_tree, "machine/patch.py", """
        from fixture.machine.mix import loose_mix

        def apply(result: "CoreResult", key):
            result.cycles += loose_mix(key)
        """)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"taint-flow"}
    assert "machine.mix.loose_mix -> time.monotonic()" \
        in findings[0].message


def test_sim_clock_fed_by_wrapped_clock_is_flagged(fixture_tree):
    write(fixture_tree, "cluster/warp.py", """
        from time import monotonic

        def skew():
            return monotonic() * 0.001
        """)
    write(fixture_tree, "cluster/clock.py", """
        from fixture.cluster.warp import skew

        class EventLoop:
            def __init__(self):
                self.now = 0

            def advance(self, when):
                self.now = when + skew()
        """)
    findings = run_lint(fixture_tree)
    # cluster-clock flags the raw monotonic() in warp.py file-locally;
    # taint-flow adds the cross-file consequence at the sink.
    assert rules_of(findings) == {"taint-flow", "cluster-clock"}
    [taint] = [f for f in findings if f.rule == "taint-flow"]
    assert "simulated clock store self.now" in taint.message


# ---------------------------------------------------------------------
# fingerprint-purity
# ---------------------------------------------------------------------

_PURE_SWEEP = """
    import hashlib
    import json

    def canonical(config):
        return json.dumps(config, sort_keys=True)

    def config_fingerprint(kind, name, config):
        blob = f"{kind}:{name}:" + canonical(config)
        return hashlib.sha256(blob.encode()).hexdigest()
    """


def test_pure_fingerprint_lints_clean(fixture_tree):
    write(fixture_tree, "core/sweep.py", _PURE_SWEEP)
    assert run_lint(fixture_tree) == []


def test_fingerprint_gaining_environ_read_is_caught(fixture_tree):
    write(fixture_tree, "core/sweep.py", """
        import hashlib
        import json
        import os

        def canonical(config):
            return json.dumps(config, sort_keys=True)

        def config_fingerprint(kind, name, config):
            salt = os.environ.get("REPRO_SALT", "")
            blob = f"{kind}:{name}:{salt}:" + canonical(config)
            return hashlib.sha256(blob.encode()).hexdigest()
        """)
    findings = run_lint(fixture_tree)
    assert "fingerprint-purity" in rules_of(findings)
    messages = " ".join(f.message for f in findings)
    assert "must stay pure" in messages
    assert "os.environ" in messages


def test_impure_helper_in_fingerprint_closure_is_caught(fixture_tree):
    write(fixture_tree, "core/sweep.py", """
        import hashlib
        import os

        def _salt():
            return os.environ.get("REPRO_SALT", "")

        def config_fingerprint(kind, name, config):
            blob = f"{kind}:{name}:" + _salt() + repr(config)
            return hashlib.sha256(blob.encode()).hexdigest()
        """)
    findings = run_lint(fixture_tree)
    purity = [f for f in findings if f.rule == "fingerprint-purity"]
    assert purity, rules_of(findings)
    assert any("reached via" in f.message
               and "core.sweep._salt" in f.message for f in purity)


def test_pure_annotation_enrols_a_function(fixture_tree):
    write(fixture_tree, "core/labels.py", """
        def tabulate(rows):  # repro-lint: pure -- folded into figure captions
            out = open("/tmp/labels.txt", "w")
            out.write(str(rows))
            return rows
        """)
    findings = run_lint(fixture_tree)
    assert "fingerprint-purity" in rules_of(findings)
    assert any("calls open()" in f.message for f in findings)


def test_computed_schema_constant_is_flagged(fixture_tree):
    write(fixture_tree, "core/codec.py", """
        TRACE_SCHEMA = 1
        PACK_SCHEMA = 1 + 0
        """)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"fingerprint-purity"}
    [finding] = findings
    assert "PACK_SCHEMA" in finding.message
    assert "literal int" in finding.message


# ---------------------------------------------------------------------
# import-layering
# ---------------------------------------------------------------------

def test_uarch_importing_cluster_is_flagged(fixture_tree):
    write(fixture_tree, "uarch/sched.py", """
        from fixture.cluster.clock import EventLoop

        def make_loop():
            return EventLoop()
        """)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"import-layering"}
    [finding] = findings
    assert finding.path == "uarch/sched.py"
    assert "`uarch` must not import `cluster`" in finding.message


def test_machine_importing_uarch_is_allowed(fixture_tree):
    write(fixture_tree, "machine/widths.py", """
        from fixture.uarch.counters import COUNTER_NAMES

        def width():
            return len(COUNTER_NAMES)
        """)
    assert run_lint(fixture_tree) == []


def test_lint_package_imports_nothing(fixture_tree):
    write(fixture_tree, "lint/extra.py", """
        from fixture.machine.hashing import stable_hash

        def key(finding):
            return stable_hash(finding)
        """)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"import-layering"}
    assert "`lint` must not import `machine`" in findings[0].message


def test_function_local_import_is_still_an_edge(fixture_tree):
    write(fixture_tree, "uarch/lazy.py", """
        def loop():
            from fixture.cluster.clock import EventLoop
            return EventLoop()
        """)
    findings = run_lint(fixture_tree)
    assert rules_of(findings) == {"import-layering"}


def test_layering_suppression_with_reason_is_honoured(fixture_tree):
    write(fixture_tree, "uarch/sched.py", """
        from fixture.cluster.clock import EventLoop  # repro-lint: disable=import-layering -- transitional shim, tracked in ROADMAP
        """)
    assert run_lint(fixture_tree) == []

"""The incremental lint cache: correctness first, speed second.

The cache is content-addressed (file SHA-256 + rule-set version), so
there is no invalidation protocol to test — only that hits reproduce
the cold result exactly, that changed bytes miss, and that corruption
degrades to a cold run.
"""

from __future__ import annotations

import json
import textwrap

from repro.lint.cache import LintCache, ruleset_version
from repro.lint.cli import main as lint_main
from repro.lint.engine import LintEngine


def write(tree, relpath, source):
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip())


def make_tree(tmp_path):
    tree = tmp_path / "tree"
    write(tree, "machine/m.py", """
        def bucket(key, n):
            return hash(key) % n
        """)
    return tree


def test_warm_run_reproduces_cold_findings(tmp_path):
    tree = make_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    engine = LintEngine()
    cold = engine.run(tree, cache=cache)
    assert [f.rule for f in cold] == ["builtin-hash"]
    tree_entries = list((tmp_path / "cache").glob("tree-*.json"))
    assert len(tree_entries) == 1
    warm = LintEngine().run(tree, cache=cache)
    assert warm == cold


def test_warm_run_actually_reads_the_cache(tmp_path):
    tree = make_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    LintEngine().run(tree, cache=cache)
    [entry] = (tmp_path / "cache").glob("tree-*.json")
    payload = json.loads(entry.read_text())
    payload["findings"][0]["message"] = "MARKER-FROM-CACHE"
    entry.write_text(json.dumps(payload))
    warm = LintEngine().run(tree, cache=cache)
    assert warm[0].message == "MARKER-FROM-CACHE"


def test_changed_file_misses_the_tree_entry(tmp_path):
    tree = make_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    assert LintEngine().run(tree, cache=cache)
    write(tree, "machine/m.py", """
        def bucket(key, n):
            return key % n
        """)
    assert LintEngine().run(tree, cache=cache) == []


def test_corrupt_entries_degrade_to_cold_run(tmp_path):
    tree = make_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    cold = LintEngine().run(tree, cache=cache)
    for entry in (tmp_path / "cache").glob("*.json"):
        entry.write_text("{not json")
    assert LintEngine().run(tree, cache=cache) == cold


def test_unwritable_cache_is_harmless(tmp_path):
    tree = make_tree(tmp_path)
    blocker = tmp_path / "cache"
    blocker.write_text("a file where the cache dir should go")
    cache = LintCache(blocker)
    findings = LintEngine().run(tree, cache=cache)
    assert [f.rule for f in findings] == ["builtin-hash"]


def test_rule_subset_gets_its_own_keys(tmp_path):
    from repro.lint.rules import ALL_RULES

    tree = make_tree(tmp_path)
    cache = LintCache(tmp_path / "cache")
    full = LintEngine().run(tree, cache=cache)
    assert [f.rule for f in full] == ["builtin-hash"]
    subset = [cls for cls in ALL_RULES if cls.name == "wallclock"]
    assert LintEngine(subset).run(tree, cache=cache) == []
    # And the full-set entry is still intact afterwards.
    assert LintEngine().run(tree, cache=cache) == full


def test_ruleset_version_is_stable_within_a_process(tmp_path):
    assert ruleset_version() == ruleset_version()
    assert len(ruleset_version()) == 64


def test_cli_uses_cache_and_no_cache_skips_it(tmp_path, monkeypatch,
                                              capsys):
    tree = make_tree(tmp_path)
    cache_root = tmp_path / "cli-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_root))
    assert lint_main([f"--root={tree}", "--no-cache",
                      f"--baseline-file={tmp_path}/b.json"]) == 1
    assert not (cache_root / "lint-v1").exists()
    assert lint_main([f"--root={tree}",
                      f"--baseline-file={tmp_path}/b.json"]) == 1
    assert list((cache_root / "lint-v1").glob("tree-*.json"))
    capsys.readouterr()

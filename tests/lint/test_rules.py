"""Per-rule unit tests: each rule fires on its bug class and stays
quiet on the deterministic/robust spelling of the same code."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.engine import run_lint


def lint_snippet(tmp_path, source, relpath="uarch/module.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip())
    return run_lint(tmp_path)


def rules_of(findings):
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------- hash
def test_builtin_hash_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def bucket(key, n):
            return hash(key) % n
        """)
    assert rules_of(findings) == {"builtin-hash"}
    assert findings[0].line == 2


def test_builtin_hash_int_literal_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        A = hash(7)
        B = hash(-7)
        """)
    assert findings == []


def test_builtin_hash_exempt_in_hashing_module(tmp_path):
    findings = lint_snippet(tmp_path, """
        def stable_hash(*parts):
            return hash(parts[0])
        """, relpath="machine/hashing.py")
    assert findings == []


# -------------------------------------------------------------- random
def test_module_level_random_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        import random

        def jitter():
            random.seed(0)
            return random.random() + random.randint(1, 6)
        """)
    assert rules_of(findings) == {"unseeded-random"}
    assert len(findings) == 3


def test_seeded_random_instance_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        import random

        def make_rng(seed):
            rng = random.Random(seed)
            return rng.random()
        """)
    assert findings == []


def test_from_random_import_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        from random import shuffle
        """)
    assert rules_of(findings) == {"unseeded-random"}


# ----------------------------------------------------------- wallclock
@pytest.mark.parametrize("call", [
    "time.time()",
    "time.time_ns()",
    "datetime.datetime.now()",
    "datetime.date.today()",
    "os.urandom(8)",
    "uuid.uuid4()",
    "secrets.token_bytes(8)",
])
def test_wallclock_calls_flagged(tmp_path, call):
    findings = lint_snippet(tmp_path, f"""
        import datetime, os, secrets, time, uuid

        def stamp():
            return {call}
        """)
    assert rules_of(findings) == {"wallclock"}


def test_monotonic_deadlines_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        import time

        def wait(deadline):
            while time.monotonic() < deadline:
                time.sleep(0.01)
        """)
    assert findings == []


def test_from_time_import_time_flagged(tmp_path):
    findings = lint_snippet(tmp_path, "from time import time\n")
    assert rules_of(findings) == {"wallclock"}


# ------------------------------------------------------ order of sets
def test_set_iteration_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def serialize(names):
            out = []
            for name in set(names):
                out.append(name)
            return [n for n in {"a", "b"}] + list({1, 2}) + out
        """)
    assert rules_of(findings) == {"order-dependence"}
    assert len(findings) == 3


def test_sorted_set_iteration_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def serialize(names):
            return [name for name in sorted(set(names))]
        """)
    assert findings == []


def test_popitem_flagged_but_ordered_popitem_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def evict(cache, lru):
            cache.popitem()
            lru.popitem(last=False)
        """)
    assert rules_of(findings) == {"order-dependence"}
    assert len(findings) == 1


# ---------------------------------------------------- stable_hash args
def test_stable_hash_container_args_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        from fixture.machine.hashing import stable_hash

        def bad(items):
            return stable_hash([i for i in items]) + stable_hash({1: 2})
        """)
    assert rules_of(findings) == {"stable-hash-args"}
    assert len(findings) == 2


def test_stable_hash_scalar_args_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        from fixture.machine.hashing import stable_hash

        def good(name, index):
            return stable_hash(name, ("slot", index))
        """)
    assert findings == []


# ----------------------------------------------------------- excepts
def test_bare_except_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def load(path):
            try:
                return open(path).read()
            except:
                return None
        """)
    assert rules_of(findings) == {"blind-except"}


def test_swallowing_broad_except_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def load(path):
            try:
                return open(path).read()
            except Exception:
                pass
        """)
    assert rules_of(findings) == {"blind-except"}


def test_handled_broad_except_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def load(path, log):
            try:
                return open(path).read()
            except OSError:
                return None
            except Exception as exc:
                log.append(str(exc))
                raise
        """)
    assert findings == []


# ---------------------------------------------------- mutable defaults
def test_mutable_default_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def collect(item, seen=[], index={}, *, extras=set()):
            seen.append(item)
            return seen, index, extras
        """)
    assert rules_of(findings) == {"mutable-default"}
    assert len(findings) == 3


def test_none_default_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def collect(item, seen=None):
            seen = [] if seen is None else seen
            seen.append(item)
            return seen
        """)
    assert findings == []


# --------------------------------------------------------- float ==
def test_float_literal_equality_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def check(utilization):
            return utilization == 0.95
        """)
    assert rules_of(findings) == {"float-eq"}
    assert findings[0].severity == "warning"


def test_float_inequality_bounds_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def check(utilization):
            return utilization >= 0.95 and utilization != utilization
        """)
    assert findings == []


# --------------------------------------------------------- trace layer
def test_app_trace_drain_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def measure(app):
            return list(app.trace(0, 1000))
        """)
    assert rules_of(findings) == {"trace-layer"}
    assert "bypasses capture" in findings[0].message


def test_trace_segments_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def segments(app):
            return app.trace_segments(0, 1000, 4)
        """)
    assert rules_of(findings) == {"trace-layer"}


def test_raw_guard_trace_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.faults.watchdog import guard_trace

        def measure(stream):
            return guard_trace(stream, 5000, "x")
        """)
    assert rules_of(findings) == {"trace-layer"}
    assert "live_stream" in findings[0].message


def test_trace_package_is_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def capture(app):
            return list(app.trace(0, 1000))
        """, relpath="trace/capture.py")
    assert findings == []


def test_runner_facade_is_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        def guarded_trace(app, tid, budget, label):
            return app.trace(tid, budget)
        """, relpath="core/runner.py")
    assert findings == []


def test_unrelated_trace_names_allowed(tmp_path):
    findings = lint_snippet(tmp_path, """
        import sys

        def profile():
            sys.settrace(None)
            trace = [1, 2, 3]
            return trace(0)  # a local callable, not a method drain
        """)
    assert findings == []


# ------------------------------------------------------------ hot-path
def test_microop_construction_flagged_in_uarch(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.uarch.uop import MicroOp, OpKind

        def rebuild(batch, i):
            return MicroOp(OpKind.ALU, batch.pcs[i], 0, (), batch.seqs[i])
        """)
    assert rules_of(findings) == {"hot-path"}
    assert "ColumnBatch" in findings[0].message


def test_microop_construction_flagged_in_replay(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.uarch import uop

        def decode_one(row):
            return uop.MicroOp(*row)
        """, relpath="trace/replay.py")
    assert rules_of(findings) == {"hot-path"}


def test_microop_construction_allowed_in_codec(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.uarch.uop import MicroOp

        def decode(rows):
            for row in rows:
                yield MicroOp(*row)
        """, relpath="trace/codec.py")
    assert findings == []


def test_microop_construction_allowed_in_runtime(tmp_path):
    findings = lint_snippet(tmp_path, """
        from repro.uarch.uop import MicroOp, OpKind

        def emit(pc, seq):
            return MicroOp(OpKind.ALU, pc, 0, (), seq)
        """, relpath="machine/runtime.py")
    assert findings == []


def test_microop_reads_are_not_flagged(tmp_path):
    findings = lint_snippet(tmp_path, """
        def classify(uop):
            return uop.kind  # consuming a MicroOp is fine anywhere
        """)
    assert findings == []

"""The linter gates this repository: the live tree must lint clean.

These are the same checks CI runs, kept in the suite so a finding
fails the fastest feedback loop first.
"""

from __future__ import annotations

import json
import pathlib

import repro
from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint

PACKAGE_ROOT = pathlib.Path(repro.__file__).resolve().parent
BASELINE = PACKAGE_ROOT.parent.parent / "lint-baseline.json"

#: Directories whose measurements the figures depend on directly; the
#: acceptance bar is an *empty* baseline here — findings must be fixed
#: or carry an inline reason, never grandfathered.
STRICT_PREFIXES = ("core/", "uarch/", "machine/", "lint/")


def test_live_tree_has_no_new_findings():
    findings = run_lint(PACKAGE_ROOT)
    baseline = Baseline.load(BASELINE)
    new, _ = baseline.partition(findings)
    new.extend(baseline.audit(findings))
    assert new == [], "\n".join(f.format_text() for f in new)


def test_baseline_is_empty_for_strict_directories():
    document = json.loads(BASELINE.read_text())
    offenders = [entry for entry in document["entries"]
                 if entry["path"].startswith(STRICT_PREFIXES)]
    assert offenders == [], (
        "grandfathered findings are not allowed in core/, uarch/, "
        f"machine/, or the linter itself: {offenders}")


def test_baseline_entries_carry_reasons():
    document = json.loads(BASELINE.read_text())
    missing = [entry for entry in document["entries"]
               if not entry.get("reason", "").strip()]
    assert missing == []

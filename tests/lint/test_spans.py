"""Span-aware suppressions: multi-line statements and decorated defs.

A ``disable`` comment on the first line of a logical statement covers
every line the statement spans — but for compound statements only the
header, never the body.
"""

from __future__ import annotations

import textwrap

from repro.lint.engine import run_lint


def write(tree, relpath, source):
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip())


def test_multiline_statement_suppressed_on_first_line(fixture_tree):
    # First establish the un-suppressed baseline: the findings land on
    # the hash() lines, below the statement's first line.
    write(fixture_tree, "machine/multi.py", """
        def bucket(key, extra, n):
            return sum((
                hash(key),
                hash(extra),
            )) % n
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"builtin-hash"}
    assert sorted(f.line for f in findings) == [3, 4]

    write(fixture_tree, "machine/multi.py", """
        def bucket(key, extra, n):
            return sum((  # repro-lint: disable=builtin-hash -- int keys only
                hash(key),
                hash(extra),
            )) % n
        """)
    assert run_lint(fixture_tree) == []


def test_decorated_def_suppressed_on_decorator_line(fixture_tree):
    write(fixture_tree, "machine/deco.py", """
        import functools

        @functools.lru_cache  # repro-lint: disable=mutable-default -- read-only sentinel
        def lookup(key, table=[]):
            return key in table
        """)
    assert run_lint(fixture_tree) == []


def test_decorated_def_unsuppressed_still_fires(fixture_tree):
    write(fixture_tree, "machine/deco.py", """
        import functools

        @functools.lru_cache
        def lookup(key, table=[]):
            return key in table
        """)
    findings = run_lint(fixture_tree)
    assert {f.rule for f in findings} == {"mutable-default"}


def test_def_line_suppression_does_not_cover_the_body(fixture_tree):
    write(fixture_tree, "machine/body.py", """
        def bucket(key, n):  # repro-lint: disable=builtin-hash -- header only
            return hash(key) % n
        """)
    findings = run_lint(fixture_tree)
    # The body statement anchors to its own line, not the def header:
    # a header suppression must not swallow the whole function.
    assert {f.rule for f in findings} == {"builtin-hash"}


def test_exact_line_suppression_still_works(fixture_tree):
    write(fixture_tree, "machine/exact.py", """
        def bucket(key, n):
            return hash(key) % n  # repro-lint: disable=builtin-hash -- int keys only
        """)
    assert run_lint(fixture_tree) == []

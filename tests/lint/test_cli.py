"""CLI surface: flags, formats, exit statuses, repo-level dispatch."""

from __future__ import annotations

import json
import textwrap

from repro.__main__ import main as repro_main
from repro.lint.cli import main as lint_main


def write_bad_tree(tmp_path):
    root = tmp_path / "tree" / "uarch"
    root.mkdir(parents=True)
    (root / "m.py").write_text(textwrap.dedent("""
        def bucket(key, n):
            return hash(key) % n
        """).lstrip())
    return tmp_path / "tree"


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "ok.py").write_text("x = 1\n")
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json"]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json"]) == 1
    assert "builtin-hash" in capsys.readouterr().out


def test_json_format(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    lint_main([f"--root={root}", f"--baseline-file={tmp_path}/b.json",
               "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "builtin-hash"
    assert payload["counts"]["error"] == 1


def test_sarif_format(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json",
                      "--format=sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rules = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
    # Every rule links to its section of the catalogue, meta included.
    assert rules["builtin-hash"]["helpUri"] == "docs/lint.md#builtin-hash"
    assert rules["taint-flow"]["helpUri"] == "docs/lint.md#taint-flow"
    assert "bad-suppression" in rules
    [result] = run["results"]
    assert result["ruleId"] == "builtin-hash"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "uarch/m.py"
    assert location["region"]["startLine"] == 2


def test_sarif_clean_tree_has_empty_results(tmp_path, capsys):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "ok.py").write_text("x = 1\n")
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json",
                      "--format=sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_rules_filter_restricts_the_run(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json",
                      "--rules=wallclock,unseeded-random"]) == 0
    capsys.readouterr()
    assert lint_main([f"--root={root}",
                      f"--baseline-file={tmp_path}/b.json",
                      "--rules=builtin-hash"]) == 1
    assert "builtin-hash" in capsys.readouterr().out


def test_usage_errors_exit_two(tmp_path):
    assert lint_main(["--format=yaml"]) == 2
    assert lint_main(["--no-such-flag"]) == 2
    assert lint_main([f"--root={tmp_path}/missing"]) == 2
    assert lint_main(["--baseline-file"]) == 2
    assert lint_main(["--rules"]) == 2
    assert lint_main(["--rules=no-such-rule"]) == 2


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("builtin-hash", "unseeded-random", "wallclock",
                 "order-dependence", "stable-hash-args", "blind-except",
                 "mutable-default", "float-eq", "counter-schema",
                 "taint-flow", "fingerprint-purity", "import-layering"):
        assert rule in out


def test_help(capsys):
    assert lint_main(["--help"]) == 0
    assert "Exit status" in capsys.readouterr().out


def test_paths_restrict_per_file_rules(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    (root / "uarch" / "clean.py").write_text("x = 1\n")
    status = lint_main([f"--root={root}",
                        f"--baseline-file={tmp_path}/b.json",
                        str(root / "uarch" / "clean.py")])
    assert status == 0
    capsys.readouterr()


def test_repro_main_dispatches_lint(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    status = repro_main(["lint", f"--root={root}",
                         f"--baseline-file={tmp_path}/b.json"])
    assert status == 1
    assert "builtin-hash" in capsys.readouterr().out


def test_baseline_rewrite_and_shrink(tmp_path, capsys):
    root = write_bad_tree(tmp_path)
    baseline = tmp_path / "b.json"
    assert lint_main([f"--root={root}", f"--baseline-file={baseline}",
                      "--baseline"]) == 0
    document = json.loads(baseline.read_text())
    assert len(document["entries"]) == 1
    capsys.readouterr()
    # Fixing the finding makes the entry stale: the gate goes red until
    # the baseline shrinks.
    (root / "uarch" / "m.py").write_text("x = 1\n")
    assert lint_main([f"--root={root}",
                      f"--baseline-file={baseline}"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out

"""Engine mechanics: suppressions, baseline, parse errors, output."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import run_lint
from repro.lint.findings import Finding, format_findings, summarize


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source).lstrip())
    return path


# ------------------------------------------------------- suppressions
def test_suppression_with_reason_silences_finding(tmp_path):
    write(tmp_path, "uarch/m.py", """
        def bucket(key, n):
            return hash(key) % n  # repro-lint: disable=builtin-hash -- key is always an int pc
        """)
    assert run_lint(tmp_path) == []


def test_suppression_only_covers_named_rule(tmp_path):
    write(tmp_path, "uarch/m.py", """
        def bucket(key, n):
            return hash(key) % n  # repro-lint: disable=wallclock -- names the wrong rule
        """)
    findings = run_lint(tmp_path)
    assert [f.rule for f in findings] == ["builtin-hash"]


def test_suppression_without_reason_is_error(tmp_path):
    write(tmp_path, "uarch/m.py", """
        def bucket(key, n):
            return hash(key) % n  # repro-lint: disable=builtin-hash
        """)
    findings = run_lint(tmp_path)
    assert [f.rule for f in findings] == ["bad-suppression"]
    assert "no reason" in findings[0].message


def test_suppression_of_unknown_rule_is_error(tmp_path):
    write(tmp_path, "uarch/m.py", """
        X = 1  # repro-lint: disable=no-such-rule -- because
        """)
    findings = run_lint(tmp_path)
    assert [f.rule for f in findings] == ["bad-suppression"]
    assert "unknown rule" in findings[0].message


def test_multi_rule_suppression(tmp_path):
    write(tmp_path, "uarch/m.py", """
        def f(key, n, seen=[]):  # repro-lint: disable=mutable-default -- shared scratch is intended here
            return hash(key) % n  # repro-lint: disable=builtin-hash,order-dependence -- int-only keys
        """)
    assert run_lint(tmp_path) == []


# ------------------------------------------------------- parse errors
def test_syntax_error_becomes_finding(tmp_path):
    write(tmp_path, "uarch/broken.py", """
        def f(:
        """)
    findings = run_lint(tmp_path)
    assert [f.rule for f in findings] == ["parse-error"]
    assert findings[0].path == "uarch/broken.py"


def test_skips_hidden_and_cache_dirs(tmp_path):
    write(tmp_path, "__pycache__/junk.py", "x = hash('a')\n")
    write(tmp_path, ".venv/junk.py", "x = hash('a')\n")
    assert run_lint(tmp_path) == []


# ----------------------------------------------------------- baseline
def _finding(rule="builtin-hash", path="uarch/m.py", message="msg"):
    return Finding(rule, path, 3, 1, "error", message)


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(path, [_finding()], reason="legacy bucketing")
    baseline = Baseline.load(path)
    new, old = baseline.partition([_finding(), _finding(message="other")])
    assert [f.message for f in new] == ["other"]
    assert [f.message for f in old] == ["msg"]


def test_baseline_matching_ignores_line_numbers(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(path, [_finding()], reason="legacy")
    moved = Finding("builtin-hash", "uarch/m.py", 99, 5, "error", "msg")
    new, old = Baseline.load(path).partition([moved])
    assert new == [] and old == [moved]


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    new, old = baseline.partition([_finding()])
    assert old == [] and len(new) == 1


def test_stale_baseline_entry_is_error(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(path, [_finding()], reason="legacy")
    problems = Baseline.load(path).audit([])
    assert len(problems) == 1
    assert "stale baseline entry" in problems[0].message


def test_reasonless_baseline_entry_is_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "builtin-hash", "path": "uarch/m.py",
                     "message": "msg", "reason": "  "}],
    }))
    problems = Baseline.load(path).audit([_finding()])
    assert len(problems) == 1
    assert "no reason" in problems[0].message


@pytest.mark.parametrize("document", [
    "[]",
    '{"version": 99, "entries": []}',
    '{"version": 1, "entries": [{"rule": "r"}]}',
    "not json",
])
def test_malformed_baseline_raises(tmp_path, document):
    path = tmp_path / "baseline.json"
    path.write_text(document)
    with pytest.raises(BaselineError):
        Baseline.load(path)


# ------------------------------------------------------------- output
def test_json_format_is_machine_readable():
    findings = [_finding()]
    payload = json.loads(format_findings(findings, "json"))
    assert payload["findings"][0]["rule"] == "builtin-hash"
    assert payload["counts"]["error"] == 1


def test_text_format_names_rule_and_location():
    text = format_findings([_finding()], "text")
    assert text == "uarch/m.py:3:1: error: [builtin-hash] msg"


def test_summarize_counts_by_severity():
    counts = summarize([_finding(),
                        Finding("float-eq", "p", 1, 1, "warning", "m")])
    assert counts == {"error": 1, "warning": 1}


def test_findings_sorted_and_deduplicated(tmp_path):
    write(tmp_path, "uarch/b.py", "x = hash('a')\n")
    write(tmp_path, "uarch/a.py", "y = hash('b')\n")
    findings = run_lint(tmp_path)
    assert [f.path for f in findings] == ["uarch/a.py", "uarch/b.py"]

"""Figure 9 on the sweep rails: caching, checkpoints, validation.

The fleet cells ride the same supervision machinery as the
microarchitectural figures, so the same guarantees are asserted here:
``--jobs N`` byte-identical to serial, results cached and re-served
from the store, interrupted sweeps resumable from the checkpoint
journal, and every summary validation-gated before it is accepted.
"""

from __future__ import annotations

import copy

import pytest

from repro.cluster.service import ClusterConfig, simulate
from repro.cluster.sweep import ClusterCell, ClusterSweepEngine
from repro.core.experiments import figure9_cluster
from repro.core.runner import RunConfig
from repro.core.store import ResultStore
from repro.core.supervise import SweepCellError
from repro.core.validate import (ValidationError, check_cluster_summary,
                                 validate_cluster_summaries)
from repro.faults.retry import RetryPolicy

TINY = RunConfig(window_uops=15_000, warm_uops=1_000, seed=5)


def _tiny_cells() -> list[ClusterCell]:
    return figure9_cluster.build_cells(TINY, fleets=[2])


@pytest.fixture(scope="module")
def good_summary() -> dict:
    return simulate(ClusterConfig(fleet=2, requests=200, seed=1))


# -- validation gate -------------------------------------------------------
class TestClusterValidation:
    def test_real_summary_passes(self, good_summary):
        assert check_cluster_summary(good_summary) == []
        validate_cluster_summaries([good_summary], context="test")

    def test_missing_counter_is_rejected(self, good_summary):
        broken = copy.deepcopy(good_summary)
        del broken["p999"]
        assert any("p999" in defect
                   for defect in check_cluster_summary(broken))

    def test_unbalanced_books_are_rejected(self, good_summary):
        broken = copy.deepcopy(good_summary)
        broken["successes"] += 1
        assert check_cluster_summary(broken)

    def test_inverted_tail_is_rejected(self, good_summary):
        broken = copy.deepcopy(good_summary)
        broken["p50"] = broken["p99"] + 1
        assert check_cluster_summary(broken)

    def test_latency_above_bound_is_rejected(self, good_summary):
        broken = copy.deepcopy(good_summary)
        broken["max"] = broken["latency_bound"] + 1
        assert check_cluster_summary(broken)

    def test_lost_exceeding_acked_is_rejected(self, good_summary):
        broken = copy.deepcopy(good_summary)
        broken["acked_lost"] = broken["acked_writes"] + 1
        assert check_cluster_summary(broken)

    def test_validate_raises_with_context(self, good_summary):
        broken = copy.deepcopy(good_summary)
        broken["goodput"] = 1.5
        with pytest.raises(ValidationError, match="cell x"):
            validate_cluster_summaries([broken], context="cell x")


# -- the figure grid -------------------------------------------------------
class TestFigureGrid:
    def test_grid_covers_fleet_by_skew_by_fault(self):
        cells = figure9_cluster.build_cells(TINY)
        expected = (len(figure9_cluster.DEFAULT_FLEETS)
                    * len(figure9_cluster.SKEWS)
                    * len(figure9_cluster.FAULTS))
        assert len(cells) == expected
        fingerprints = {cell.fingerprint() for cell in cells}
        assert len(fingerprints) == len(cells)

    def test_replication_never_exceeds_fleet(self):
        cells = figure9_cluster.build_cells(TINY, fleets=[1, 2],
                                            replication=3)
        assert all(cell.config.replication <= cell.config.fleet
                   for cell in cells)

    def test_unknown_fault_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown fault"):
            figure9_cluster._fault_plan("meteor-strike", 300)

    def test_unknown_workload_fails_before_any_cell_runs(self):
        with pytest.raises(KeyError, match="no cluster backend"):
            figure9_cluster.build_cells(TINY, workload="no-such-app")


# -- supervision guarantees ------------------------------------------------
class TestClusterEngine:
    def test_serial_and_parallel_runs_are_byte_identical(self):
        serial = figure9_cluster.run(TINY, fleets=[2],
                                     engine=ClusterSweepEngine(jobs=1))
        parallel = figure9_cluster.run(TINY, fleets=[2],
                                       engine=ClusterSweepEngine(jobs=2))
        assert serial.to_text() == parallel.to_text()

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        cell = _tiny_cells()[0]
        summaries = [simulate(cell.config)]
        fingerprint = cell.fingerprint()
        assert store.get_cluster(fingerprint) is None
        store.put_cluster(fingerprint, summaries)
        assert store.get_cluster(fingerprint) == summaries

    def test_store_rejects_defective_summaries(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValidationError):
            store.put_cluster("f" * 64, [{"requests": -1}])

    def test_cached_cells_are_served_without_reexecution(self, tmp_path):
        cells = _tiny_cells()[:2]
        store = ResultStore(tmp_path)
        first = ClusterSweepEngine(store=store).run(cells)

        def bomb(task):
            raise AssertionError("cache miss: cell was re-executed")

        again = ClusterSweepEngine(
            store=store, worker=bomb,
            retry=RetryPolicy.for_harness(retries=0)).run(cells)
        assert again == first

    def test_checkpoint_resume_recomputes_only_missing(self, tmp_path):
        from repro.cluster.sweep import _cluster_cell_worker

        cells = _tiny_cells()[:3]
        poison = cells[1].name

        def flaky(task):
            cell, _ = task
            if cell.name == poison:
                raise RuntimeError("injected crash")
            return _cluster_cell_worker(task)

        engine = ClusterSweepEngine(
            checkpoint_dir=tmp_path, worker=flaky,
            retry=RetryPolicy.for_harness(retries=0))
        with pytest.raises(SweepCellError, match="injected crash"):
            engine.run(cells)

        executed = []

        def counting(task):
            executed.append(task[0].name)
            return _cluster_cell_worker(task)

        resumed = ClusterSweepEngine(
            checkpoint_dir=tmp_path, resume=True, worker=counting,
            retry=RetryPolicy.for_harness(retries=0)).run(cells)
        assert executed == [poison]  # the two journaled cells replayed
        reference = ClusterSweepEngine().run(cells)
        assert resumed == reference

    def test_invalid_payload_fails_the_cell(self):
        cells = _tiny_cells()[:1]

        def liar(task):
            return [{"requests": 1}]  # missing every other counter

        engine = ClusterSweepEngine(
            worker=liar, retry=RetryPolicy.for_harness(retries=0))
        with pytest.raises(SweepCellError):
            engine.run(cells)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ClusterSweepEngine(jobs=0)


# -- measured service costs ------------------------------------------------
class TestMeasuredCosts:
    """The figure grid priced from uarch replay instead of literals."""

    def _model(self, params=None):
        from dataclasses import replace

        config = TINY if params is None else replace(TINY, params=params)
        return figure9_cluster.calibrate_for(config, "data-serving")

    def test_measured_serial_and_parallel_are_byte_identical(self):
        model = self._model()
        serial = figure9_cluster.run(TINY, fleets=[2], costs="measured",
                                     engine=ClusterSweepEngine(jobs=1))
        parallel = figure9_cluster.run(TINY, fleets=[2], costs="measured",
                                       engine=ClusterSweepEngine(jobs=2))
        assert serial.to_text() == parallel.to_text()
        assert model.source == "measured"

    def test_measured_resume_is_byte_identical_after_a_dead_worker(
            self, tmp_path):
        """An interrupted measured-cost sweep resumes to the same bytes.

        The worker dies mid-grid (the checkpoint journal holding the
        cells that finished, as after a SIGKILL); the resumed run must
        recompute only the missing cell and render identically to an
        uninterrupted run.
        """
        from repro.cluster.sweep import _cluster_cell_worker

        model = self._model()
        cells = figure9_cluster.build_cells(
            TINY, fleets=[2], costs="measured", cost_model=model)[:3]
        poison = cells[1].name

        def flaky(task):
            cell, _ = task
            if cell.name == poison:
                raise RuntimeError("injected crash")
            return _cluster_cell_worker(task)

        engine = ClusterSweepEngine(
            checkpoint_dir=tmp_path, worker=flaky,
            retry=RetryPolicy.for_harness(retries=0))
        with pytest.raises(SweepCellError, match="injected crash"):
            engine.run(cells)
        resumed = ClusterSweepEngine(
            checkpoint_dir=tmp_path, resume=True,
            retry=RetryPolicy.for_harness(retries=0)).run(cells)
        assert resumed == ClusterSweepEngine().run(cells)

    def test_measured_differs_from_static_in_the_rendered_table(self):
        static = figure9_cluster.run(TINY, fleets=[2], costs="static")
        measured = figure9_cluster.run(TINY, fleets=[2], costs="measured")
        assert static.to_text() != measured.to_text()
        assert "Service costs: static" in static.notes[-1]
        assert "Service costs: measured" in measured.notes[-1]

    def test_uarch_parameter_change_invalidates_cached_cells(
            self, tmp_path):
        """The acceptance criterion: a measured-cost cell's cache entry
        dies with the machine configuration that priced it."""
        from dataclasses import replace

        model_a = self._model()
        model_b = self._model(params=replace(
            TINY.params, rob_entries=TINY.params.rob_entries // 2))
        assert model_a.uarch != model_b.uarch

        cells_a = figure9_cluster.build_cells(
            TINY, fleets=[2], costs="measured", cost_model=model_a)[:2]
        cells_b = figure9_cluster.build_cells(
            TINY, fleets=[2], costs="measured", cost_model=model_b)[:2]
        for cell_a, cell_b in zip(cells_a, cells_b):
            assert cell_a.fingerprint() != cell_b.fingerprint()

        store = ResultStore(tmp_path)
        primed = ClusterSweepEngine(store=store).run(cells_a)

        def bomb(task):
            raise AssertionError("cache miss: cell was re-executed")

        served = ClusterSweepEngine(
            store=store, worker=bomb,
            retry=RetryPolicy.for_harness(retries=0)).run(cells_a)
        assert served == primed  # same params: cache hit, bomb unexercised
        with pytest.raises(SweepCellError):
            ClusterSweepEngine(store=store, worker=bomb,
                               retry=RetryPolicy.for_harness(retries=0)
                               ).run(cells_b)

    def test_static_cells_reject_an_attached_model(self):
        with pytest.raises(ValueError, match="takes no cost_model"):
            ClusterConfig(fleet=2, requests=200, costs="static",
                          cost_model=self._model())

    def test_measured_cells_require_a_model(self):
        with pytest.raises(ValueError, match="measured"):
            ClusterConfig(fleet=2, requests=200, costs="measured")

    def test_delta_table_compares_cell_by_cell(self):
        table = figure9_cluster.delta_table(TINY, fleets=[2])
        assert len(table.rows) == (len(figure9_cluster.SKEWS)
                                   * len(figure9_cluster.FAULTS))
        for row in table.rows:
            assert int(row["p50 static"]) > 0
            assert int(row["p50 measured"]) > 0
            expected = (int(row["p99 measured"]) - int(row["p99 static"])
                        ) / int(row["p99 static"])
            assert float(row["p99 shift"]) == pytest.approx(expected)
        assert any("static" in note for note in table.notes)
        assert any("measured" in note for note in table.notes)


# -- the rendered figure ---------------------------------------------------
class TestFigureNine:
    def test_table_shape_and_invariants(self):
        table = figure9_cluster.run(TINY, fleets=[2])
        assert len(table.rows) == (len(figure9_cluster.SKEWS)
                                   * len(figure9_cluster.FAULTS))
        for row in table.rows:
            assert 0.0 <= float(row["Goodput"]) <= 1.0
            assert int(row["p50 (us)"]) <= int(row["p99 (us)"]) \
                <= int(row["p999 (us)"])
            assert int(row["Lost"]) == 0
        faults = {row["Fault"] for row in table.rows}
        assert faults == set(figure9_cluster.FAULTS)

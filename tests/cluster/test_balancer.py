"""Outlier ejection and half-open readmission, deterministically."""

from __future__ import annotations

import pytest

from repro.cluster.balancer import EJECT_THRESHOLD, MIN_SAMPLES, LoadBalancer


def _eject(balancer: LoadBalancer, node_id: int, now: int) -> None:
    for _ in range(MIN_SAMPLES):
        balancer.record(node_id, now, False)


def test_failures_below_min_samples_never_eject():
    balancer = LoadBalancer([0, 1])
    for _ in range(MIN_SAMPLES - 1):
        balancer.record(0, 0, False)
    assert balancer.healthy(0, 0)
    assert balancer.ejections == 0


def test_failure_rate_over_threshold_ejects():
    balancer = LoadBalancer([0, 1], cooldown_us=1_000)
    _eject(balancer, 0, now=10)
    assert not balancer.healthy(0, 10)
    assert balancer.ejections == 1
    assert balancer.ejected_now(10) == [0]
    assert balancer.healthy(1, 10)


def test_mostly_successful_node_stays_healthy():
    balancer = LoadBalancer([0])
    outcomes = [True] * 12 + [False] * 4  # 25% < EJECT_THRESHOLD
    assert EJECT_THRESHOLD > 0.25
    for ok in outcomes:
        balancer.record(0, 0, ok)
    assert balancer.healthy(0, 0)


def test_outcomes_during_cooldown_are_ignored():
    balancer = LoadBalancer([0], cooldown_us=1_000)
    _eject(balancer, 0, now=0)
    balancer.record(0, 500, True)  # stale response from before ejection
    assert not balancer.healthy(0, 500)
    assert balancer.readmissions == 0


def test_half_open_success_readmits():
    balancer = LoadBalancer([0], cooldown_us=1_000)
    _eject(balancer, 0, now=0)
    assert balancer.half_open(0, 1_000)
    balancer.record(0, 1_000, True)
    assert balancer.healthy(0, 1_000)
    assert not balancer.half_open(0, 1_000)
    assert balancer.readmissions == 1
    # The window restarts clean: one old failure cannot re-eject it.
    balancer.record(0, 1_001, False)
    assert balancer.healthy(0, 1_001)


def test_half_open_failure_reejects_for_another_cooldown():
    balancer = LoadBalancer([0], cooldown_us=1_000)
    _eject(balancer, 0, now=0)
    balancer.record(0, 1_000, False)
    assert not balancer.healthy(0, 1_500)
    assert balancer.healthy(0, 2_000)  # half-open again, not readmitted
    assert balancer.half_open(0, 2_000)
    assert balancer.ejections == 2
    assert balancer.readmissions == 0


def test_order_ranks_ejected_nodes_last_preserving_preference():
    balancer = LoadBalancer([0, 1, 2], cooldown_us=10_000)
    _eject(balancer, 1, now=0)
    assert balancer.order([1, 0, 2], 0) == [0, 2, 1]
    assert balancer.order([0, 1, 2], 0) == [0, 2, 1]
    # Everyone ejected: preference order is the only order left.
    _eject(balancer, 0, now=0)
    _eject(balancer, 2, now=0)
    assert balancer.order([2, 1, 0], 0) == [2, 1, 0]


def test_constructor_validation():
    with pytest.raises(ValueError, match="window"):
        LoadBalancer([0], window=MIN_SAMPLES - 1)
    with pytest.raises(ValueError, match="cooldown"):
        LoadBalancer([0], cooldown_us=0)

"""Fleet invariants: determinism, durability, hedging, readmission.

These are the promises figure 9 rests on: the same seed replays the
same fleet byte for byte; killing fewer than R replicas never loses an
acknowledged write; a hedged request is still *one* request in the
books; an ejected node comes back once it recovers; and no recorded
latency escapes the policy's structural bound.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cluster.faults import (CLUSTER_FAULT_PLANS, ClusterFaultEvent,
                                  ClusterFaultPlan)
from repro.cluster.service import (ClusterConfig, default_cluster_policy,
                                   simulate)

#: Small but busy: enough writes per key for hints and repairs to occur.
BASE = ClusterConfig(fleet=4, replication=2, requests=800, keyspace=64,
                     read_fraction=0.5, seed=11)

#: Crash that heals mid-load, so readmission happens while requests flow.
SHORT_CRASH = ClusterFaultPlan.node_crash(at_us=20_000, duration_us=15_000)


def test_same_seed_is_byte_identical():
    plan = ClusterFaultPlan.node_crash()
    config = replace(BASE, fault_plan=plan)
    first = json.dumps(simulate(config), sort_keys=True)
    second = json.dumps(simulate(config), sort_keys=True)
    assert first == second


def test_different_seeds_differ():
    first = simulate(BASE)
    second = simulate(replace(BASE, seed=12))
    assert first != second


def test_killing_fewer_than_r_replicas_loses_no_acked_write():
    config = replace(BASE, fault_plan=SHORT_CRASH)
    summary = simulate(config)
    assert summary["acked_writes"] > 0
    assert summary["acked_lost"] == 0
    assert summary["hints_stored"] > 0  # substitutes covered the owner


def test_partitioning_a_whole_shard_loses_no_acked_write():
    plan = ClusterFaultPlan(name="partition", events=(
        ClusterFaultEvent("partition", target=0, at_us=20_000,
                          duration_us=30_000),))
    summary = simulate(replace(BASE, fault_plan=plan))
    assert summary["acked_writes"] > 0
    assert summary["acked_lost"] == 0
    # The isolated shard's keys go unserved while it lasts.
    assert summary["goodput"] < 1.0


def test_hedged_requests_are_counted_once():
    plan = ClusterFaultPlan.slow_node(at_us=20_000, duration_us=60_000)
    config = replace(BASE, read_fraction=0.95, fault_plan=plan)
    summary = simulate(config)
    assert summary["hedges"] > 0
    # One observation per request, hedged or not: the books balance.
    assert summary["requests"] == config.requests
    assert summary["successes"] + summary["failures"] == config.requests
    assert summary["hedges"] <= summary["requests"]


def test_ejected_node_is_readmitted_after_recovery():
    config = replace(BASE, requests=1_200, fault_plan=SHORT_CRASH)
    summary = simulate(config)
    assert summary["ejections"] >= 1
    assert summary["readmissions"] >= 1
    assert summary["hints_replayed"] >= 1  # recovery caught it up


@pytest.mark.parametrize("plan_name", sorted(CLUSTER_FAULT_PLANS))
def test_every_latency_within_structural_bound(plan_name):
    config = replace(BASE, requests=400,
                     fault_plan=CLUSTER_FAULT_PLANS[plan_name]())
    summary = simulate(config)
    assert summary["requests"] == 400
    assert 0 <= summary["p50"] <= summary["p99"] <= summary["p999"] \
        <= summary["max"] <= summary["latency_bound"]


def test_zipf_skew_concentrates_load():
    uniform = simulate(replace(BASE, fleet=8, requests=600, theta=0.0))
    skewed = simulate(replace(BASE, fleet=8, requests=600, theta=0.99))
    assert skewed["hot_node_share"] > uniform["hot_node_share"]


def test_healthy_fleet_is_quiet():
    summary = simulate(BASE)
    assert summary["goodput"] == 1.0
    assert summary["acked_lost"] == 0
    assert summary["ejections"] == 0
    assert summary["timeouts"] == 0


def test_config_validation():
    with pytest.raises(ValueError, match="replication"):
        ClusterConfig(fleet=2, replication=3)
    with pytest.raises(ValueError, match="read_fraction"):
        ClusterConfig(read_fraction=1.5)
    with pytest.raises(ValueError, match="theta"):
        ClusterConfig(theta=1.0)
    with pytest.raises(ValueError, match="timeout"):
        ClusterConfig(policy=replace(default_cluster_policy(),
                                     timeout=None))
    with pytest.raises(ValueError, match="fleet"):
        ClusterConfig(fleet=0)

"""The simulated-time event loop: ordering, cancellation, guards."""

from __future__ import annotations

import pytest

from repro.cluster.clock import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.at(30, lambda: fired.append("c"))
    loop.at(10, lambda: fired.append("a"))
    loop.at(20, lambda: fired.append("b"))
    assert loop.run() == 30
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for label in ("first", "second", "third"):
        loop.at(5, lambda lab=label: fired.append(lab))
    loop.run()
    assert fired == ["first", "second", "third"]


def test_scheduling_into_the_past_is_rejected():
    loop = EventLoop()
    loop.at(10, lambda: loop.at(5, lambda: None))
    with pytest.raises(ValueError, match="past"):
        loop.run()


def test_scheduling_at_now_is_allowed():
    loop = EventLoop()
    fired = []
    loop.at(10, lambda: loop.at(10, lambda: fired.append("again")))
    loop.run()
    assert fired == ["again"]


def test_negative_delay_is_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError, match="non-negative"):
        loop.after(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.at(10, lambda: fired.append("cancelled"))
    loop.at(20, lambda: fired.append("kept"))
    event.cancel()
    loop.run()
    assert fired == ["kept"]
    assert loop.fired == 1  # cancelled entries are skipped, not counted


def test_horizon_guard_raises_on_runaway():
    loop = EventLoop()

    def reschedule():
        loop.after(10, reschedule)

    loop.at(0, reschedule)
    with pytest.raises(RuntimeError, match="horizon"):
        loop.run(horizon=100)


def test_until_stops_a_self_rescheduling_loop():
    loop = EventLoop()
    ticks = []

    def tick():
        ticks.append(loop.now)
        loop.after(10, tick)

    loop.at(0, tick)
    loop.run(until=lambda: len(ticks) >= 3)
    assert ticks == [0, 10, 20]


def test_len_reports_pending_entries():
    loop = EventLoop()
    loop.at(1, lambda: None)
    loop.at(2, lambda: None)
    assert len(loop) == 2
    loop.run()
    assert len(loop) == 0

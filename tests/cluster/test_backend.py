"""Replica backends: cost draws and the keyed hint index.

Two regressions guard this PR's refactors: the static cost path must
still produce the exact historical constants (the fleet figures'
cached cells depend on it), and the ``hinted_version_of`` index — now
a dict probe instead of a scan over every owner's hint list — must be
semantically identical to the old linear scan under arbitrary
interleavings of ``store_hint``/``take_hints``.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.backend import ReplicaBackend, build_backend
from repro.cluster.calibrate import static_model
from repro.cluster.costs import OP_CLASSES, OpCost, ServiceCostModel
from repro.core.validate import ValidationError

#: The hand-written µs tables, as shipped before the calibration layer.
_HISTORICAL = {
    "data-serving": {"read": 420, "update": 660, "hint": 150,
                     "repair": 260, "probe": 40},
    "web-search": {"read": 1400, "update": 900, "hint": 200,
                   "repair": 350, "probe": 40},
}


class TestCost:
    @pytest.mark.parametrize("workload", sorted(_HISTORICAL))
    def test_static_costs_are_the_historical_constants(self, workload):
        backend = build_backend(workload, node_id=3, seed=11)
        for op, expected in _HISTORICAL[workload].items():
            assert backend.cost(op) == expected
            assert backend.cost(op) == expected  # every draw, not just one

    def test_unknown_op_is_a_validation_error_naming_the_set(self):
        backend = build_backend("data-serving")
        with pytest.raises(ValidationError,
                           match="known: read, update, hint, repair, probe"):
            backend.cost("compact")

    def test_ns_samples_floor_to_one_event_loop_tick(self):
        ops = tuple((op, OpCost.flat(200)) for op in OP_CLASSES)  # 200ns
        model = ServiceCostModel(workload="data-serving",
                                 source="measured", ops=ops,
                                 uarch="a" * 64, blade_mhz=2930.0)
        backend = ReplicaBackend(model)
        assert backend.cost("read") == 1

    def test_sub_us_quantiles_round_to_microseconds(self):
        ops = tuple((op, OpCost.flat(2600)) for op in OP_CLASSES)
        model = ServiceCostModel(workload="data-serving",
                                 source="measured", ops=ops,
                                 uarch="a" * 64, blade_mhz=2930.0)
        assert ReplicaBackend(model).cost("update") == 3

    def test_draws_are_deterministic_per_node_identity(self):
        model = static_model("data-serving")
        a = [ReplicaBackend(model, node_id=2, seed=9).cost("read")
             for _ in range(3)]
        b = [ReplicaBackend(model, node_id=2, seed=9).cost("read")
             for _ in range(3)]
        assert a == b

    def test_workload_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="calibrated for"):
            build_backend("web-search", model=static_model("data-serving"))

    def test_unknown_workload_names_the_fleet(self):
        with pytest.raises(KeyError, match="no cluster backend"):
            build_backend("graph-analytics")


def _reference_hinted_version(backend: ReplicaBackend, key: int) -> int:
    """The pre-index semantics: scan every owner's hint list."""
    best = 0
    for held in backend.hints.values():
        for hint_key, version in held:
            if hint_key == key and version > best:
                best = version
    return best


class TestHintIndex:
    def test_store_take_round_trip(self):
        backend = build_backend("data-serving")
        backend.store_hint(owner=4, key=17, version=2)
        backend.store_hint(owner=4, key=17, version=5)
        backend.store_hint(owner=6, key=17, version=3)
        assert backend.hinted_version_of(17) == 5
        assert backend.take_hints(4) == [(17, 2), (17, 5)]
        assert backend.hinted_version_of(17) == 3
        assert backend.take_hints(6) == [(17, 3)]
        assert backend.hinted_version_of(17) == 0
        assert backend._hints_by_key == {}

    def test_duplicate_versions_are_multiset_counted(self):
        backend = build_backend("data-serving")
        backend.store_hint(owner=1, key=8, version=4)
        backend.store_hint(owner=2, key=8, version=4)
        backend.take_hints(1)
        assert backend.hinted_version_of(8) == 4  # owner 2 still holds it
        backend.take_hints(2)
        assert backend.hinted_version_of(8) == 0

    def test_index_matches_linear_scan_under_random_interleaving(self):
        backend = build_backend("data-serving")
        rng = random.Random(1234)
        keys = list(range(12))
        owners = list(range(5))
        for _ in range(600):
            action = rng.random()
            if action < 0.7:
                backend.store_hint(owner=rng.choice(owners),
                                   key=rng.choice(keys),
                                   version=rng.randrange(1, 50))
            else:
                backend.take_hints(rng.choice(owners))
            for key in keys:
                assert backend.hinted_version_of(key) == \
                    _reference_hinted_version(backend, key)

"""Coordinated-omission-safe accounting: intended-start latencies."""

from __future__ import annotations

import pytest

from repro.cluster.recorder import LatencyRecorder


def test_latency_is_measured_from_intended_start():
    recorder = LatencyRecorder()
    # Completion at 900 for a request *intended* at 100: the 800us
    # includes queueing the stalled server caused, not just service.
    recorder.observe(100, 900, ok=True)
    assert recorder.max_latency() == 800
    assert recorder.p50() == 800


def test_completion_before_intended_start_is_rejected():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError, match="precedes"):
        recorder.observe(100, 99, ok=True)


def test_counters_accumulate():
    recorder = LatencyRecorder()
    recorder.observe(0, 10, ok=True, retries=2, hedged=True)
    recorder.observe(0, 20, ok=False, timed_out=True)
    recorder.observe(0, 30, ok=False, dropped=True)
    assert recorder.requests == 3
    assert recorder.successes == 1
    assert recorder.failures == 2
    assert recorder.retries == 2
    assert recorder.hedges == 1
    assert recorder.timeouts == 1
    assert recorder.drops == 1
    assert recorder.goodput() == pytest.approx(1 / 3)


def test_nearest_rank_percentiles():
    recorder = LatencyRecorder()
    for latency in range(1, 1_001):  # 1..1000, inserted shuffled-ish
        recorder.observe(0, latency, ok=True)
    assert recorder.p50() == 501
    assert recorder.p99() == 991
    assert recorder.p999() == 1_000
    assert recorder.percentile(0.0) == 1
    assert recorder.percentile(1.0) == 1_000
    assert recorder.p50() <= recorder.p99() <= recorder.p999() \
        <= recorder.max_latency()


def test_empty_recorder_reports_zeroes():
    recorder = LatencyRecorder()
    assert recorder.goodput() == 0.0
    assert recorder.p999() == 0
    assert recorder.max_latency() == 0
    with pytest.raises(ValueError):
        recorder.percentile(1.5)


def test_summary_shape():
    recorder = LatencyRecorder()
    recorder.observe(0, 5, ok=True)
    summary = recorder.summary()
    assert set(summary) == {
        "requests", "successes", "failures", "goodput", "retries",
        "hedges", "timeouts", "drops", "p50", "p99", "p999", "max",
    }
    assert summary["requests"] == 1
    assert summary["goodput"] == 1.0

"""The service-cost model: tables, sampling, validation, persistence.

:class:`ServiceCostModel` is the contract between the calibration
layer and the fleet: every quantile table it carries must be positive
and monotone, every op class must come from the one authoritative
:data:`OP_CLASSES` list, and an unknown op must fail as a validation
error naming the known set — never a bare ``KeyError`` from a dict
probe.
"""

from __future__ import annotations

import pytest

from repro.cluster.costs import (NS_PER_US, OP_CLASSES, OpCost,
                                 QUANTILE_POINTS, ServiceCostModel,
                                 unknown_op_error)
from repro.core.validate import (ValidationError, check_cost_model,
                                 validate_cost_model)


def _measured(workload: str = "data-serving") -> ServiceCostModel:
    ops = tuple((op, OpCost(p25=100 + i, p50=200 + i, p75=300 + i,
                            p95=400 + i))
                for i, op in enumerate(OP_CLASSES))
    return ServiceCostModel(workload=workload, source="measured", ops=ops,
                            uarch="a" * 64, blade_mhz=2930.0)


# -- the op-class registry -------------------------------------------------
class TestOpClasses:
    def test_the_canonical_order(self):
        assert OP_CLASSES == ("read", "update", "hint", "repair", "probe")

    def test_unknown_op_error_names_the_known_set(self):
        err = unknown_op_error("bogus", OP_CLASSES)
        assert isinstance(err, ValidationError)
        assert "'bogus'" in str(err)
        for op in OP_CLASSES:
            assert op in str(err)

    def test_model_sample_rejects_unknown_op(self):
        with pytest.raises(ValidationError, match="known: read, update"):
            _measured().sample("compact", 0.5)


# -- quantile tables -------------------------------------------------------
class TestOpCost:
    def test_rejects_non_integer_quantiles(self):
        with pytest.raises(ValueError, match="integer"):
            OpCost(p25=1.5, p50=2, p75=3, p95=4)
        with pytest.raises(ValueError, match="integer"):
            OpCost(p25=True, p50=2, p75=3, p95=4)

    def test_rejects_non_positive_quantiles(self):
        with pytest.raises(ValueError, match="positive"):
            OpCost(p25=0, p50=1, p75=2, p95=3)

    def test_rejects_non_monotone_quantiles(self):
        with pytest.raises(ValueError, match="monotone"):
            OpCost(p25=10, p50=5, p75=20, p95=30)

    def test_flat_table_samples_to_the_constant(self):
        cost = OpCost.flat(420)
        assert all(cost.sample(u) == 420
                   for u in (0.0, 0.25, 0.5, 0.9, 0.999))

    def test_sample_is_monotone_in_u(self):
        cost = OpCost(p25=100, p50=200, p75=400, p95=900)
        grid = [cost.sample(i / 100) for i in range(100)]
        assert grid == sorted(grid)

    def test_sample_clamps_to_the_table_tails(self):
        cost = OpCost(p25=100, p50=200, p75=400, p95=900)
        assert cost.sample(0.0) == 100
        assert cost.sample(0.999) == 900

    def test_sample_hits_the_quantiles_exactly(self):
        cost = OpCost(p25=100, p50=200, p75=400, p95=900)
        for name, rank in QUANTILE_POINTS:
            assert cost.sample(rank) == getattr(cost, name)


# -- the model -------------------------------------------------------------
class TestServiceCostModel:
    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError, match="source"):
            ServiceCostModel(workload="data-serving", source="vibes",
                             ops=_measured().ops)

    def test_rejects_misordered_or_missing_ops(self):
        shuffled = tuple(reversed(_measured().ops))
        with pytest.raises(ValueError, match="in order"):
            ServiceCostModel(workload="data-serving", source="static",
                             ops=shuffled)
        with pytest.raises(ValueError, match="exactly"):
            ServiceCostModel(workload="data-serving", source="static",
                             ops=_measured().ops[:-1])

    def test_measured_model_requires_provenance(self):
        with pytest.raises(ValueError, match="uarch digest"):
            ServiceCostModel(workload="data-serving", source="measured",
                             ops=_measured().ops, blade_mhz=2930.0)
        with pytest.raises(ValueError, match="blade frequency"):
            ServiceCostModel(workload="data-serving", source="measured",
                             ops=_measured().ops, uarch="a" * 64)

    def test_static_tables_convert_us_to_ns(self):
        model = ServiceCostModel.static(
            "data-serving",
            {"read": 420, "update": 660, "hint": 150, "repair": 260,
             "probe": 40})
        assert model.cost_table()["read"].p50 == 420 * NS_PER_US
        assert model.sample("probe", 0.73) == 40 * NS_PER_US

    def test_static_rejects_missing_and_unknown_ops(self):
        with pytest.raises(ValueError, match="positive cost for: probe"):
            ServiceCostModel.static(
                "data-serving",
                {"read": 1, "update": 1, "hint": 1, "repair": 1})
        with pytest.raises(ValidationError, match="'compact'"):
            ServiceCostModel.static(
                "data-serving",
                {"read": 1, "update": 1, "hint": 1, "repair": 1,
                 "probe": 1, "compact": 9})

    def test_doc_round_trip(self):
        model = _measured()
        assert ServiceCostModel.from_doc(model.to_doc()) == model


# -- the persistence-layer gate --------------------------------------------
class TestCostModelValidation:
    def test_real_measured_doc_passes(self):
        assert check_cost_model(_measured().to_doc()) == []

    def test_rejects_missing_op_class(self):
        doc = _measured().to_doc()
        del doc["ops"]["probe"]
        assert any("cover exactly" in d for d in check_cost_model(doc))

    def test_rejects_misordered_quantiles(self):
        doc = _measured().to_doc()
        doc["ops"]["read"]["p50"] = doc["ops"]["read"]["p95"] + 1
        assert any("out of order" in d for d in check_cost_model(doc))

    def test_rejects_measured_doc_without_blade_frequency(self):
        doc = _measured().to_doc()
        doc["blade_mhz"] = 0
        assert any("blade_mhz" in d for d in check_cost_model(doc))

    def test_rejects_quantile_beyond_the_replayed_window(self):
        doc = _measured().to_doc()
        # 1000 cycles at 2930 MHz is ~341ns of wall clock; a p95 of
        # 400ns+ cannot have come from that window.
        doc["provenance"] = {"read": {"cycles": 1000, "uops": 900,
                                      "requests": 3}}
        assert any("wall-clock bound" in d for d in check_cost_model(doc))

    def test_validate_raises_with_context(self):
        doc = _measured().to_doc()
        doc["source"] = "guessed"
        with pytest.raises(ValidationError, match="calibration x"):
            validate_cost_model(doc, context="calibration x")

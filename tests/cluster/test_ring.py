"""Consistent-hash sharding: stable placement, distinct replicas."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing


def test_preference_list_is_distinct_and_sized():
    ring = HashRing(list(range(6)))
    for key in range(200):
        pref = ring.preference_list(key, 3)
        assert len(pref) == 3
        assert len(set(pref)) == 3
        assert all(node in range(6) for node in pref)


def test_placement_is_identical_across_instances():
    a = HashRing(list(range(8)), vnodes=32)
    b = HashRing(list(range(8)), vnodes=32)
    assert all(a.preference_list(key, 3) == b.preference_list(key, 3)
               for key in range(500))


def test_walk_yields_every_node_exactly_once():
    ring = HashRing(list(range(5)))
    walked = list(ring.walk("some-key"))
    assert sorted(walked) == [0, 1, 2, 3, 4]


def test_walk_prefix_matches_preference_list():
    ring = HashRing(list(range(7)))
    for key in range(50):
        walked = list(ring.walk(key))
        assert walked[:4] == ring.preference_list(key, 4)


def test_keys_spread_over_every_shard():
    ring = HashRing(list(range(4)), vnodes=48)
    owners = {ring.shard_of(key) for key in range(2_000)}
    assert owners == {0, 1, 2, 3}


def test_adding_a_node_moves_few_keys():
    # The point of consistent hashing: growing the fleet remaps roughly
    # 1/n of the keyspace, not all of it.
    before = HashRing(list(range(4)))
    after = HashRing(list(range(5)))
    keys = range(2_000)
    moved = sum(1 for key in keys
                if before.shard_of(key) != after.shard_of(key))
    assert 0 < moved < len(keys) // 2


def test_constructor_validation():
    with pytest.raises(ValueError, match="at least one node"):
        HashRing([])
    with pytest.raises(ValueError, match="vnodes"):
        HashRing([0], vnodes=0)
    with pytest.raises(ValueError, match="count"):
        HashRing([0]).preference_list(1, 0)

"""Calibration: capture → replay → quantile tables, deterministically.

The measured cost model is only usable by the fleet sweep if it is a
pure function of its :class:`CalibrationConfig` — byte-identical in
any process, cacheable under a structural fingerprint, and invalidated
(never aliased) when a machine parameter changes.  These tests pin
each of those properties, including the acceptance criterion that a
uarch parameter change invalidates cached measured-cost cluster cells.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.cluster.calibrate import (CalibrationConfig, FLEET_WORKLOADS,
                                     calibrate, calibration_fingerprint,
                                     static_model, uarch_digest)
from repro.cluster.costs import OP_CLASSES
from repro.core.runner import RunConfig
from repro.core.store import ResultStore
from repro.core.validate import check_cost_model

TINY = RunConfig(window_uops=6_000, warm_uops=1_000, seed=7)


def _config(workload: str = "data-serving", **overrides):
    defaults = dict(workload=workload, params=TINY.params,
                    window_uops=TINY.window_uops, warm_uops=TINY.warm_uops,
                    seed=TINY.seed)
    defaults.update(overrides)
    return CalibrationConfig(**defaults)


class TestCalibrate:
    def test_unknown_workload_names_the_fleet(self):
        with pytest.raises(KeyError, match="no cluster backend"):
            calibrate(_config("graph-analytics"), use_store=False)

    @pytest.mark.parametrize("workload", FLEET_WORKLOADS)
    def test_covers_every_op_class(self, workload):
        model = calibrate(_config(workload), use_store=False)
        assert tuple(name for name, _cost in model.ops) == OP_CLASSES
        assert model.source == "measured"
        assert model.blade_mhz == pytest.approx(TINY.params.freq_hz / 1e6)
        assert model.uarch == uarch_digest(TINY.params)

    def test_calibration_is_deterministic_in_process(self):
        first = calibrate(_config(), use_store=False)
        second = calibrate(_config(), use_store=False)
        assert first == second
        assert json.dumps(first.to_doc(), sort_keys=True) \
            == json.dumps(second.to_doc(), sort_keys=True)

    def test_measured_differs_from_static(self):
        measured = calibrate(_config(), use_store=False)
        static = static_model("data-serving")
        assert measured.cost_table() != static.cost_table()

    def test_store_round_trip_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        fingerprint = calibration_fingerprint(_config())
        assert store.get_calibration(fingerprint) is None
        first = calibrate(_config(), store=store)
        cached = store.get_calibration(fingerprint)
        assert cached is not None
        assert check_cost_model(cached) == []
        second = calibrate(_config(), store=store)
        assert first == second

    def test_cached_models_are_served_without_replay(self, tmp_path,
                                                     monkeypatch):
        store = ResultStore(tmp_path)
        first = calibrate(_config(), store=store)

        def bomb(*args, **kwargs):
            raise AssertionError("cache miss: calibration re-captured")

        import repro.trace.pipeline as pipeline
        monkeypatch.setattr(pipeline, "materialize", bomb)
        again = calibrate(_config(), store=store)
        assert again == first

    def test_blade_frequency_scales_the_tables(self):
        base = calibrate(_config(), use_store=False)
        halved = calibrate(
            _config(blade_freq_hz=TINY.params.freq_hz / 2),
            use_store=False)
        assert halved.blade_mhz == pytest.approx(base.blade_mhz / 2)
        for (op, slow), (_, fast) in zip(halved.ops, base.ops):
            assert slow.p50 == pytest.approx(2 * fast.p50, abs=2), op

    def test_fingerprint_changes_with_any_uarch_parameter(self):
        base = _config()
        shrunk = _config(params=dataclasses.replace(
            TINY.params, rob_entries=TINY.params.rob_entries // 2))
        assert uarch_digest(base.params) != uarch_digest(shrunk.params)
        assert calibration_fingerprint(base) \
            != calibration_fingerprint(shrunk)

    def test_cross_process_byte_identity(self, tmp_path):
        """Two fresh interpreters, two fresh caches, one model."""
        script = (
            "import json\n"
            "from repro.cluster.calibrate import CalibrationConfig, "
            "calibrate\n"
            "from repro.core.runner import RunConfig\n"
            "cfg = RunConfig(window_uops=6000, warm_uops=1000, seed=7)\n"
            "model = calibrate(CalibrationConfig(workload='data-serving',"
            " params=cfg.params, window_uops=6000, warm_uops=1000,"
            " seed=7))\n"
            "print(json.dumps(model.to_doc(), sort_keys=True))\n"
        )
        outputs = []
        for run in ("one", "two"):
            env = dict(os.environ)
            env["REPRO_CACHE_DIR"] = str(tmp_path / run)
            env["PYTHONPATH"] = "src"
            proc = subprocess.run(
                [sys.executable, "-c", script], cwd="/root/repo",
                env=env, capture_output=True, text=True, timeout=600)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

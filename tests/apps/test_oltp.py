"""OLTP substrate: B+-tree, storage engine, transactions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.oltp import BPlusTree, StorageEngine, TpccApp, TpceApp
from repro.apps.oltp.transactions import TpccDatabase
from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.runtime import Runtime


@pytest.fixture()
def space():
    return AddressSpace()


@pytest.fixture()
def rt():
    layout = CodeLayout()
    return Runtime(layout, main=layout.function("m", 8192))


class TestBPlusTree:
    def test_insert_search(self, space):
        tree = BPlusTree(space)
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.search(5) == "five"
        assert tree.search(3) == "three"
        assert tree.search(4) is None

    def test_overwrite(self, space):
        tree = BPlusTree(space)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == "b"
        assert len(tree) == 1

    def test_many_inserts_stay_sorted(self, space):
        tree = BPlusTree(space)
        keys = list(range(2000))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        in_order = [k for k, _ in tree.items()]
        assert in_order == sorted(keys)
        assert tree.height > 1

    def test_range_scan(self, space):
        tree = BPlusTree(space)
        for key in range(0, 200, 2):
            tree.insert(key, key)
        scan = tree.range_scan(50, 5)
        assert [k for k, _ in scan] == [50, 52, 54, 56, 58]

    def test_range_scan_crosses_leaves(self, space):
        tree = BPlusTree(space)
        for key in range(500):
            tree.insert(key, key)
        scan = tree.range_scan(0, 100)
        assert [k for k, _ in scan] == list(range(100))

    def test_traced_search_emits_dependent_chain(self, space, rt):
        tree = BPlusTree(space)
        for key in range(1000):
            tree.insert(key, key)
        rt.take()
        tree.search(567, rt)
        loads = [u for u in rt.take() if u.kind == 1]
        assert len(loads) >= tree.height * 2
        dependent = sum(1 for u in loads if u.deps)
        assert dependent >= len(loads) - 1  # a single chain

    @settings(max_examples=25, deadline=None)
    @given(items=st.dictionaries(st.integers(0, 100_000), st.integers(),
                                 min_size=1, max_size=300))
    def test_property_behaves_like_a_dict(self, items):
        tree = BPlusTree(AddressSpace())
        for key, value in items.items():
            tree.insert(key, value)
        assert len(tree) == len(items)
        for key, value in items.items():
            assert tree.search(key) == value
        assert [k for k, _ in tree.items()] == sorted(items)


class TestStorageEngine:
    def test_table_lifecycle(self, space, rt):
        engine = StorageEngine(space)
        table = engine.create_table("t", 100, 128)
        table.insert(5, rt)
        assert table.read(5, rt) is not None
        assert table.read(6, rt) is None
        assert table.update(5, rt)
        assert not table.update(6, rt)

    def test_duplicate_table_rejected(self, space):
        engine = StorageEngine(space)
        engine.create_table("t", 10, 64)
        with pytest.raises(ValueError):
            engine.create_table("t", 10, 64)

    def test_lock_manager_acquire_release(self, space, rt):
        engine = StorageEngine(space)
        engine.locks.acquire(rt, hash(("row", 1)))
        engine.locks.acquire(rt, hash(("row", 2)))
        assert engine.locks.acquisitions == 2
        assert len(engine.locks.held) == 2
        engine.locks.release_all(rt)
        assert not engine.locks.held

    def test_log_append_advances(self, space, rt):
        engine = StorageEngine(space)
        a = engine.log_append(rt, 128)
        b = engine.log_append(rt, 128)
        assert b == a + 128
        assert engine.stats.log_records == 2


class TestTpccDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        space = AddressSpace()
        engine = StorageEngine(space)
        return TpccDatabase(engine, warehouses=2, seed=1)

    @pytest.fixture()
    def db_rt(self, db):
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        from repro.machine.os_model import OsKernel
        kernel = OsKernel(AddressSpace(), layout)
        return db, rt, kernel

    def test_population_counts(self, db):
        assert len(db.warehouse.index) == 2
        assert len(db.district.index) == 20
        assert len(db.customer.index) == 20 * 300
        assert len(db.item.index) == 10_000

    @pytest.mark.parametrize("txn", [
        "new_order", "payment", "order_status", "delivery", "stock_level",
    ])
    def test_transactions_execute_and_emit(self, db_rt, txn):
        db, rt, kernel = db_rt
        before = db.engine.stats.transactions
        getattr(db, txn)(rt, kernel)
        assert db.engine.stats.transactions == before + 1
        assert rt.take(), f"{txn} emitted nothing"

    def test_new_order_advances_order_ids(self, db_rt):
        db, rt, kernel = db_rt
        before = db._next_order_id
        db.new_order(rt, kernel)
        assert db._next_order_id == before + 1

    def test_payment_locks_warehouse_and_district(self, db_rt):
        db, rt, kernel = db_rt
        before = db.engine.locks.acquisitions
        db.payment(rt, kernel)
        assert db.engine.locks.acquisitions >= before + 2


class TestOltpApps:
    def test_tpcc_serves_transactions(self):
        app = TpccApp(seed=8)
        list(app.trace(0, 20_000))
        assert app.engine.stats.transactions > 2

    def test_tpce_serves_transactions(self):
        app = TpceApp(seed=8)
        list(app.trace(0, 20_000))
        assert app.engine.stats.transactions > 2

    def test_tpcc_mix_prefers_new_order_and_payment(self):
        app = TpccApp(seed=8)
        picks = [app._pick_txn() for _ in range(2000)]
        frequent = picks.count("new_order") + picks.count("payment")
        assert frequent / len(picks) > 0.8


class TestAborts:
    def test_some_new_orders_roll_back(self):
        space = AddressSpace()
        from repro.apps.oltp.engine import StorageEngine
        from repro.machine.os_model import OsKernel

        engine = StorageEngine(space)
        db = TpccDatabase(engine, warehouses=2, seed=3)
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        kernel = OsKernel(AddressSpace(), layout)
        for _ in range(400):
            db.new_order(rt, kernel)
            rt.take()
        assert engine.stats.aborts > 0
        assert engine.stats.aborts < 40  # ~1%, not a flood
        assert engine.stats.transactions == 400


class TestBPlusTreeDelete:
    def test_delete_removes_key(self, space):
        tree = BPlusTree(space)
        for key in range(100):
            tree.insert(key, key)
        assert tree.delete(50)
        assert tree.search(50) is None
        assert len(tree) == 99

    def test_delete_absent_key(self, space):
        tree = BPlusTree(space)
        tree.insert(1, 1)
        assert not tree.delete(2)
        assert len(tree) == 1

    def test_order_preserved_after_deletes(self, space):
        tree = BPlusTree(space)
        for key in range(300):
            tree.insert(key, key)
        for key in range(0, 300, 3):
            assert tree.delete(key)
        remaining = [k for k, _ in tree.items()]
        assert remaining == [k for k in range(300) if k % 3]

    def test_range_scan_skips_deleted(self, space):
        tree = BPlusTree(space)
        for key in range(20):
            tree.insert(key, key)
        tree.delete(5)
        scan = [k for k, _ in tree.range_scan(4, 3)]
        assert scan == [4, 6, 7]

    def test_traced_delete_emits_store(self, space, rt):
        tree = BPlusTree(space)
        for key in range(64):
            tree.insert(key, key)
        rt.take()
        tree.delete(10, rt)
        assert any(u.kind == 2 for u in rt.take())

    @settings(max_examples=20, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.booleans(), st.integers(0, 200)),
            min_size=1, max_size=300,
        )
    )
    def test_property_interleaved_insert_delete_matches_dict(self, operations):
        tree = BPlusTree(AddressSpace())
        model: dict[int, int] = {}
        for is_insert, key in operations:
            if is_insert:
                tree.insert(key, key * 3)
                model[key] = key * 3
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        assert [k for k, _ in tree.items()] == sorted(model)
        for key, value in model.items():
            assert tree.search(key) == value


class TestDeliveryQueue:
    def test_delivery_drains_the_new_order_queue(self):
        space = AddressSpace()
        engine = StorageEngine(space)
        db = TpccDatabase(engine, warehouses=2, seed=5)
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        from repro.machine.os_model import OsKernel
        kernel = OsKernel(AddressSpace(), layout)
        for _ in range(30):
            db.new_order(rt, kernel)
        queued = len(db.new_order_queue.index)
        assert queued > 0
        db.delivery(rt, kernel)
        assert len(db.new_order_queue.index) <= max(0, queued - 1)


class TestCustomerNameIndex:
    def test_secondary_index_covers_every_customer(self):
        space = AddressSpace()
        engine = StorageEngine(space)
        db = TpccDatabase(engine, warehouses=1, seed=1)
        assert len(db.customer_by_name) == len(db.customer.index)

    def test_lookup_by_name_returns_matching_customer(self):
        space = AddressSpace()
        engine = StorageEngine(space)
        db = TpccDatabase(engine, warehouses=1, seed=1)
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        for _ in range(20):
            customer = db._customer_by_last_name(rt)
            assert 0 <= customer < db.districts * db.customers_per_district

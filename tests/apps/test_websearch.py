"""Web Search: index construction and query evaluation."""

import numpy as np
import pytest

from repro.apps.websearch import InvertedIndex, WebSearchApp
from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.runtime import Runtime


@pytest.fixture()
def index_rt():
    space = AddressSpace()
    layout = CodeLayout()
    rt = Runtime(layout, main=layout.function("m", 8192))
    index = InvertedIndex(space, num_terms=500, num_docs=5_000, seed=3)
    index.load_dictionary(rt)
    rt.take()
    return index, rt


class TestIndexStructure:
    def test_dfs_follow_zipf(self, index_rt):
        index, _ = index_rt
        assert index.dfs[0] >= index.dfs[100] >= index.dfs[400]

    def test_postings_sorted_unique(self, index_rt):
        index, _ = index_rt
        for term in (0, 10, 250):
            postings = index.postings(term)
            assert len(postings) == int(index.dfs[term])
            assert np.all(np.diff(postings) > 0)
            assert postings.max() < index.num_docs

    def test_postings_deterministic(self, index_rt):
        index, _ = index_rt
        first = index.postings(42).copy()
        index._materialized.clear()
        assert np.array_equal(index.postings(42), first)

    def test_posting_addresses_disjoint_between_terms(self, index_rt):
        index, _ = index_rt
        end_of_0 = index.posting_addr(0, int(index.dfs[0]) - 1)
        start_of_1 = index.posting_addr(1, 0)
        assert start_of_1 > end_of_0

    def test_dictionary_lookup(self, index_rt):
        index, rt = index_rt
        info = index.lookup_term(rt, 3)
        assert info == (int(index._offsets[3]), int(index.dfs[3]))


class TestQueryEvaluation:
    def test_results_appear_in_all_posting_lists(self, index_rt):
        index, rt = index_rt
        terms = [1, 2]
        result = index.evaluate_and(rt, terms, max_scan=10_000)
        for doc in result.doc_ids:
            for term in terms:
                assert doc in index.postings(term)

    def test_scores_sorted_descending(self, index_rt):
        index, rt = index_rt
        result = index.evaluate_and(rt, [0, 1], max_scan=10_000)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_at_most_ten_results(self, index_rt):
        index, rt = index_rt
        result = index.evaluate_and(rt, [0, 1], max_scan=10_000)
        assert len(result.doc_ids) <= 10

    def test_unknown_term_returns_empty(self, index_rt):
        index, rt = index_rt
        assert index.evaluate_and(rt, [10**6]).doc_ids == []

    def test_snippet_reads_doc_store(self, index_rt):
        index, rt = index_rt
        rt.take()
        index.snippet(rt, doc_id=17, lines=4)
        loads = [u for u in rt.take() if u.kind == 1]
        assert len(loads) == 4
        assert all(
            index.docstore_base <= u.addr
            < index.docstore_base + index.num_docs * index.doc_bytes
            for u in loads
        )


class TestWebSearchApp:
    def test_serves_queries(self):
        app = WebSearchApp(seed=6, num_terms=2_000, num_docs=10_000)
        list(app.trace(0, 20_000))
        assert app.queries_served > 3

    def test_returns_results(self):
        app = WebSearchApp(seed=6, num_terms=2_000, num_docs=10_000)
        list(app.trace(0, 40_000))
        assert app.results_returned > 0

    def test_warm_ranges_cover_hot_postings(self):
        app = WebSearchApp(seed=6, num_terms=4_000, num_docs=10_000)
        ranges = app.warm_ranges()
        assert len(ranges) > 1000


class TestDisjunctiveEvaluation:
    def test_or_results_appear_in_some_posting_list(self, index_rt):
        index, rt = index_rt
        terms = [3, 4]
        result = index.evaluate_or(rt, terms, max_scan=10_000)
        for doc in result.doc_ids:
            assert any(doc in index.postings(t) for t in terms)

    def test_or_is_a_superset_of_and(self, index_rt):
        index, rt = index_rt
        terms = [1, 2]
        both = index.evaluate_and(rt, terms, max_scan=10_000)
        union = index.evaluate_or(rt, terms, max_scan=10_000)
        assert union.postings_scanned >= 0
        assert len(union.doc_ids) >= min(len(both.doc_ids), 10) or \
            len(union.doc_ids) == 10

    def test_or_scores_rank_multi_term_matches_higher(self, index_rt):
        index, rt = index_rt
        result = index.evaluate_or(rt, [5, 6], max_scan=10_000)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_or_with_unknown_terms_only(self, index_rt):
        index, rt = index_rt
        assert index.evaluate_or(rt, [10**6]).doc_ids == []

"""ServerApp base scaffolding: runtimes, tracing, functional warming."""

from repro.apps.satsolver import SatSolverApp
from repro.apps.synth import ParsecCpuApp
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams


class TestRuntimes:
    def test_runtime_per_thread_is_cached(self):
        app = ParsecCpuApp(seed=1)
        assert app.runtime(0) is app.runtime(0)
        assert app.runtime(0) is not app.runtime(1)

    def test_runtimes_have_distinct_tids(self):
        app = ParsecCpuApp(seed=1)
        assert app.runtime(0).tid == 0
        assert app.runtime(2).tid == 2

    def test_request_ids_monotonic(self):
        app = ParsecCpuApp(seed=1)
        ids = [app.next_request_id() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5


class TestTracing:
    def test_trace_meets_budget(self):
        app = ParsecCpuApp(seed=1)
        trace = list(app.trace(0, 3_000))
        assert len(trace) >= 3_000

    def test_trace_segments_split_the_budget(self):
        app = ParsecCpuApp(seed=1)
        segments = app.trace_segments(0, 4_000, 4)
        assert len(segments) == 4
        lengths = [len(list(segment)) for segment in segments]
        assert all(length >= 1_000 for length in lengths)

    def test_trace_continues_app_state(self):
        app = SatSolverApp(seed=1, nvars=40, clause_ratio=3.0)
        list(app.trace(0, 4_000))
        first = app._query_counter
        list(app.trace(0, 4_000))
        assert app._query_counter > first


class TestWarming:
    def test_warm_installs_code_and_ranges_into_llc(self):
        app = ParsecCpuApp(seed=1)
        params = MachineParams()
        hierarchy = MemoryHierarchy(params)
        app.warm(hierarchy, trace_uops=2_000)
        # All registered code lines are resident.
        fn = app.loop_fn
        resident = sum(
            1 for addr in range(fn.base, fn.base + fn.size, 64)
            if hierarchy.llc.contains(addr)
        )
        assert resident == fn.size // 64
        # Kernel warm ranges came along via the base implementation.
        skb = app.kernel._skb_pool_base
        assert hierarchy.llc.contains(skb)

    def test_warm_replay_fills_upper_levels(self):
        app = ParsecCpuApp(seed=1)
        hierarchy = MemoryHierarchy(MachineParams())
        app.warm(hierarchy, trace_uops=4_000)
        assert hierarchy.l1d.resident_lines() > 0
        assert hierarchy.l1i.resident_lines() > 0

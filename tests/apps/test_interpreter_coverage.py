"""Interpreter: full opcode-set coverage and assembler control flow."""

import pytest

from repro.apps.webstack import CompiledScript, Opcode, PhpInterpreter
from repro.apps.webstack.olio import ScriptAssembler


def run(code, args=None):
    return PhpInterpreter().execute(CompiledScript("t", code), args=args)


class TestRemainingOpcodes:
    def test_forward_jmp_skips_code(self):
        result = run([
            (Opcode.JMP, 3),
            (Opcode.PUSH, 111),
            (Opcode.ECHO, 0),
            (Opcode.PUSH, 222),
            (Opcode.ECHO, 0),
        ])
        assert result.output == [222]

    def test_add(self):
        assert run([(Opcode.PUSH, 2), (Opcode.PUSH, 3), (Opcode.ADD, 0),
                    (Opcode.RET, 0)]).return_value == 5

    def test_cmp_lt_false(self):
        assert run([(Opcode.PUSH, 5), (Opcode.PUSH, 2), (Opcode.CMP_LT, 0),
                    (Opcode.RET, 0)]).return_value == 0

    def test_call_fn_is_deterministic(self):
        a = run([(Opcode.PUSH, 4), (Opcode.CALL_FN, 7), (Opcode.RET, 0)])
        b = run([(Opcode.PUSH, 4), (Opcode.CALL_FN, 7), (Opcode.RET, 0)])
        assert a.return_value == b.return_value

    def test_ret_with_empty_stack(self):
        assert run([(Opcode.RET, 0)]).return_value is None

    def test_program_end_without_ret(self):
        result = run([(Opcode.PUSH, 1), (Opcode.ECHO, 0)])
        assert result.return_value is None
        assert result.output == [1]

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            run([(99, 0)])

    def test_opcode_count_tracked(self):
        result = run([(Opcode.PUSH, 1), (Opcode.PUSH, 2), (Opcode.ADD, 0),
                      (Opcode.RET, 0)])
        assert result.opcodes_executed == 4


class TestAssemblerControlFlow:
    def test_nested_loops(self):
        asm = ScriptAssembler("nested")

        def inner(a):
            a.counted_loop(2, 3, lambda b: (b.emit(Opcode.PUSH, 1),
                                            b.emit(Opcode.ECHO)))

        asm.counted_loop(0, 4, inner)
        asm.emit(Opcode.PUSH, 0)
        asm.emit(Opcode.RET)
        result = PhpInterpreter().execute(asm.build())
        assert result.output == [1] * 12

    def test_zero_iteration_loop(self):
        asm = ScriptAssembler("empty")
        asm.counted_loop(0, 0, lambda a: a.emit(Opcode.ECHO))
        asm.emit(Opcode.PUSH, 7)
        asm.emit(Opcode.RET)
        result = PhpInterpreter().execute(asm.build())
        assert result.return_value == 7
        assert result.output == []

    def test_patch_rewrites_operand(self):
        asm = ScriptAssembler("p")
        index = asm.emit(Opcode.JZ, 0)
        asm.patch(index, 42)
        assert asm.code[index] == (int(Opcode.JZ), 42)

    def test_here_tracks_position(self):
        asm = ScriptAssembler("h")
        assert asm.here() == 0
        asm.emit(Opcode.PUSH, 1)
        assert asm.here() == 1


class TestTracedExecutionConsistency:
    def test_traced_and_untraced_agree(self):
        """Tracing must not change the program's semantics."""
        from repro.machine.address_space import AddressSpace
        from repro.machine.codelayout import CodeLayout
        from repro.machine.runtime import Runtime

        code = [
            (Opcode.PUSH, 10), (Opcode.STORE, 0),
            (Opcode.LOAD, 0), (Opcode.PUSH, 32), (Opcode.ADD, 0),
            (Opcode.ECHO, 0), (Opcode.PUSH, 1), (Opcode.RET, 0),
        ]
        plain = PhpInterpreter().execute(CompiledScript("x", code))

        space = AddressSpace()
        layout = CodeLayout()
        handlers = layout.function("handlers", 64 * 1024)
        interp = PhpInterpreter(space, handlers_fn=handlers)
        script = CompiledScript("x", code)
        script.place(space)
        rt = Runtime(layout, main=layout.function("m", 8192))
        with rt.frame(handlers):
            traced = interp.execute(script, rt)
        assert traced.output == plain.output
        assert traced.return_value == plain.return_value
        assert rt.take()  # and it really emitted micro-ops

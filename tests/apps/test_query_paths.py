"""Per-query/per-transaction coverage for the server-side workloads."""

import pytest

from repro.apps.oltp.engine import StorageEngine
from repro.apps.oltp.transactions import TpceDatabase
from repro.apps.specweb import SpecWebApp
from repro.apps.webbackend import WebBackendApp
from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.os_model import OsKernel
from repro.machine.runtime import Runtime


@pytest.fixture()
def rt():
    layout = CodeLayout()
    return Runtime(layout, main=layout.function("m", 8192))


class TestWebBackendQueries:
    @pytest.fixture(scope="class")
    def app(self):
        return WebBackendApp(seed=6)

    @pytest.mark.parametrize("query", [
        "q_event_list", "q_event_detail", "q_user", "q_tag_search",
        "q_comments", "q_insert_event", "q_insert_comment",
    ])
    def test_query_emits_work(self, app, query):
        rt = app.runtime(0)
        rt.take()
        getattr(app, f"_{query}")(rt)
        buf = rt.take()
        assert buf, query
        assert any(u.kind in (1, 2) for u in buf), query

    def test_inserts_grow_the_tables(self, app):
        rt = app.runtime(0)
        before = len(app.events.index)
        app._q_insert_event(rt)
        # Insert wraps at capacity but at this fill level it grows.
        assert len(app.events.index) == before + 1
        rt.take()

    def test_event_list_reads_event_rows(self, app):
        rt = app.runtime(0)
        rt.take()
        app._q_event_list(rt)
        rows_base = app.events.rows.base
        rows_end = rows_base + app.events.rows.nbytes
        row_reads = [u for u in rt.take()
                     if u.kind == 1 and rows_base <= u.addr < rows_end]
        assert row_reads


class TestTpceTransactions:
    @pytest.fixture(scope="class")
    def db(self):
        engine = StorageEngine(AddressSpace())
        return TpceDatabase(engine, customers=2_000, seed=2)

    @pytest.fixture()
    def db_rt(self, db):
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        kernel = OsKernel(AddressSpace(), layout)
        return db, rt, kernel

    @pytest.mark.parametrize("txn", [
        "trade_order", "trade_result", "trade_lookup", "market_feed",
    ])
    def test_transactions_execute(self, db_rt, txn):
        db, rt, kernel = db_rt
        before = db.engine.stats.transactions
        getattr(db, txn)(rt, kernel)
        assert db.engine.stats.transactions == before + 1
        assert rt.take()

    def test_trade_orders_accumulate(self, db_rt):
        db, rt, kernel = db_rt
        before = db._next_trade
        db.trade_order(rt, kernel)
        db.trade_order(rt, kernel)
        assert db._next_trade == before + 2

    def test_market_feed_updates_securities(self, db_rt):
        db, rt, kernel = db_rt
        locks_before = db.engine.locks.acquisitions
        db.market_feed(rt, kernel)
        assert db.engine.locks.acquisitions >= locks_before + 8


class TestSpecWebPaths:
    def test_static_path_uses_page_cache_and_sendfile(self):
        app = SpecWebApp(seed=7, num_clients=4, num_files=10)
        rt = app.runtime(0)
        session = app.driver.sessions[0]
        rt.take()
        packets_before = app.kernel.packets_sent
        app._static(rt, session, 8 * 1024)
        buf = rt.take()
        assert app.kernel.packets_sent > packets_before
        # sendfile: no skb payload stores for the body.
        skb_base = app.kernel._skb_pool_base
        skb_end = skb_base + app.kernel._skb_pool_slots * 2048
        body_stores = [u for u in buf if u.kind == 2
                       and skb_base <= u.addr < skb_end]
        assert not body_stores

    def test_dynamic_path_context_switches(self):
        app = SpecWebApp(seed=7, num_clients=4, num_files=10)
        rt = app.runtime(0)
        session = app.driver.sessions[1]
        rt.take()
        sched = app.kernel.fns["scheduler"]
        app._dynamic(rt, session)
        buf = rt.take()
        in_scheduler = [u for u in buf
                        if sched.base <= u.pc < sched.base + sched.size]
        assert in_scheduler  # the FastCGI hop really switches contexts

"""Media Streaming: library, sessions, packetization."""

import pytest

from repro.apps.streaming import MediaLibrary, MediaStreamingApp
from repro.machine.address_space import AddressSpace


class TestMediaLibrary:
    def test_files_within_configured_sizes(self):
        library = MediaLibrary(AddressSpace(), num_files=10, min_mb=2,
                               max_mb=4, seed=1)
        for media in library.files:
            assert 2 << 20 <= media.nbytes <= 4 << 20

    def test_files_do_not_overlap(self):
        library = MediaLibrary(AddressSpace(), num_files=10, seed=1)
        spans = sorted((f.base, f.base + f.nbytes) for f in library.files)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_addr_wraps_within_file(self):
        library = MediaLibrary(AddressSpace(), num_files=1, seed=1)
        media = library.files[0]
        assert media.addr(media.nbytes + 64) == media.base + 64

    def test_bitrates_are_low(self):
        library = MediaLibrary(AddressSpace(), num_files=20, seed=2)
        assert all(f.bitrate_kbps <= 800 for f in library.files)  # §3.2

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            MediaLibrary(AddressSpace(), num_files=0)


class TestMediaStreamingApp:
    def test_streams_packets(self):
        app = MediaStreamingApp(seed=2, num_clients=16, num_files=4)
        list(app.trace(0, 20_000))
        assert app.packets_streamed > 3
        assert app.bytes_streamed == app.packets_streamed * 1448

    def test_sessions_advance_through_their_files(self):
        app = MediaStreamingApp(seed=2, num_clients=4, num_files=2)
        offsets_before = [s.state["offset"] for s in app.driver.sessions]
        list(app.trace(0, 30_000))
        offsets_after = [s.state["offset"] for s in app.driver.sessions]
        assert offsets_before != offsets_after

    def test_each_session_reads_its_own_position(self):
        app = MediaStreamingApp(seed=2, num_clients=8, num_files=2)
        offsets = [s.state["offset"] for s in app.driver.sessions]
        assert len(set(offsets)) > 4  # unicast: per-client positions

    def test_global_counters_written_every_packet(self):
        app = MediaStreamingApp(seed=2, num_clients=4, num_files=2)
        trace = list(app.trace(0, 20_000))
        stats_writes = [
            u for u in trace
            if u.kind == 2 and app.global_stats <= u.addr < app.global_stats + 256
        ]
        assert len(stats_writes) >= app.packets_streamed * 0.8

    def test_os_share_is_substantial(self):
        app = MediaStreamingApp(seed=2, num_clients=8, num_files=2)
        trace = list(app.trace(0, 15_000))
        os_fraction = sum(u.is_os for u in trace) / len(trace)
        assert 0.03 < os_fraction < 0.6


class TestSessionChurn:
    def test_reconnect_is_part_of_the_operation_mix(self):
        app = MediaStreamingApp(seed=9, num_clients=8, num_files=4)
        assert "reconnect" in app.driver._ops

    def test_reconnect_counts_and_rebinds_the_session(self):
        app = MediaStreamingApp(seed=9, num_clients=8, num_files=4)
        rt = app.runtime(0)
        session = app.driver.sessions[3]
        app._reconnect(rt, session)
        assert app.sessions_churned == 1
        assert session.state["file"] in app.library.files

    def test_reconnected_sessions_start_at_the_beginning(self):
        app = MediaStreamingApp(seed=9, num_clients=4, num_files=4)
        rt = app.runtime(0)
        session = app.driver.sessions[0]
        session.state["offset"] = 9999 * 64
        app._reconnect(rt, session)
        assert session.state["offset"] == 0

"""SPECweb09, Web Backend, and the PARSEC/SPECint proxies."""

import pytest

from repro.apps.specweb import SpecWebApp
from repro.apps.synth import (
    McfApp,
    ParsecCpuApp,
    ParsecMemApp,
    SpecIntCpuApp,
    SpecIntMemApp,
)
from repro.apps.webbackend import WebBackendApp


class TestSpecWeb:
    def test_serves_requests(self):
        app = SpecWebApp(seed=3, num_clients=8, num_files=50)
        list(app.trace(0, 15_000))
        assert app.requests_served > 3

    def test_static_dominates_the_mix(self):
        app = SpecWebApp(seed=3, num_clients=8, num_files=50)
        list(app.trace(0, 40_000))
        issued = app.driver.issued
        static = issued["static_small"] + issued["static_large"]
        total = static + issued["dynamic_page"]
        assert static / total > 0.6

    def test_os_dominates_execution(self):
        app = SpecWebApp(seed=3, num_clients=8, num_files=50)
        trace = list(app.trace(0, 20_000))
        os_fraction = sum(u.is_os for u in trace) / len(trace)
        assert os_fraction > 0.4  # the traditional-web signature

    def test_page_cache_fills_with_static_files(self):
        app = SpecWebApp(seed=3, num_clients=8, num_files=50)
        list(app.trace(0, 30_000))
        assert app.kernel.pages_cached > 5


class TestWebBackend:
    def test_serves_queries(self):
        app = WebBackendApp(seed=4)
        list(app.trace(0, 15_000))
        assert app.queries_served > 3

    def test_mix_is_read_heavy(self):
        app = WebBackendApp(seed=4)
        reads = sum(w for name, w in app.QUERY_MIX if "insert" not in name)
        writes = sum(w for name, w in app.QUERY_MIX if "insert" in name)
        assert reads / (reads + writes) > 0.9

    def test_tables_populated(self):
        app = WebBackendApp(seed=4)
        assert len(app.users.index) == 100_000
        assert len(app.events.index) == 50_000


class TestSynthKernels:
    @pytest.mark.parametrize("cls", [
        ParsecCpuApp, ParsecMemApp, SpecIntCpuApp, SpecIntMemApp, McfApp,
    ])
    def test_kernels_emit_user_only_uops(self, cls):
        app = cls(seed=5)
        trace = list(app.trace(0, 5_000))
        assert len(trace) >= 5_000
        assert not any(u.is_os for u in trace)

    def test_member_selection(self):
        app = ParsecMemApp(seed=5, member="canneal")
        assert [k.name for k in app.KERNELS] == ["canneal"]
        with pytest.raises(KeyError):
            ParsecMemApp(seed=5, member="nope")

    def test_member_names(self):
        assert ParsecCpuApp.member_names() == ["blackscholes", "swaptions"]
        assert SpecIntMemApp.member_names() == ["mcf", "libquantum"]

    def test_groups_alternate_members(self):
        app = SpecIntCpuApp(seed=5)
        list(app.trace(0, 4_000))
        assert app.iterations >= 2  # both kernels got a turn

    def test_mcf_walks_a_large_working_set(self):
        app = McfApp(seed=5)
        trace = [u for u in app.trace(0, 8_000) if u.kind == 1]
        arena = app.arenas["mcf"]
        touched = {u.addr for u in trace if u.addr >= arena}
        span = max(touched) - min(touched)
        assert span > 8 << 20  # far beyond the LLC

    def test_stream_kernels_walk_sequentially(self):
        app = ParsecMemApp(seed=5, member="streamcluster")
        loads = [u.addr for u in app.trace(0, 3_000) if u.kind == 1]
        deltas = [b - a for a, b in zip(loads, loads[1:])]
        assert deltas.count(64) > len(deltas) * 0.5

"""SAT solver: completeness, model validity, traced behaviour."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.satsolver import DpllSolver, SatSolverApp, check_model, random_3sat
from repro.machine.address_space import AddressSpace


def brute_force_sat(nvars, clauses) -> bool:
    for bits in itertools.product([False, True], repeat=nvars):
        model = {v + 1: bits[v] for v in range(nvars)}
        if check_model(clauses, model):
            return True
    return False


class TestKnownFormulas:
    def test_single_unit_clause(self):
        solver = DpllSolver(1, [(1,)])
        assert solver.solve() == "sat"
        assert solver.model()[1] is True

    def test_contradictory_units(self):
        solver = DpllSolver(1, [(1,), (-1,)])
        assert solver.solve() == "unsat"

    def test_simple_satisfiable(self):
        clauses = [(1, 2), (-1, 2), (1, -2)]
        solver = DpllSolver(2, clauses)
        assert solver.solve() == "sat"
        assert check_model(clauses, solver.model())

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: x1 and x2 say "pigeon i in hole 1".
        clauses = [(1,), (2,), (-1, -2)]
        assert DpllSolver(2, clauses).solve() == "unsat"

    def test_chain_of_implications(self):
        # x1 and (x1 -> x2) and (x2 -> x3) ... forces all true.
        clauses = [(1,)] + [(-v, v + 1) for v in range(1, 6)]
        solver = DpllSolver(6, clauses)
        assert solver.solve() == "sat"
        assert all(solver.model()[v] for v in range(1, 7))

    def test_all_negative_chain(self):
        clauses = [(-1,)] + [(1, -2), (2, -3)]
        solver = DpllSolver(3, clauses)
        assert solver.solve() == "sat"
        model = solver.model()
        assert not model[1] and not model[2] and not model[3]

    def test_unsat_3sat_core(self):
        # All eight clauses over three variables: unsatisfiable.
        clauses = [
            tuple(v if bit else -v for v, bit in zip((1, 2, 3), bits))
            for bits in itertools.product([True, False], repeat=3)
        ]
        assert DpllSolver(3, clauses).solve() == "unsat"


class TestGenerator:
    def test_random_3sat_shape(self):
        clauses = random_3sat(10, 42, seed=1)
        assert len(clauses) == 42
        for clause in clauses:
            assert len(clause) == 3
            variables = {abs(l) for l in clause}
            assert len(variables) == 3
            assert all(1 <= v <= 10 for v in variables)

    def test_deterministic(self):
        assert random_3sat(8, 20, seed=3) == random_3sat(8, 20, seed=3)
        assert random_3sat(8, 20, seed=3) != random_3sat(8, 20, seed=4)

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            random_3sat(2, 5)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_solver_agrees_with_brute_force(seed):
    """Property: on small random instances the solver's SAT/UNSAT verdict
    matches exhaustive search, and SAT models really satisfy."""
    nvars = 6
    clauses = random_3sat(nvars, 26, seed=seed)  # ratio > 4.2: mixed results
    solver = DpllSolver(nvars, clauses, seed=seed)
    verdict = solver.solve()
    expected = brute_force_sat(nvars, clauses)
    assert verdict == ("sat" if expected else "unsat")
    if verdict == "sat":
        assert check_model(clauses, solver.model())


class TestTracedSolver:
    def test_traced_run_matches_untraced_verdict(self):
        from repro.machine.codelayout import CodeLayout
        from repro.machine.runtime import Runtime

        clauses = random_3sat(8, 30, seed=9)
        plain = DpllSolver(8, clauses, seed=1).solve()
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        traced = DpllSolver(8, clauses, space=AddressSpace(), seed=1)
        assert traced.solve(rt) == plain
        assert rt.take(), "traced solving must emit micro-ops"


class TestSatSolverApp:
    def test_slices_make_progress(self):
        app = SatSolverApp(seed=2, nvars=60, clause_ratio=4.0,
                           decisions_per_slice=5)
        list(app.trace(0, 30_000))
        total = app.instances_solved + (1 if app._solver.decisions else 0)
        assert total > 0

    def test_solved_instances_are_recorded(self):
        app = SatSolverApp(seed=2, nvars=40, clause_ratio=3.0,
                           decisions_per_slice=50)
        list(app.trace(0, 60_000))
        assert app.instances_solved >= 1
        assert sum(app.results.values()) == app.instances_solved

    def test_negligible_os_activity(self):
        app = SatSolverApp(seed=2, nvars=60)
        trace = list(app.trace(0, 10_000))
        os_ops = sum(1 for u in trace if u.is_os)
        assert os_ops / len(trace) < 0.02

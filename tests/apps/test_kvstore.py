"""Data Serving: storage-engine semantics and request-path behaviour."""

import pytest

from repro.apps.kvstore import DataServingApp
from repro.apps.kvstore.store import KeyValueStore, Memtable, SSTable
from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.runtime import Runtime
from repro.uarch.uop import OpKind


@pytest.fixture()
def rt():
    layout = CodeLayout()
    return Runtime(layout, main=layout.function("m", 8192))


@pytest.fixture()
def space():
    return AddressSpace()


class TestMemtable:
    def test_put_get(self, space, rt):
        mt = Memtable(space, capacity=16)
        mt.put(rt, 5, 0xABC0)
        assert mt.get(rt, 5) == 0xABC0
        assert mt.get(rt, 6) is None

    def test_fills_up(self, space, rt):
        mt = Memtable(space, capacity=2)
        mt.put(rt, 1, 0x40)
        assert not mt.is_full()
        mt.put(rt, 2, 0x80)
        assert mt.is_full()
        assert sorted(mt.drain()) == [1, 2]
        assert len(mt) == 0


class TestSSTable:
    def test_find_present_key(self, space, rt):
        table = SSTable(space, 0, list(range(0, 100, 2)), 256)
        addr = table.find(rt, 42)
        assert addr == table.record_addr(42)

    def test_find_absent_key(self, space, rt):
        table = SSTable(space, 0, list(range(0, 100, 2)), 256)
        assert table.find(rt, 43) is None

    def test_bloom_never_false_negative(self, space, rt):
        table = SSTable(space, 0, list(range(50)), 256)
        for key in range(50):
            assert table.might_contain(rt, key)

    def test_bloom_mostly_rejects_absent_keys(self, space, rt):
        table = SSTable(space, 0, list(range(50)), 256)
        false_positives = sum(
            table.might_contain(rt, key) for key in range(1000, 2000)
        )
        assert false_positives < 50  # ~1% target

    def test_record_addresses_are_distinct(self, space):
        table = SSTable(space, 0, [1, 2, 3], 256)
        addresses = {table.record_addr(k) for k in (1, 2, 3)}
        assert len(addresses) == 3


class TestKeyValueStore:
    def test_get_returns_record_address(self, space, rt):
        store = KeyValueStore(space, record_count=64, record_bytes=128)
        addr = store.get(rt, 10)
        assert addr is not None

    def test_every_key_is_resolvable(self, space, rt):
        store = KeyValueStore(space, record_count=32, record_bytes=128)
        for key in range(32):
            assert store.get(rt, key) is not None, key

    def test_put_then_get_hits_memtable(self, space, rt):
        store = KeyValueStore(space, record_count=64, record_bytes=128)
        store.put(rt, 7)
        before = store.memtable_hits
        store.get(rt, 7)
        assert store.memtable_hits == before + 1

    def test_reads_and_writes_counted(self, space, rt):
        store = KeyValueStore(space, record_count=64, record_bytes=128)
        store.get(rt, 1)
        store.put(rt, 2)
        assert store.reads == 1
        assert store.writes == 1

    def test_get_emits_dependent_index_loads(self, space, rt):
        store = KeyValueStore(space, record_count=256, record_bytes=128)
        rt.take()
        store.get(rt, 129)
        loads = [u for u in rt.take() if u.kind == OpKind.LOAD]
        assert len(loads) >= 8  # probe + blooms + index walk + record
        dependent = sum(1 for u in loads if u.deps)
        assert dependent >= len(loads) // 2


class TestDataServingApp:
    def test_serves_requests_and_produces_uops(self):
        app = DataServingApp(seed=3, record_count=2_000)
        trace = list(app.trace(0, 5_000))
        assert len(trace) >= 5_000
        assert app.requests_served > 0

    def test_mix_is_mostly_reads(self):
        app = DataServingApp(seed=3, record_count=2_000)
        list(app.trace(0, 30_000))
        total = app.client.reads_issued + app.client.updates_issued
        assert app.client.reads_issued / total > 0.9

    def test_os_component_present(self):
        app = DataServingApp(seed=3, record_count=2_000)
        trace = list(app.trace(0, 8_000))
        os_ops = sum(1 for u in trace if u.is_os)
        assert 0.02 < os_ops / len(trace) < 0.5

    def test_warm_ranges_include_hot_records(self):
        app = DataServingApp(seed=3, record_count=2_000)
        ranges = app.warm_ranges()
        assert len(ranges) > 100  # nursery + filters + hot records


class TestLsmMaintenance:
    def _full_store(self, rt, space, capacity=8):
        store = KeyValueStore(space, record_count=64, record_bytes=128,
                              memtable_capacity=capacity)
        for key in range(capacity):
            store.put(rt, key)
        return store

    def test_full_memtable_flushes_into_l0_run(self, space, rt):
        store = self._full_store(rt, space)
        assert store.memtable.is_full()
        while store.memtable.is_full() or store._flush_queue:
            store.background(rt)
        assert store.flushes == 1
        assert len(store.l0_runs) == 1
        assert len(store.memtable) == 0

    def test_keys_stay_readable_after_flush(self, space, rt):
        store = self._full_store(rt, space)
        while store.memtable.is_full() or store._flush_queue:
            store.background(rt)
        for key in range(8):
            assert store.get(rt, key) is not None, key

    def test_compaction_consumes_l0_runs(self, space, rt):
        store = KeyValueStore(space, record_count=64, record_bytes=128,
                              memtable_capacity=4)
        # Produce enough flushed runs to trigger compaction.
        for round_number in range(5):
            for key in range(4):
                store.put(rt, (round_number * 4 + key) % 64)
            while store.memtable.is_full() or store._flush_queue:
                store.background(rt)
        runs_before = len(store.l0_runs)
        assert runs_before >= store.COMPACTION_THRESHOLD
        for _ in range(200):
            store.background(rt)
            if store.compactions:
                break
        assert store.compactions >= 1
        assert len(store.l0_runs) < runs_before

    def test_keys_stay_readable_after_compaction(self, space, rt):
        store = KeyValueStore(space, record_count=32, record_bytes=128,
                              memtable_capacity=4)
        for key in range(20):
            store.put(rt, key % 32)
            store.background(rt)
        for _ in range(400):
            store.background(rt)
        for key in range(20):
            assert store.get(rt, key % 32) is not None, key

    def test_background_emits_sequential_stores(self, space, rt):
        store = self._full_store(rt, space)
        rt.take()
        store.background(rt)
        stores = [u for u in rt.take() if u.kind == OpKind.STORE]
        assert len(stores) > 8  # run construction writes


class TestSparseIndexBoundaries:
    def test_first_and_last_keys_found(self, space, rt):
        keys = list(range(3, 1003, 7))
        table = SSTable(space, 0, keys, 128)
        assert table.find(rt, keys[0]) == table.record_addr(keys[0])
        assert table.find(rt, keys[-1]) == table.record_addr(keys[-1])

    def test_keys_at_sparse_run_edges(self, space, rt):
        keys = list(range(100))
        table = SSTable(space, 0, keys, 128)
        factor = table.SPARSE_FACTOR
        for rank in (0, factor - 1, factor, 2 * factor - 1, 99):
            key = keys[rank]
            assert table.find(rt, key) == table.record_addr(key), rank

    def test_between_keys_not_found(self, space, rt):
        table = SSTable(space, 0, list(range(0, 100, 10)), 128)
        for absent in (5, 15, 95):
            assert table.find(rt, absent) is None

    def test_single_key_run(self, space, rt):
        table = SSTable(space, 0, [42], 128)
        assert table.find(rt, 42) == table.record_addr(42)
        assert table.find(rt, 41) is None

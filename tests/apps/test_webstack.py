"""Web Frontend: interpreter semantics and Olio page behaviour."""

import pytest

from repro.apps.webstack import CompiledScript, Opcode, PhpInterpreter, WebFrontendApp
from repro.apps.webstack.olio import ScriptAssembler, all_pages, event_list


class TestInterpreterSemantics:
    def run_program(self, code, args=None):
        interp = PhpInterpreter()
        script = CompiledScript("t", code)
        return interp.execute(script, args=args)

    def test_arithmetic(self):
        result = self.run_program([
            (Opcode.PUSH, 6),
            (Opcode.PUSH, 7),
            (Opcode.MUL, 0),
            (Opcode.RET, 0),
        ])
        assert result.return_value == 42

    def test_locals_and_sub(self):
        result = self.run_program([
            (Opcode.PUSH, 10),
            (Opcode.STORE, 0),
            (Opcode.LOAD, 0),
            (Opcode.PUSH, 4),
            (Opcode.SUB, 0),
            (Opcode.RET, 0),
        ])
        assert result.return_value == 6

    def test_conditional_jump(self):
        # if (0 < 1) echo 111 else echo 222
        result = self.run_program([
            (Opcode.PUSH, 0),
            (Opcode.PUSH, 1),
            (Opcode.CMP_LT, 0),
            (Opcode.JZ, 6),
            (Opcode.PUSH, 111),
            (Opcode.ECHO, 0),
            (Opcode.RET, 0),
        ])
        assert result.output == [111]

    def test_loop_executes_n_times(self):
        asm = ScriptAssembler("loop")
        asm.counted_loop(0, 5, lambda a: (a.emit(Opcode.PUSH, 9),
                                          a.emit(Opcode.ECHO)))
        asm.emit(Opcode.PUSH, 1)
        asm.emit(Opcode.RET)
        result = PhpInterpreter().execute(asm.build())
        assert result.output == [9] * 5

    def test_db_calls_recorded(self):
        result = self.run_program([
            (Opcode.CALL_DB, 3),
            (Opcode.CALL_DB, 5),
            (Opcode.RET, 0),
        ])
        assert result.db_queries == [3, 5]

    def test_concat_builds_strings(self):
        result = self.run_program([
            (Opcode.PUSH, 1),
            (Opcode.PUSH, 2),
            (Opcode.CONCAT, 0),
            (Opcode.ECHO, 0),
        ])
        assert result.output == ["12"]

    def test_args_passed_to_locals(self):
        result = self.run_program(
            [(Opcode.LOAD, 0), (Opcode.RET, 0)], args={0: 77}
        )
        assert result.return_value == 77

    def test_opcode_budget_enforced(self):
        infinite = [(Opcode.JMP, 0)]
        with pytest.raises(RuntimeError):
            self.run_program(infinite)


class TestOlioPages:
    def test_all_pages_compile_and_run(self):
        interp = PhpInterpreter()
        for name, script in all_pages().items():
            result = interp.execute(script, args={0: 5})
            assert result.return_value == 1, name
            assert result.opcodes_executed > 50, name

    def test_event_list_queries_events_and_tags(self):
        result = PhpInterpreter().execute(event_list())
        assert 1 in result.db_queries  # upcoming events
        assert 2 in result.db_queries  # popular tags

    def test_pages_produce_output(self):
        interp = PhpInterpreter()
        for name, script in all_pages().items():
            result = interp.execute(script, args={0: 1})
            if name != "add_event":
                assert result.output, name

    def test_row_loop_scales_output(self):
        short = PhpInterpreter().execute(event_list(page_rows=5))
        long = PhpInterpreter().execute(event_list(page_rows=50))
        assert len(long.output) > len(short.output)


class TestWebFrontendApp:
    def test_serves_pages(self):
        app = WebFrontendApp(seed=4, num_clients=8)
        list(app.trace(0, 20_000))
        assert app.pages_served > 3
        assert app.db_roundtrips > 0

    def test_interpreter_dominates_instruction_stream(self):
        app = WebFrontendApp(seed=4, num_clients=8)
        trace = list(app.trace(0, 15_000))
        handlers = app.fns["zend_handlers"]
        in_handlers = sum(
            1 for u in trace
            if handlers.base <= u.pc < handlers.base + handlers.size
        )
        assert in_handlers / len(trace) > 0.2

    def test_static_files_served_through_page_cache(self):
        app = WebFrontendApp(seed=4, num_clients=8)
        list(app.trace(0, 60_000))
        assert app.kernel.pages_cached > 0


class TestApcCache:
    def test_first_request_compiles_then_caches(self):
        app = WebFrontendApp(seed=4, num_clients=8)
        list(app.trace(0, 60_000))
        assert app.apc_misses <= len(app.scripts)
        assert app.apc_hits > 0

    def test_warm_marks_steady_state_compiled(self):
        from repro.uarch.hierarchy import MemoryHierarchy
        from repro.uarch.params import MachineParams

        app = WebFrontendApp(seed=4, num_clients=8)
        app.warm(MemoryHierarchy(MachineParams()), trace_uops=2_000)
        list(app.trace(0, 10_000))
        assert app.apc_misses == 0  # nothing recompiles at steady state

"""Micro-op-shape checks for the synthetic kernels and misc structures."""

import pytest

from repro.apps.synth import ParsecCpuApp, ParsecMemApp, SpecIntCpuApp
from repro.uarch.cache import CacheStats
from repro.uarch.uop import OpKind


def trace_of(app, budget=3_000):
    return list(app.trace(0, budget))


class TestKernelUopShapes:
    def test_chase_mode_emits_dependent_loads(self):
        app = ParsecMemApp(seed=3, member="canneal")
        loads = [u for u in trace_of(app) if u.kind == OpKind.LOAD]
        dependent = sum(1 for u in loads if u.deps)
        assert dependent > len(loads) * 0.8

    def test_stream_mode_emits_independent_loads(self):
        app = ParsecMemApp(seed=3, member="streamcluster")
        loads = [u for u in trace_of(app) if u.kind == OpKind.LOAD]
        independent = sum(1 for u in loads if not u.deps)
        assert independent > len(loads) * 0.8

    def test_table_mode_emits_indirect_jumps(self):
        app = SpecIntCpuApp(seed=3, member="perlbench")
        branches = [u for u in trace_of(app) if u.kind == OpKind.BRANCH]
        taken_targets = {u.target for u in branches if u.taken}
        assert len(taken_targets) > 10  # varied dispatch targets

    def test_montecarlo_mode_is_arithmetic_dominated(self):
        app = ParsecCpuApp(seed=3, member="swaptions")
        trace = trace_of(app)
        alu = sum(1 for u in trace if u.kind == OpKind.ALU)
        assert alu / len(trace) > 0.5

    def test_blocked_mode_reuses_its_block(self):
        app = ParsecCpuApp(seed=3, member="blackscholes")
        loads = [u.addr for u in trace_of(app) if u.kind == OpKind.LOAD]
        span = max(loads) - min(loads)
        assert span < 64 << 20  # confined to the small working set
        # Repeated sweeps: many addresses recur.
        assert len(set(loads)) < len(loads)


class TestCacheStatsMerge:
    def test_merge_adds_every_field(self):
        a = CacheStats(demand_hits=3, demand_misses=1, inst_hits=2,
                       writebacks=4)
        b = CacheStats(demand_hits=7, demand_misses=2, prefetch_issued=5)
        a.merge(b)
        assert a.demand_hits == 10
        assert a.demand_misses == 3
        assert a.inst_hits == 2
        assert a.writebacks == 4
        assert a.prefetch_issued == 5

    def test_hit_ratio_zero_when_untouched(self):
        assert CacheStats().hit_ratio == 0.0

"""MapReduce: engine correctness and classifier accuracy."""

from collections import Counter

import pytest

from repro.apps.mapreduce import MapReduceApp, MapReduceEngine, NaiveBayesModel
from repro.apps.mapreduce.classifier import CorpusGenerator, classification_accuracy
from repro.apps.mapreduce.engine import MapTask


class TestEngineWordCount:
    WORDS = "the quick brown fox jumps over the lazy dog the end".split()

    @staticmethod
    def map_fn(record):
        yield record, 1

    @staticmethod
    def reduce_fn(key, values):
        return sum(values)

    def test_word_count_matches_counter(self):
        engine = MapReduceEngine(num_reducers=3)
        result = engine.run(self.WORDS, self.map_fn, self.reduce_fn, split_size=3)
        assert result == dict(Counter(self.WORDS))

    def test_combiner_reduces_shuffle_volume(self):
        with_combiner = MapReduceEngine(num_reducers=2)
        with_combiner.run(self.WORDS * 20, self.map_fn, self.reduce_fn,
                          split_size=50, combine_fn=self.reduce_fn)
        without = MapReduceEngine(num_reducers=2)
        without.run(self.WORDS * 20, self.map_fn, self.reduce_fn, split_size=50)
        assert with_combiner.shuffle_bytes < without.shuffle_bytes
        assert with_combiner.combined_records > 0

    def test_split_sizes(self):
        engine = MapReduceEngine()
        tasks = engine.split(list(range(10)), split_size=4)
        assert [len(t.records) for t in tasks] == [4, 4, 2]
        assert [t.task_id for t in tasks] == [0, 1, 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MapReduceEngine(num_reducers=0)
        with pytest.raises(ValueError):
            MapReduceEngine().split([1], split_size=0)

    def test_map_task_partitions_cover_all_pairs(self):
        engine = MapReduceEngine(num_reducers=4)
        partitions = engine.run_map_task(MapTask(0, self.WORDS), self.map_fn)
        total = sum(len(p.pairs) for p in partitions)
        assert total == len(self.WORDS)

    def test_inverted_index_job(self):
        """A second real job: document -> term postings."""
        docs = [(0, "a b"), (1, "b c"), (2, "a c")]

        def map_fn(record):
            doc_id, text = record
            for term in text.split():
                yield term, doc_id

        def reduce_fn(term, doc_ids):
            return sorted(doc_ids)

        engine = MapReduceEngine(num_reducers=2)
        index = engine.run(docs, map_fn, reduce_fn, split_size=2)
        assert index == {"a": [0, 2], "b": [0, 1], "c": [1, 2]}


class TestNaiveBayes:
    def test_classifier_learns_separable_classes(self):
        gen = CorpusGenerator(vocab_size=2000, num_classes=4, seed=1)
        model = NaiveBayesModel(2000, 4)
        model.train(gen.labelled_corpus(docs_per_class=40, doc_length=80))
        test_set = gen.labelled_corpus(docs_per_class=10, doc_length=80)
        assert classification_accuracy(model, test_set) > 0.9

    def test_untrained_model_refuses_to_classify(self):
        model = NaiveBayesModel(100, 2)
        with pytest.raises(RuntimeError):
            model.classify([1, 2, 3])

    def test_scores_are_finite_and_ordered(self):
        gen = CorpusGenerator(500, 3, seed=2)
        model = NaiveBayesModel(500, 3)
        model.train(gen.labelled_corpus(20, 50))
        tokens = gen.document(1, 60)
        scores = model.class_scores(tokens)
        assert len(scores) == 3
        assert model.classify(tokens) == scores.index(max(scores))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesModel(0, 3)


class TestMapReduceApp:
    def test_processes_documents_accurately(self):
        app = MapReduceApp(seed=5, vocab_size=4_000, num_classes=6)
        list(app.trace(0, 20_000))
        assert app.docs_processed > 5
        assert app.accuracy > 0.8  # the traced classifier really classifies

    def test_input_streaming_advances_through_the_split(self):
        app = MapReduceApp(seed=5, vocab_size=4_000, num_classes=6)
        offset_before = app._split_offset
        list(app.trace(0, 10_000))
        assert app._split_offset != offset_before
        assert app.kernel.pages_cached > 0


class TestReducePhase:
    def test_reduce_rounds_follow_map_progress(self):
        app = MapReduceApp(seed=5, vocab_size=3_000, num_classes=4)
        list(app.trace(0, 140_000))
        assert app.docs_processed >= app.REDUCE_INTERVAL
        assert app.reduce_rounds == app.docs_processed // app.REDUCE_INTERVAL

    def test_reduce_consumes_every_map_output(self):
        app = MapReduceApp(seed=5, vocab_size=3_000, num_classes=4)
        list(app.trace(0, 140_000))
        pending = sum(app._partial_counts)
        assert app.reduced_records + pending == app.docs_processed

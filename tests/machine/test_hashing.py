"""``stable_hash``: determinism across processes and input hardening."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.machine.hashing import stable_hash


# ----------------------------------------------------------- behaviour
def test_empty_parts_is_deterministic_and_in_range():
    assert stable_hash() == stable_hash()
    assert 0 <= stable_hash() <= 0xFFFFFFFF


def test_single_int_uses_unsalted_fast_path():
    # Bucket locality of sequential integer keys is calibrated
    # behaviour: adjacent ints must stay adjacent.
    assert stable_hash(41) + 1 == stable_hash(42)
    assert stable_hash(42) >= 0


def test_negative_ints_hash_deterministically():
    for value in (-1, -2, -(2 ** 40), -(2 ** 63)):
        assert stable_hash(value) == stable_hash(value)
        assert stable_hash(value) >= 0


def test_bool_is_not_the_int_fast_path():
    # bool is an int subclass, but type(True) is not int: it takes the
    # repr path, so True/1 collisions are impossible.
    assert stable_hash(True) != stable_hash(1)


def test_unicode_surrogates_are_hashable():
    lone_surrogate = "\ud800"
    assert stable_hash(lone_surrogate) == stable_hash(lone_surrogate)
    assert stable_hash("café") != stable_hash("cafe")


def test_distinct_keys_spread():
    values = {stable_hash("key", i) for i in range(1000)}
    assert len(values) > 990


def test_multi_part_order_matters():
    assert stable_hash("a", "b") != stable_hash("b", "a")


# ----------------------------------------------------------- hardening
def test_plain_object_is_refused():
    # object.__repr__ embeds a memory address: hashing it would be the
    # exact cross-process divergence PR 2 fixed, but silent.
    with pytest.raises(TypeError, match="not guaranteed stable"):
        stable_hash(object())


@pytest.mark.parametrize("bad", [
    [1, 2],
    {"a": 1},
    {1, 2},
    ("fine", object()),
    ("nested", ("deep", object())),
])
def test_unstable_parts_are_refused(bad):
    with pytest.raises(TypeError):
        stable_hash("prefix", bad)


@pytest.mark.parametrize("good", [
    (),
    ("name", 7),
    ("nested", ("deep", b"bytes", 1.5, False, None)),
])
def test_scalar_tuples_are_accepted(good):
    assert stable_hash(good) == stable_hash(good)


def test_int_fast_path_skips_hardening_only_for_exact_int():
    # A single non-int part still goes through the checked path.
    with pytest.raises(TypeError):
        stable_hash(object())


# ------------------------------------------------- process invariance
_PROBE = """
import sys
sys.path.insert(0, {path!r})
from repro.machine.hashing import stable_hash
print(stable_hash("branch", "site:loop"),
      stable_hash("key", 17),
      stable_hash(-42),
      stable_hash(("lock", "district", 3)),
      stable_hash("\\ud800"))
"""


def _probe_under_seed(seed: str) -> str:
    src_path = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ, PYTHONHASHSEED=seed)
    return subprocess.run(
        [sys.executable, "-c",
         _PROBE.format(path=os.path.abspath(src_path))],
        capture_output=True, text=True, env=env, check=True,
    ).stdout


def test_stable_hash_is_invariant_under_hash_seed():
    # Two interpreters with different salts — the PR-2 parallel-sweep
    # divergence scenario — must agree on every value.
    assert _probe_under_seed("1") == _probe_under_seed("4242")


def test_builtin_str_hash_actually_varies_between_the_probes():
    # Meta-check: the two subprocesses really do salt differently, so
    # the invariance test above cannot pass vacuously.
    probe = "print(hash('witness: builtin hashing is salted'))"
    runs = {
        subprocess.run([sys.executable, "-c", probe],
                       capture_output=True, text=True,
                       env=dict(os.environ, PYTHONHASHSEED=seed),
                       check=True).stdout
        for seed in ("1", "4242")
    }
    assert len(runs) == 2

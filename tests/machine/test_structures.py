"""Simulated data structures: arrays, hash maps, rings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray, SimHashMap, SimRingBuffer
from repro.uarch.uop import OpKind


@pytest.fixture()
def env():
    space = AddressSpace()
    layout = CodeLayout()
    rt = Runtime(layout, main=layout.function("m", 8192))
    return space, rt


class TestSimArray:
    def test_addresses_are_strided(self, env):
        space, _ = env
        arr = SimArray(space, 10, 128)
        assert arr.addr(1) - arr.addr(0) == 128
        assert arr.nbytes == 1280

    def test_bounds_checked(self, env):
        space, _ = env
        arr = SimArray(space, 10, 128)
        with pytest.raises(IndexError):
            arr.addr(10)
        with pytest.raises(IndexError):
            arr.addr(-1)

    def test_invalid_geometry_rejected(self, env):
        space, _ = env
        with pytest.raises(ValueError):
            SimArray(space, 0, 64)

    def test_read_record_touches_every_line(self, env):
        space, rt = env
        arr = SimArray(space, 4, 256)
        arr.read_record(rt, 2)
        loads = [u for u in rt.take() if u.kind == OpKind.LOAD]
        assert len(loads) == 4
        assert all(arr.addr(2) <= u.addr < arr.addr(3) for u in loads)

    def test_read_write_emit(self, env):
        space, rt = env
        arr = SimArray(space, 4, 64)
        arr.read(rt, 0)
        arr.write(rt, 1)
        buf = rt.take()
        assert sum(1 for u in buf if u.kind == OpKind.LOAD) == 1
        assert sum(1 for u in buf if u.kind == OpKind.STORE) == 1


class TestSimHashMap:
    def test_put_get_roundtrip(self, env):
        space, rt = env
        table = SimHashMap(space, 64)
        table.put(rt, "key", 42)
        assert table.get(rt, "key") == 42
        assert table.get(rt, "other") is None

    def test_overwrite(self, env):
        space, rt = env
        table = SimHashMap(space, 64)
        table.put(rt, "k", 1)
        table.put(rt, "k", 2)
        assert table.get(rt, "k") == 2
        assert len(table) == 1

    def test_chain_walk_emits_dependent_loads(self, env):
        space, rt = env
        table = SimHashMap(space, 1)  # everything in one bucket
        for i in range(5):
            table.put(rt, i, i)
        rt.take()
        table.get(rt, 0)  # the deepest entry (inserted first, walked last)
        loads = [u for u in rt.take() if u.kind == OpKind.LOAD]
        assert len(loads) >= 5
        for prev, cur in zip(loads, loads[1:]):
            assert prev.seq in cur.deps

    def test_contains_without_trace(self, env):
        space, rt = env
        table = SimHashMap(space, 16)
        table.put(rt, "a", 1)
        assert table.contains("a")
        assert not table.contains("b")

    @settings(max_examples=25, deadline=None)
    @given(items=st.dictionaries(st.integers(0, 10_000), st.integers(),
                                 min_size=1, max_size=60))
    def test_property_behaves_like_a_dict(self, items):
        space = AddressSpace()
        layout = CodeLayout()
        rt = Runtime(layout, main=layout.function("m", 8192))
        table = SimHashMap(space, 16)
        for key, value in items.items():
            table.put(rt, key, value)
        for key, value in items.items():
            assert table.get(rt, key) == value
        assert len(table) == len(items)


class TestRingBuffer:
    def test_fifo_order(self, env):
        space, rt = env
        ring = SimRingBuffer(space, 8)
        ring.push(rt, "a")
        ring.push(rt, "b")
        assert ring.pop(rt) == "a"
        assert ring.pop(rt) == "b"
        assert ring.pop(rt) is None

    def test_len(self, env):
        space, rt = env
        ring = SimRingBuffer(space, 8)
        for i in range(5):
            ring.push(rt, i)
        assert len(ring) == 5

    def test_slots_wrap(self, env):
        space, rt = env
        ring = SimRingBuffer(space, 2)
        addr0 = ring._slot_addr(0)
        assert ring._slot_addr(2) == addr0

"""OS substrate: network paths, page cache, storage, scheduling."""

import pytest

from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.os_model import OsKernel
from repro.machine.runtime import Runtime
from repro.uarch.uop import OpKind


@pytest.fixture()
def kernel_rt():
    space = AddressSpace()
    layout = CodeLayout()
    kernel = OsKernel(space, layout)
    main = layout.function("user_main", 8 * 1024)
    rt = Runtime(layout, main=main)
    return kernel, rt


class TestSend:
    def test_send_segments_by_mss(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.send(rt, 4000)
        assert kernel.packets_sent == 3  # ceil(4000 / 1448)

    def test_send_emits_os_tagged_uops(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.send(rt, 100)
        buf = rt.take()
        assert buf, "send emitted nothing"
        # Everything except the user-side call branches is kernel code.
        os_fraction = sum(u.is_os for u in buf) / len(buf)
        assert os_fraction > 0.9

    def test_send_copies_payload(self, kernel_rt):
        kernel, rt = kernel_rt
        payload = 0x5_0000_0000
        kernel.send(rt, 1024, payload_base=payload)
        loads = [u for u in rt.take()
                 if u.kind == OpKind.LOAD and payload <= u.addr < payload + 1024]
        assert len(loads) == 16  # 1024 bytes = 16 lines read from the buffer

    def test_sendfile_never_touches_payload(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.sendfile(rt, 16 * 1024)
        buf = rt.take()
        skb_base = kernel._skb_pool_base
        skb_end = skb_base + kernel._skb_pool_slots * 2048
        payload_ops = [u for u in buf if u.kind in (OpKind.LOAD, OpKind.STORE)
                       and skb_base <= u.addr < skb_end]
        assert not payload_ops

    def test_sendfile_is_much_cheaper_than_send(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.send(rt, 16 * 1024)
        send_cost = len(rt.take())
        kernel.sendfile(rt, 16 * 1024)
        sendfile_cost = len(rt.take())
        assert sendfile_cost < send_cost * 0.6


class TestRecv:
    def test_recv_counts_packets(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.recv(rt, 3000)
        assert kernel.packets_received == 3

    def test_recv_copies_into_user_buffer(self, kernel_rt):
        kernel, rt = kernel_rt
        target = 0x6_0000_0000
        kernel.recv(rt, 512, into_base=target)
        stores = [u for u in rt.take()
                  if u.kind == OpKind.STORE and target <= u.addr < target + 512]
        assert len(stores) == 8


class TestPageCache:
    def test_first_read_misses_later_reads_hit(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.read_file(rt, file_id=7, offset=0, nbytes=4096)
        assert kernel.page_cache_misses == 1
        kernel.read_file(rt, file_id=7, offset=0, nbytes=4096)
        assert kernel.page_cache_hits == 1

    def test_pages_are_4k_granular(self, kernel_rt):
        kernel, rt = kernel_rt
        pages = kernel.read_file(rt, file_id=1, offset=0, nbytes=8192)
        assert len(pages) == 2
        assert kernel.pages_cached == 2

    def test_distinct_files_have_distinct_pages(self, kernel_rt):
        kernel, rt = kernel_rt
        p1 = kernel.read_file(rt, 1, 0, 4096)
        p2 = kernel.read_file(rt, 2, 0, 4096)
        assert p1[0] != p2[0]

    def test_file_cached_helper(self, kernel_rt):
        kernel, rt = kernel_rt
        assert not kernel.file_cached(9, 0)
        kernel.read_file(rt, 9, 0, 100)
        assert kernel.file_cached(9, 0)

    def test_cache_miss_does_not_emit_dma_stores(self, kernel_rt):
        """Page fills arrive by DMA; the CPU must not store the page."""
        kernel, rt = kernel_rt
        pages = kernel.read_file(rt, 3, 0, 4096)
        page = pages[0]
        stores = [u for u in rt.take()
                  if u.kind == OpKind.STORE and page <= u.addr < page + 4096]
        assert not stores

    def test_copy_to_user_when_requested(self, kernel_rt):
        kernel, rt = kernel_rt
        target = 0x7_0000_0000
        kernel.read_file(rt, 4, 0, 2048, into_base=target)
        stores = [u for u in rt.take()
                  if u.kind == OpKind.STORE and target <= u.addr < target + 2048]
        assert len(stores) == 32


class TestMultiQueue:
    def test_queues_are_per_thread(self, kernel_rt):
        kernel, _ = kernel_rt
        assert kernel._queue_base(kernel.tx_ring, 0) != \
            kernel._queue_base(kernel.tx_ring, 1)

    def test_skb_slabs_are_per_thread(self, kernel_rt):
        kernel, _ = kernel_rt
        a = kernel._next_skb(tid=0)
        b = kernel._next_skb(tid=1)
        assert abs(a - b) >= 2048

    def test_same_thread_recycles_its_slots(self, kernel_rt):
        kernel, _ = kernel_rt
        per_queue = kernel._skb_pool_slots // kernel.NUM_QUEUES
        first = kernel._next_skb(tid=0)
        for _ in range(per_queue - 1):
            kernel._next_skb(tid=0)
        assert kernel._next_skb(tid=0) == first


class TestMisc:
    def test_log_write_goes_through_block_path(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.log_write(rt, 512)
        buf = rt.take()
        block_fn = kernel.fns["block_layer"]
        assert any(block_fn.base <= u.pc < block_fn.base + block_fn.size
                   for u in buf)

    def test_context_switch_emits_scheduler_code(self, kernel_rt):
        kernel, rt = kernel_rt
        kernel.context_switch(rt)
        buf = rt.take()
        sched = kernel.fns["scheduler"]
        assert any(sched.base <= u.pc < sched.base + sched.size for u in buf)

    def test_warm_ranges_cover_the_skb_pool(self, kernel_rt):
        kernel, _ = kernel_rt
        ranges = dict((base, size) for base, size in kernel.warm_ranges())
        assert kernel._skb_pool_base in ranges


class TestPageCacheEviction:
    def test_capacity_is_enforced(self):
        space = AddressSpace()
        layout = CodeLayout()
        kernel = OsKernel(space, layout)
        kernel.page_cache_capacity = 8
        rt = Runtime(layout, main=layout.function("um", 8192))
        for file_id in range(12):
            kernel.read_file(rt, file_id, 0, 4096)
        assert kernel.pages_evicted == 4
        assert len(kernel._page_lru) == 8

    def test_evicted_page_misses_again(self):
        space = AddressSpace()
        layout = CodeLayout()
        kernel = OsKernel(space, layout)
        kernel.page_cache_capacity = 2
        rt = Runtime(layout, main=layout.function("um", 8192))
        kernel.read_file(rt, 1, 0, 4096)
        kernel.read_file(rt, 2, 0, 4096)
        kernel.read_file(rt, 3, 0, 4096)  # evicts file 1
        assert not kernel.file_cached(1, 0)
        misses_before = kernel.page_cache_misses
        kernel.read_file(rt, 1, 0, 4096)
        assert kernel.page_cache_misses == misses_before + 1

    def test_recently_used_pages_survive(self):
        space = AddressSpace()
        layout = CodeLayout()
        kernel = OsKernel(space, layout)
        kernel.page_cache_capacity = 2
        rt = Runtime(layout, main=layout.function("um", 8192))
        kernel.read_file(rt, 1, 0, 4096)
        kernel.read_file(rt, 2, 0, 4096)
        kernel.read_file(rt, 1, 0, 4096)  # refresh file 1
        kernel.read_file(rt, 3, 0, 4096)  # must evict file 2, not 1
        assert kernel.file_cached(1, 0)
        assert not kernel.file_cached(2, 0)

    def test_frames_are_recycled(self):
        space = AddressSpace()
        layout = CodeLayout()
        kernel = OsKernel(space, layout)
        kernel.page_cache_capacity = 1
        rt = Runtime(layout, main=layout.function("um", 8192))
        first = kernel.read_file(rt, 1, 0, 4096)[0]
        second = kernel.read_file(rt, 2, 0, 4096)[0]
        assert second == first  # same physical frame, reclaimed

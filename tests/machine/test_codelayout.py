"""Code layout: PC-range allocation for app and kernel functions."""

import pytest

from repro.machine.codelayout import APP_CODE_BASE, OS_CODE_BASE, CodeLayout


class TestRegistration:
    def test_function_gets_line_aligned_range(self):
        layout = CodeLayout()
        fn = layout.function("f", 1000)
        assert fn.size % 64 == 0
        assert fn.size >= 1000

    def test_functions_do_not_overlap(self):
        layout = CodeLayout()
        a = layout.function("a", 4096)
        b = layout.function("b", 4096)
        assert b.base >= a.base + a.size

    def test_duplicate_name_rejected(self):
        layout = CodeLayout()
        layout.function("f", 4096)
        with pytest.raises(ValueError):
            layout.function("f", 4096)

    def test_tiny_function_rejected(self):
        layout = CodeLayout()
        with pytest.raises(ValueError):
            layout.function("f", 32)

    def test_bad_locality_rejected(self):
        layout = CodeLayout()
        with pytest.raises(ValueError):
            layout.function("f", 4096, locality="zigzag")

    def test_lookup(self):
        layout = CodeLayout()
        fn = layout.function("hot_loop", 4096)
        assert layout.get("hot_loop") is fn
        assert "hot_loop" in layout
        assert "cold_loop" not in layout


class TestOsSplit:
    def test_os_functions_live_in_os_region(self):
        layout = CodeLayout()
        app = layout.function("app_fn", 4096)
        kernel = layout.function("kernel_fn", 4096, os=True)
        assert APP_CODE_BASE <= app.base < OS_CODE_BASE
        assert kernel.base >= OS_CODE_BASE
        assert kernel.os and not app.os

    def test_footprint_accounting(self):
        layout = CodeLayout()
        layout.function("a", 64 * 1024)
        layout.function("b", 32 * 1024, os=True)
        assert layout.app_code_bytes() == 64 * 1024
        assert layout.os_code_bytes() == 32 * 1024

    def test_functions_listing(self):
        layout = CodeLayout()
        layout.function("a", 4096)
        layout.function("b", 4096, os=True)
        assert {fn.name for fn in layout.functions()} == {"a", "b"}


class TestAsid:
    def test_asid_relocates_code(self):
        a = CodeLayout(asid=0).function("f", 4096)
        b = CodeLayout(asid=2).function("f", 4096)
        assert b.base - a.base == 2 << 44

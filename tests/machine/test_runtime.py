"""Tracing runtime: micro-op emission invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.codelayout import CodeLayout
from repro.machine.runtime import Runtime
from repro.uarch.uop import OpKind


def make_runtime(locality="scatter"):
    layout = CodeLayout()
    main = layout.function("main", 64 * 1024, locality=locality)
    return Runtime(layout, main=main), layout


class TestEmission:
    def test_load_returns_token_and_emits(self):
        rt, _ = make_runtime()
        token = rt.load(0x1000)
        buf = rt.take()
        assert token == buf[-1].seq or any(u.seq == token for u in buf)
        loads = [u for u in buf if u.kind == OpKind.LOAD]
        assert len(loads) == 1
        assert loads[0].addr == 0x1000

    def test_deps_are_recorded(self):
        rt, _ = make_runtime()
        a = rt.load(0x1000)
        rt.load(0x2000, (a,))
        buf = rt.take()
        dependent = [u for u in buf if u.kind == OpKind.LOAD][1]
        assert a in dependent.deps

    def test_alu_chain_serializes(self):
        rt, _ = make_runtime()
        rt.alu(n=5, chain=True)
        buf = [u for u in rt.take() if u.kind == OpKind.ALU]
        for prev, cur in zip(buf, buf[1:]):
            assert prev.seq in cur.deps

    def test_alu_unchained_is_independent(self):
        rt, _ = make_runtime()
        first = rt.load(0x40)
        rt.alu((first,), n=5, chain=False)
        buf = [u for u in rt.take() if u.kind == OpKind.ALU]
        for uop in buf:
            assert uop.deps == (first,)

    def test_seq_strictly_increases(self):
        rt, _ = make_runtime()
        for i in range(50):
            rt.load(i * 64)
        buf = rt.take()
        seqs = [u.seq for u in buf]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_take_clears_buffer(self):
        rt, _ = make_runtime()
        rt.alu(n=3)
        assert rt.pending() > 0
        rt.take()
        assert rt.pending() == 0


class TestControlFlow:
    def test_call_switches_pc_region(self):
        rt, layout = make_runtime()
        callee = layout.function("callee", 8 * 1024)
        rt.call(callee)
        rt.alu(n=4)
        rt.ret()
        buf = rt.take()
        callee_pcs = [u for u in buf
                      if callee.base <= u.pc < callee.base + callee.size]
        assert len(callee_pcs) >= 4

    def test_ret_without_call_raises(self):
        rt, _ = make_runtime()
        with pytest.raises(RuntimeError):
            rt.ret()

    def test_frame_context_manager(self):
        rt, layout = make_runtime()
        fn = layout.function("framed", 8 * 1024)
        with rt.frame(fn):
            rt.alu(n=2)
        rt.alu(n=1)
        buf = rt.take()
        last_alu = [u for u in buf if u.kind == OpKind.ALU][-1]
        assert not (fn.base <= last_alu.pc < fn.base + fn.size)

    def test_block_end_branches_inserted(self):
        rt, _ = make_runtime()
        rt.alu(n=200, chain=False)
        buf = rt.take()
        branches = [u for u in buf if u.kind == OpKind.BRANCH]
        assert len(branches) > 5  # ~1 per mean basic block

    def test_loop_functions_walk_a_window(self):
        rt, layout = make_runtime()
        loop = layout.function("loop", 64 * 1024, locality="loop")
        with rt.frame(loop):
            rt.alu(n=4000, chain=False)
        buf = rt.take()
        loop_pcs = {u.pc for u in buf
                    if loop.base <= u.pc < loop.base + loop.size}
        # Confined to the loop window (plus at most one basic block).
        assert max(loop_pcs) - loop.base < 4096 + 64 * 4

    def test_scatter_functions_cover_the_body(self):
        rt, layout = make_runtime()
        fn = layout.function("big", 256 * 1024, locality="scatter",
                             hot_fraction=0.5)
        with rt.frame(fn):
            rt.alu(n=20_000, chain=False)
        buf = rt.take()
        lines = {u.pc >> 6 for u in buf
                 if fn.base <= u.pc < fn.base + fn.size}
        assert len(lines) > 200  # far beyond a loop window

    def test_branch_site_is_stable(self):
        rt, _ = make_runtime()
        rt.branch(True, site="x")
        rt.alu(n=37)
        rt.branch(False, site="x")
        buf = [u for u in rt.take() if u.kind == OpKind.BRANCH]
        sited = [u for u in buf if u.taken or not u.taken]
        # First and the explicitly-sited later branch share one PC.
        assert buf[0].pc == [u for u in buf if u.pc == buf[0].pc][-1].pc

    def test_indirect_jump_targets_vary_with_selector(self):
        rt, _ = make_runtime()
        rt.indirect_jump(1)
        rt.indirect_jump(2)
        buf = [u for u in rt.take() if u.kind == OpKind.BRANCH]
        assert buf[0].target != buf[1].target


class TestOsTagging:
    def test_os_function_tags_uops(self):
        rt, layout = make_runtime()
        kfn = layout.function("kfn", 8 * 1024, os=True)
        with rt.frame(kfn):
            rt.alu(n=3)
        buf = rt.take()
        kernel_ops = [u for u in buf if u.is_os]
        assert len(kernel_ops) >= 3

    def test_os_mode_scope(self):
        rt, _ = make_runtime()
        with rt.os_mode():
            rt.alu(n=2)
        rt.alu(n=1)
        buf = [u for u in rt.take() if u.kind == OpKind.ALU]
        assert buf[0].is_os and buf[1].is_os
        assert not buf[-1].is_os


class TestBulkHelpers:
    def test_scan_touches_every_line(self):
        rt, _ = make_runtime()
        rt.scan(0x10000, 1024, work_per_line=0)
        buf = [u for u in rt.take() if u.kind == OpKind.LOAD]
        assert len(buf) == 16
        assert buf[0].addr == 0x10000
        assert buf[-1].addr == 0x10000 + 15 * 64

    def test_scan_write_emits_stores(self):
        rt, _ = make_runtime()
        rt.scan(0x10000, 256, write=True, work_per_line=0)
        stores = [u for u in rt.take() if u.kind == OpKind.STORE]
        assert len(stores) == 4

    def test_copy_pairs_loads_with_stores(self):
        rt, _ = make_runtime()
        rt.copy(0x10000, 0x20000, 256)
        buf = rt.take()
        loads = [u for u in buf if u.kind == OpKind.LOAD]
        stores = [u for u in buf if u.kind == OpKind.STORE]
        assert len(loads) == len(stores) == 4
        for load, store in zip(loads, stores):
            assert load.seq in store.deps

    def test_copy_parallelism_bounds_chains(self):
        rt, _ = make_runtime()
        rt.copy(0x10000, 0x20000, 64 * 8, parallelism=2)
        loads = [u for u in rt.take() if u.kind == OpKind.LOAD]
        # Loads 2..n depend on the load two positions earlier.
        for i in range(2, len(loads)):
            assert loads[i - 2].seq in loads[i].deps

    def test_pointer_chase_is_fully_dependent(self):
        rt, _ = make_runtime()
        rt.pointer_chase([0x1000, 0x2000, 0x3000], work_per_hop=0)
        loads = [u for u in rt.take() if u.kind == OpKind.LOAD]
        assert loads[0].deps == ()
        assert loads[0].seq in loads[1].deps
        assert loads[1].seq in loads[2].deps


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.sampled_from(["load", "store", "alu", "branch"]),
                    min_size=1, max_size=120))
def test_property_deps_always_point_backwards(ops):
    rt, _ = make_runtime()
    last = 0
    for op in ops:
        if op == "load":
            last = rt.load(0x1000, (last,) if last else ())
        elif op == "store":
            rt.store(0x2000, (last,) if last else ())
        elif op == "alu":
            last = rt.alu((last,) if last else ())
        else:
            rt.branch(True)
    buf = rt.take()
    for uop in buf:
        for dep in uop.deps:
            assert dep < uop.seq


@settings(max_examples=20, deadline=None)
@given(calls=st.lists(st.sampled_from(["alu", "load", "call", "branch"]),
                      min_size=5, max_size=150))
def test_property_every_pc_lies_inside_a_registered_function(calls):
    """Invariant: the runtime never emits a PC outside a function body."""
    layout = CodeLayout()
    main = layout.function("main", 32 * 1024)
    helper = layout.function("helper", 8 * 1024, os=True)
    rt = Runtime(layout, main=main)
    depth = 0
    for op in calls:
        if op == "alu":
            rt.alu(n=3, chain=False)
        elif op == "load":
            rt.load(0x1000)
        elif op == "branch":
            rt.branch(True, site="s")
        elif op == "call" and depth == 0:
            rt.call(helper)
            depth = 1
        elif depth:
            rt.ret()
            depth = 0
    ranges = [(fn.base, fn.base + fn.size) for fn in layout.functions()]
    for uop in rt.take():
        assert any(low <= uop.pc < high for low, high in ranges), hex(uop.pc)

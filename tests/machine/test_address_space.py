"""Simulated address space: allocation, regions, ASIDs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.address_space import AddressSpace, set_default_asid


@pytest.fixture(autouse=True)
def _reset_asid():
    set_default_asid(0)
    yield
    set_default_asid(0)


class TestAllocation:
    def test_alloc_returns_monotonic_addresses(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        space = AddressSpace()
        addr = space.alloc(10, align=64)
        assert addr % 64 == 0
        addr2 = space.alloc(1, align=4096)
        assert addr2 % 4096 == 0

    def test_bad_alignment_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.alloc(10, align=3)

    def test_negative_size_rejected(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.alloc(-1)

    def test_region_exhaustion(self):
        space = AddressSpace()
        with pytest.raises(MemoryError):
            space.alloc(1 << 50, "stack")

    def test_alloc_lines(self):
        space = AddressSpace()
        addr = space.alloc_lines(4)
        assert addr % 64 == 0

    def test_footprint_tracks_usage(self):
        space = AddressSpace()
        space.alloc(1000, "heap")
        space.alloc(500, "os")
        fp = space.footprint()
        assert fp["heap"] >= 1000
        assert fp["os"] >= 500


class TestRegions:
    def test_regions_are_disjoint(self):
        space = AddressSpace()
        regions = list(space.regions.values())
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert a.base + a.size <= b.base or b.base + b.size <= a.base

    def test_owner(self):
        space = AddressSpace()
        heap_addr = space.alloc(100, "heap")
        io_addr = space.alloc(100, "io")
        assert space.owner(heap_addr) == "heap"
        assert space.owner(io_addr) == "io"
        assert space.owner(0x10) is None

    def test_all_four_regions_exist(self):
        space = AddressSpace()
        assert set(space.regions) == {"heap", "os", "io", "stack"}


class TestAsid:
    def test_asids_separate_spaces(self):
        a = AddressSpace(asid=0)
        b = AddressSpace(asid=1)
        addr_a = a.alloc(64, "heap")
        addr_b = b.alloc(64, "heap")
        assert addr_a != addr_b
        assert abs(addr_a - addr_b) >= 1 << 44

    def test_default_asid_applies(self):
        set_default_asid(3)
        space = AddressSpace()
        assert space.asid == 3

    def test_explicit_asid_overrides_default(self):
        set_default_asid(5)
        assert AddressSpace(asid=1).asid == 1


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1,
                   max_size=60)
)
def test_property_allocations_never_overlap(sizes):
    space = AddressSpace()
    intervals = []
    for size in sizes:
        base = space.alloc(size, "heap")
        intervals.append((base, base + size))
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2

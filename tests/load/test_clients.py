"""YCSB and Faban client drivers."""

import pytest

from repro.faults.metrics import ServiceMetrics
from repro.faults.retry import RetryPolicy
from repro.load.faban import FabanDriver
from repro.load.ycsb import YcsbClient


class TestYcsb:
    def test_read_write_ratio(self):
        client = YcsbClient(10_000, seed=1)
        ops = [client.next_op() for _ in range(5000)]
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.93 < reads / len(ops) < 0.97  # the paper's 95:5 mix

    def test_keys_in_range(self):
        client = YcsbClient(500, seed=1)
        assert all(0 <= client.next_op().key < 500 for _ in range(2000))

    def test_counters(self):
        client = YcsbClient(100, seed=2)
        for _ in range(100):
            client.next_op()
        assert client.reads_issued + client.updates_issued == 100

    def test_hot_keys_unique_prefix(self):
        client = YcsbClient(100_000, seed=3)
        hot = client.hot_keys(1000)
        assert len(hot) == 1000
        assert all(0 <= k < 100_000 for k in hot)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            YcsbClient(10, read_fraction=1.5)

    def test_ratio_converges_with_more_draws(self):
        client = YcsbClient(10_000, seed=4)
        for _ in range(20_000):
            client.next_op()
        total = client.reads_issued + client.updates_issued
        assert abs(client.reads_issued / total - 0.95) < 0.01

    def test_identical_seeds_generate_identical_streams(self):
        a = YcsbClient(5_000, seed=8)
        b = YcsbClient(5_000, seed=8)
        assert [a.next_op() for _ in range(200)] \
            == [b.next_op() for _ in range(200)]


class TestYcsbResilience:
    def test_observe_classifies_against_the_policy(self):
        policy = RetryPolicy(hedge_after=100, timeout=200)
        client = YcsbClient(100, seed=1, retry=policy)
        client.observe(50)
        client.observe(150, retries=1)            # hedged, not timed out
        client.observe(250, ok=False, dropped=True)
        m = client.metrics
        assert m.requests == 3
        assert m.retries == 1
        assert m.hedges == 2
        assert m.timeouts == 1
        assert m.drops == 1
        assert m.goodput() == pytest.approx(2 / 3)

    def test_shared_metrics_accumulator(self):
        shared = ServiceMetrics()
        client = YcsbClient(100, seed=1, metrics=shared)
        client.observe(10)
        assert shared.requests == 1

    def test_defaults_are_self_contained(self):
        client = YcsbClient(100, seed=1)
        assert isinstance(client.retry, RetryPolicy)
        client.observe(10)
        assert client.metrics.requests == 1


class TestFaban:
    MIX = [("browse", 70.0), ("search", 20.0), ("post", 10.0)]

    def test_mix_ratios_respected(self):
        driver = FabanDriver(16, self.MIX, seed=1)
        for _ in range(6000):
            driver.next_request()
        total = sum(driver.issued.values())
        assert 0.6 < driver.issued["browse"] / total < 0.8
        assert driver.issued["post"] / total < 0.2

    def test_round_robin_over_sessions(self):
        driver = FabanDriver(4, self.MIX, seed=1)
        sessions = [driver.next_request()[0].session_id for _ in range(8)]
        assert sessions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_affinity_partitions_sessions(self):
        driver = FabanDriver(16, self.MIX, seed=1)
        for affinity in range(4):
            for _ in range(8):
                session, _ = driver.next_request(affinity=affinity)
                assert session.session_id % 4 == affinity

    def test_sessions_have_independent_rngs(self):
        driver = FabanDriver(2, self.MIX, seed=1)
        a, b = driver.sessions
        assert a.rng.random() != b.rng.random()

    def test_run_invokes_handler(self):
        driver = FabanDriver(2, self.MIX, seed=1)
        seen = []
        driver.run(lambda session, op: seen.append((session.session_id, op)), 10)
        assert len(seen) == 10

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FabanDriver(0, self.MIX)
        with pytest.raises(ValueError):
            FabanDriver(2, [])
        with pytest.raises(ValueError):
            FabanDriver(2, [("x", 0.0)])

    def test_observe_classifies_against_the_policy(self):
        policy = RetryPolicy(hedge_after=100, timeout=200)
        driver = FabanDriver(2, self.MIX, seed=1, retry=policy)
        driver.observe(50)
        driver.observe(300, ok=False, retries=2)
        m = driver.metrics
        assert m.requests == 2
        assert m.retries == 2
        assert m.hedges == 1
        assert m.timeouts == 1
        assert m.goodput() == pytest.approx(0.5)

    def test_shared_metrics_accumulator(self):
        shared = ServiceMetrics()
        driver = FabanDriver(2, self.MIX, seed=1, metrics=shared)
        driver.observe(10)
        assert shared.requests == 1

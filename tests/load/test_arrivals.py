"""Open-loop arrival processes: seeded, positive, shape-registered."""

from __future__ import annotations

import pytest

from repro.load.distributions import (ARRIVAL_SHAPES, BurstyArrivals,
                                      DiurnalArrivals, PoissonArrivals,
                                      build_arrivals)


def _play(process, count: int = 2_000) -> list[int]:
    gaps, now = [], 0
    for _ in range(count):
        gap = process.next_gap(now)
        gaps.append(gap)
        now += gap
    return gaps


@pytest.mark.parametrize("shape", sorted(ARRIVAL_SHAPES))
def test_same_seed_same_schedule(shape):
    first = _play(build_arrivals(shape, 150, seed=9))
    second = _play(build_arrivals(shape, 150, seed=9))
    assert first == second


@pytest.mark.parametrize("shape", sorted(ARRIVAL_SHAPES))
def test_gaps_are_positive_integers(shape):
    for gap in _play(build_arrivals(shape, 150, seed=3), count=500):
        assert isinstance(gap, int)
        assert gap >= 1


def test_poisson_mean_gap_is_near_nominal():
    gaps = _play(PoissonArrivals(150, seed=1), count=20_000)
    mean = sum(gaps) / len(gaps)
    assert 130 < mean < 170


def test_diurnal_rate_swings_with_phase():
    # Sample many gaps near the rate peak (quarter period) and near the
    # trough (three-quarter period): the peak must arrive faster.
    process = DiurnalArrivals(150, period_us=200_000, amplitude=0.8, seed=2)
    peak = [process.next_gap(50_000) for _ in range(5_000)]
    trough = [process.next_gap(150_000) for _ in range(5_000)]
    assert sum(peak) / len(peak) < sum(trough) / len(trough)


def test_bursty_bursts_are_denser_than_quiet_spells():
    process = BurstyArrivals(150, burst_us=20_000, quiet_us=60_000,
                             burst_factor=4.0, seed=4)
    burst = [process.next_gap(1_000) for _ in range(5_000)]
    quiet = [process.next_gap(40_000) for _ in range(5_000)]
    assert sum(burst) / len(burst) < sum(quiet) / len(quiet)


def test_unknown_shape_raises():
    with pytest.raises(KeyError, match="meteor"):
        build_arrivals("meteor", 150)


def test_parameter_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0)
    with pytest.raises(ValueError):
        DiurnalArrivals(150, amplitude=1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(150, burst_factor=0.5)

"""Request distributions: Zipf skew, bounds, determinism."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.load.distributions import ScrambledZipf, UniformGenerator, ZipfGenerator


class TestUniform:
    def test_bounds(self):
        gen = UniformGenerator(100, seed=1)
        draws = [gen.next() for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)
        assert len(set(draws)) > 80

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestZipf:
    def test_bounds(self):
        gen = ZipfGenerator(1000, seed=2)
        assert all(0 <= gen.next() < 1000 for _ in range(5000))

    def test_rank_zero_dominates(self):
        gen = ZipfGenerator(10_000, seed=2)
        counts = Counter(gen.next() for _ in range(20_000))
        assert counts[0] > counts.get(100, 0) > 0 or counts[0] > 100

    def test_head_mass_matches_zipf_law(self):
        gen = ZipfGenerator(100_000, theta=0.99, seed=3)
        draws = [gen.next() for _ in range(30_000)]
        head = sum(1 for d in draws if d < 1000)
        # Zipf(0.99): P(rank < 1%) is large (≈ 0.6 for this n).
        assert head / len(draws) > 0.4

    def test_small_keyspaces_work(self):
        for n in (1, 2, 3):
            gen = ZipfGenerator(n, seed=4)
            assert all(0 <= gen.next() < n for _ in range(200))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.5)

    def test_deterministic_per_seed(self):
        a = ZipfGenerator(500, seed=9)
        b = ZipfGenerator(500, seed=9)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]


class TestScrambledZipf:
    def test_hot_keys_are_scattered(self):
        gen = ScrambledZipf(100_000, seed=5)
        draws = [gen.next() for _ in range(5000)]
        hot = [key for key, count in Counter(draws).most_common(10)]
        # Scrambling: the popular keys are not clustered near zero.
        assert max(hot) > 10_000

    def test_bounds(self):
        gen = ScrambledZipf(777, seed=6)
        assert all(0 <= gen.next() < 777 for _ in range(2000))

    def test_fnv_is_deterministic(self):
        assert ScrambledZipf._fnv(12345) == ScrambledZipf._fnv(12345)
        assert ScrambledZipf._fnv(1) != ScrambledZipf._fnv(2)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=3, max_value=100_000),
       seed=st.integers(min_value=0, max_value=100))
def test_property_zipf_always_in_range(n, seed):
    gen = ZipfGenerator(n, seed=seed)
    for _ in range(100):
        assert 0 <= gen.next() < n


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=100_000),
       seed=st.integers(min_value=0, max_value=100))
def test_property_scrambled_zipf_stays_in_keyspace(n, seed):
    gen = ScrambledZipf(n, seed=seed)
    for _ in range(100):
        assert 0 <= gen.next() < n

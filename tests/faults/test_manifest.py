"""Crash-safe sweep manifests: atomic persistence and invalidation."""

import json

from repro.faults.manifest import SweepManifest

META = {"experiment": "figure8", "window": 8_000, "seed": 7}


class TestRoundTrip:
    def test_put_get_and_persistence(self, tmp_path):
        path = tmp_path / "manifest.json"
        first = SweepManifest(path, META)
        assert len(first) == 0
        first.put("data-serving|healthy", {"ipc": 0.33})
        assert "data-serving|healthy" in first

        second = SweepManifest(path, META)
        assert len(second) == 1
        assert second.get("data-serving|healthy") == {"ipc": 0.33}
        assert second.get("missing") is None

    def test_writes_are_atomic_leaving_no_temp_files(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest(path, META)
        for index in range(5):
            manifest.put(f"cell-{index}", {"value": index})
        leftovers = [p for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []
        assert json.loads(path.read_text())["version"] == 1

    def test_discard_removes_the_file(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest(path, META)
        manifest.put("cell", {"value": 1})
        manifest.discard()
        assert not path.exists()
        assert len(manifest) == 0
        manifest.discard()  # idempotent on a missing file


class TestInvalidation:
    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ not json")
        assert len(SweepManifest(path, META)) == 0

    def test_non_dict_document_starts_fresh(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("[1, 2, 3]")
        assert len(SweepManifest(path, META)) == 0

    def test_version_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "manifest.json"
        SweepManifest(path, META).put("cell", {"value": 1})
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        assert len(SweepManifest(path, META)) == 0

    def test_meta_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "manifest.json"
        SweepManifest(path, META).put("cell", {"value": 1})
        other = dict(META, window=16_000)
        assert len(SweepManifest(path, other)) == 0
        # The matching meta still reads it.
        assert len(SweepManifest(path, META)) == 1

    def test_malformed_cells_are_skipped(self, tmp_path):
        path = tmp_path / "manifest.json"
        document = {"version": 1, "meta": META,
                    "cells": {"good": {"x": 1}, "bad": "not-a-dict"}}
        path.write_text(json.dumps(document))
        manifest = SweepManifest(path, META)
        assert "good" in manifest
        assert "bad" not in manifest

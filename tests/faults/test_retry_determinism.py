"""Cross-process determinism of the retry policy's schedules.

The fleet layer (and the historical client paths) trust that a policy
plus a seed fully determines every backoff delay — across interpreters,
across PYTHONHASHSEED, across machines.  These tests check it the hard
way: a fresh subprocess must reproduce the parent's schedules byte for
byte.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys

from repro.faults.retry import RetryPolicy

_CHILD_SCRIPT = """
import json, random, sys
from repro.faults.retry import RetryPolicy

policy = RetryPolicy(base_delay=500, multiplier=2.0, jitter=0.25,
                     max_retries=4, cap_delay=4_000, timeout=6_000,
                     hedge_after=2_500, retry_failure_p=0.3)
out = {
    "schedules": [policy.schedule(random.Random(seed))
                  for seed in range(20)],
    "resolutions": [policy.resolve_failure(random.Random(seed))
                    for seed in range(20)],
}
json.dump(out, sys.stdout)
"""


def _parent_view() -> dict:
    policy = RetryPolicy(base_delay=500, multiplier=2.0, jitter=0.25,
                         max_retries=4, cap_delay=4_000, timeout=6_000,
                         hedge_after=2_500, retry_failure_p=0.3)
    return {
        "schedules": [policy.schedule(random.Random(seed))
                      for seed in range(20)],
        "resolutions": [list(policy.resolve_failure(random.Random(seed)))
                        for seed in range(20)],
    }


def test_schedules_are_byte_identical_across_processes():
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True, text=True, check=True)
    assert json.dumps(json.loads(child.stdout), sort_keys=True) \
        == json.dumps(_parent_view(), sort_keys=True)


def test_same_seed_same_schedule_in_process():
    policy = RetryPolicy()
    first = policy.schedule(random.Random(123))
    second = policy.schedule(random.Random(123))
    assert first == second


def test_zero_retries_means_empty_schedule():
    policy = RetryPolicy(max_retries=0)
    assert policy.schedule(random.Random(0)) == []
    retries, succeeded, spent = policy.resolve_failure(random.Random(0))
    assert (retries, succeeded, spent) == (0, False, 0)


def test_harness_schedules_never_alias_client_schedules():
    # The supervisor's wall-clock-seconds policies quantize nothing;
    # the simulated clients' integer policies truncate every delay.
    # One must never be mistaken for the other.
    harness = RetryPolicy.for_harness(retries=3)
    client = RetryPolicy(base_delay=1_500, cap_delay=12_000, max_retries=3)
    rng = random.Random(7)
    for delay in harness.schedule(rng):
        assert isinstance(delay, float)
    rng = random.Random(7)
    for delay in client.schedule(rng):
        assert isinstance(delay, int)


def test_schedules_are_monotone_and_capped():
    policy = RetryPolicy(base_delay=500, multiplier=3.0, jitter=1.0,
                         max_retries=6, cap_delay=5_000)
    for seed in range(50):
        schedule = policy.schedule(random.Random(seed))
        assert schedule == sorted(schedule)
        assert all(delay <= policy.cap_delay for delay in schedule)
        assert all(delay >= policy.base_delay for delay in schedule)

"""End-to-end fault-injection contracts.

The determinism contract — one ``(workload, seed, plan)`` triple maps
to exactly one micro-op trace and one measurement — and the strict
no-op contract for empty plans, plus the degraded-mode acceptance
shape the Figure 8 extension reports.
"""

import pytest

from repro.core.experiments import figure8_faults
from repro.core.runner import (
    RunConfig,
    run_workload,
    run_workload_chip,
    run_workload_smt,
)
from repro.core.workloads import build_app
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

FAULTED = RunConfig(window_uops=8_000, warm_uops=3_000, seed=7,
                    fault_plan=FaultPlan.degraded(seed=7))
HEALTHY = RunConfig(window_uops=8_000, warm_uops=3_000, seed=7)


def _signature(app, budget=6_000):
    return [(u.kind, u.pc, u.addr, u.deps) for u in app.trace(0, budget)]


def _faulted_app(name, plan, seed=7):
    app = build_app(name, seed=seed)
    app.attach_faults(FaultInjector(plan))
    return app


class TestDeterminism:
    @pytest.mark.parametrize("name", ["data-serving", "web-search"])
    def test_faulted_traces_are_byte_identical(self, name):
        plan = FaultPlan.degraded(seed=3)
        first = _signature(_faulted_app(name, plan))
        second = _signature(_faulted_app(name, plan))
        assert first == second

    def test_faulted_counters_are_bit_identical(self):
        first = run_workload("data-serving", FAULTED, use_cache=False)
        second = run_workload("data-serving", FAULTED, use_cache=False)
        for field in ("cycles", "instructions", "l1i_misses", "l2i_misses",
                      "llc_misses", "loads", "stores", "branches",
                      "offchip_bytes"):
            assert getattr(first.result, field) \
                == getattr(second.result, field), field
        assert first.app.service.summary() == second.app.service.summary()
        assert first.app.faults.fired == second.app.faults.fired

    def test_plan_seed_changes_the_measurement(self):
        other = RunConfig(window_uops=8_000, warm_uops=3_000, seed=7,
                          fault_plan=FaultPlan.degraded(seed=8))
        first = run_workload("data-serving", FAULTED)
        second = run_workload("data-serving", other)
        assert first.result.cycles != second.result.cycles


class TestEmptyPlanIsStrictNoOp:
    def test_config_normalizes_empty_plan_to_none(self):
        with_empty = RunConfig(window_uops=8_000, warm_uops=3_000,
                               fault_plan=FaultPlan.empty())
        without = RunConfig(window_uops=8_000, warm_uops=3_000)
        assert with_empty.fault_plan is None
        assert with_empty == without

    @pytest.mark.parametrize(
        "name", ["data-serving", "mapreduce", "media-streaming", "web-search"])
    def test_empty_injector_leaves_traces_untouched(self, name):
        healthy = build_app(name, seed=5)
        attached = _faulted_app(name, FaultPlan.empty(), seed=5)
        assert attached.faults is None  # never armed
        assert attached.layout.app_code_bytes() \
            == healthy.layout.app_code_bytes()
        assert _signature(attached, 4_000) == _signature(healthy, 4_000)

    def test_every_runner_pipeline_shares_the_healthy_cache_entry(
            self, tiny_config):
        empty = RunConfig(window_uops=tiny_config.window_uops,
                          warm_uops=tiny_config.warm_uops,
                          fault_plan=FaultPlan.empty())
        assert run_workload("web-search", empty) \
            is run_workload("web-search", tiny_config)
        assert run_workload_smt("web-search", empty) \
            is run_workload_smt("web-search", tiny_config)
        assert run_workload_chip("web-search", empty) \
            is run_workload_chip("web-search", tiny_config)


class TestDegradedModeAcceptance:
    def test_degraded_serving_pays_in_ifootprint_and_tail(self):
        healthy = run_workload("data-serving", HEALTHY)
        degraded = run_workload("data-serving", FAULTED)

        from repro.core import analysis

        # Fault handling executes real extra code: the instruction
        # footprint (and its L1-I miss rate) must grow measurably.
        assert degraded.app.layout.app_code_bytes() \
            > healthy.app.layout.app_code_bytes()
        assert analysis.instruction_mpki(degraded.result) \
            > analysis.instruction_mpki(healthy.result)

        # Clients observed the faults: retries happened, the latency
        # tail stretched, but goodput loss stayed bounded.
        service = degraded.app.service
        assert service.retries > 0
        assert service.p99() > healthy.app.service.p99()
        assert service.goodput() >= 0.9
        assert degraded.app.faults.total_fired() > 0

    def test_healthy_runs_never_touch_fault_accounting(self):
        healthy = run_workload("data-serving", HEALTHY)
        assert healthy.app.faults is None
        assert healthy.app.service.retries == 0
        assert healthy.app.service.goodput() == 1.0


class TestFigure8:
    def test_table_shape_without_a_manifest(self):
        table = figure8_faults.run(HEALTHY, workloads=["data-serving"],
                                   manifest_path=None)
        assert [row["Mode"] for row in table.rows] == ["healthy", "degraded"]
        assert figure8_faults.mpki_delta(table, "Data Serving") > 0.0
        with pytest.raises(KeyError):
            figure8_faults.mpki_delta(table, "No Such Workload")

    def test_rejects_unknown_workloads(self):
        with pytest.raises(KeyError):
            figure8_faults.run(HEALTHY, workloads=["bogus"],
                               manifest_path=None)

    def test_resume_skips_completed_cells(self, tmp_path, monkeypatch):
        path = tmp_path / "figure8.json"
        first = figure8_faults.run(HEALTHY, workloads=["data-serving"],
                                   manifest_path=path)
        assert path.exists()

        def boom(name, config):
            raise AssertionError("completed cells must not recompute")

        monkeypatch.setattr(figure8_faults, "_measure_cell", boom)
        second = figure8_faults.run(HEALTHY, workloads=["data-serving"],
                                    manifest_path=path)
        assert second.to_text() == first.to_text()

    def test_partial_manifest_computes_only_missing_cells(
            self, tmp_path, monkeypatch):
        path = tmp_path / "figure8.json"
        figure8_faults.run(HEALTHY, workloads=["data-serving"],
                           manifest_path=path)

        computed = []
        real = figure8_faults._measure_cell

        def counting(name, config):
            computed.append((name, config.fault_plan is not None))
            return real(name, config)

        monkeypatch.setattr(figure8_faults, "_measure_cell", counting)
        table = figure8_faults.run(HEALTHY,
                                   workloads=["data-serving", "web-search"],
                                   manifest_path=path)
        assert computed == [("web-search", False), ("web-search", True)]
        assert len(table.rows) == 4

    def test_fresh_discards_the_manifest(self, tmp_path, monkeypatch):
        path = tmp_path / "figure8.json"
        figure8_faults.run(HEALTHY, workloads=["data-serving"],
                           manifest_path=path)

        computed = []
        real = figure8_faults._measure_cell

        def counting(name, config):
            computed.append(name)
            return real(name, config)

        monkeypatch.setattr(figure8_faults, "_measure_cell", counting)
        figure8_faults.run(HEALTHY, workloads=["data-serving"],
                           manifest_path=path, fresh=True)
        assert computed == ["data-serving", "data-serving"]

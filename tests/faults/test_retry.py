"""Retry policy: backoff schedules are monotone, jittered, and capped."""

import random

import pytest

from repro.faults.retry import RetryPolicy


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=100, cap_delay=50)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(retry_failure_p=1.0)


class TestSchedule:
    def test_monotone_non_decreasing(self):
        policy = RetryPolicy(max_retries=6)
        for seed in range(25):
            delays = policy.schedule(random.Random(seed))
            assert delays == sorted(delays), seed

    def test_within_jitter_envelope(self):
        policy = RetryPolicy(base_delay=1_000, multiplier=2.0, jitter=0.25,
                             max_retries=4, cap_delay=10 ** 9)
        delays = policy.schedule(random.Random(3))
        for attempt, delay in enumerate(delays):
            nominal = 1_000 * 2 ** attempt
            assert nominal <= delay <= int(nominal * 1.25)

    def test_hard_capped(self):
        policy = RetryPolicy(base_delay=1_000, multiplier=10.0,
                             cap_delay=5_000, max_retries=5)
        delays = policy.schedule(random.Random(1))
        assert all(delay <= 5_000 for delay in delays)
        assert delays[-1] == 5_000  # exponent saturates at the cap

    def test_jitter_varies_with_rng(self):
        policy = RetryPolicy(max_retries=4)
        schedules = {tuple(policy.schedule(random.Random(seed)))
                     for seed in range(10)}
        assert len(schedules) > 1

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=100, multiplier=2.0, jitter=0.0,
                             max_retries=3, cap_delay=10 ** 6)
        assert policy.schedule(random.Random(0)) == [100, 200, 400]

    def test_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert policy.schedule(random.Random(7)) \
            == policy.schedule(random.Random(7))


class TestResolveFailure:
    def test_bounds_and_accounting(self):
        policy = RetryPolicy(max_retries=3)
        for seed in range(30):
            retries, ok, spent = policy.resolve_failure(random.Random(seed))
            assert 1 <= retries <= 3 or (retries == 3 and not ok)
            assert spent > 0
            max_spend = sum(policy.schedule(random.Random(seed)))
            assert spent <= max_spend

    def test_always_fails_when_no_retries_allowed(self):
        policy = RetryPolicy(max_retries=0)
        retries, ok, spent = policy.resolve_failure(random.Random(1))
        assert (retries, ok, spent) == (0, False, 0)

    def test_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert policy.resolve_failure(random.Random(11)) \
            == policy.resolve_failure(random.Random(11))

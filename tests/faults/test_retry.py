"""Retry policy: backoff schedules are monotone, jittered, and capped."""

import random

import pytest

from repro.faults.retry import RetryPolicy


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=100, cap_delay=50)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(retry_failure_p=1.0)


class TestSchedule:
    def test_monotone_non_decreasing(self):
        policy = RetryPolicy(max_retries=6)
        for seed in range(25):
            delays = policy.schedule(random.Random(seed))
            assert delays == sorted(delays), seed

    def test_within_jitter_envelope(self):
        policy = RetryPolicy(base_delay=1_000, multiplier=2.0, jitter=0.25,
                             max_retries=4, cap_delay=10 ** 9)
        delays = policy.schedule(random.Random(3))
        for attempt, delay in enumerate(delays):
            nominal = 1_000 * 2 ** attempt
            assert nominal <= delay <= int(nominal * 1.25)

    def test_hard_capped(self):
        policy = RetryPolicy(base_delay=1_000, multiplier=10.0,
                             cap_delay=5_000, max_retries=5)
        delays = policy.schedule(random.Random(1))
        assert all(delay <= 5_000 for delay in delays)
        assert delays[-1] == 5_000  # exponent saturates at the cap

    def test_jitter_varies_with_rng(self):
        policy = RetryPolicy(max_retries=4)
        schedules = {tuple(policy.schedule(random.Random(seed)))
                     for seed in range(10)}
        assert len(schedules) > 1

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=100, multiplier=2.0, jitter=0.0,
                             max_retries=3, cap_delay=10 ** 6)
        assert policy.schedule(random.Random(0)) == [100, 200, 400]

    def test_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert policy.schedule(random.Random(7)) \
            == policy.schedule(random.Random(7))


class TestFloatPolicies:
    """Harness policies measure wall-clock seconds, not work units:
    their schedules must stay float instead of truncating to int."""

    def test_for_harness_builds_a_seconds_policy(self):
        policy = RetryPolicy.for_harness(timeout=2.5, retries=3,
                                         base_delay=0.5, cap_delay=8.0)
        assert policy.timeout == 2.5
        assert policy.max_retries == 3
        assert policy.base_delay == 0.5
        assert policy.cap_delay == 8.0
        assert policy.retry_failure_p == 0.0  # real faults, not simulated

    def test_for_harness_defaults_to_no_deadline(self):
        assert RetryPolicy.for_harness().timeout is None

    def test_float_schedule_stays_float_and_capped(self):
        policy = RetryPolicy.for_harness(retries=5, base_delay=0.5,
                                         cap_delay=4.0)
        for seed in range(10):
            delays = policy.schedule(random.Random(seed))
            assert all(isinstance(delay, float) for delay in delays)
            assert delays == sorted(delays)
            assert all(0.5 <= delay <= 4.0 for delay in delays)

    def test_sub_unit_base_delay_survives(self):
        # An int() truncation bug would collapse 0.05s backoff to zero.
        policy = RetryPolicy.for_harness(retries=2, base_delay=0.05,
                                         cap_delay=0.2)
        delays = policy.schedule(random.Random(0))
        assert all(delay >= 0.05 for delay in delays)

    def test_int_schedules_remain_integers(self):
        # Simulated-client policies must keep bit-identical int delays.
        policy = RetryPolicy(base_delay=1_000, max_retries=4)
        delays = policy.schedule(random.Random(5))
        assert all(isinstance(delay, int) for delay in delays)

    def test_cap_delay_floored_at_base_delay(self):
        policy = RetryPolicy.for_harness(base_delay=2.0, cap_delay=0.5)
        assert policy.cap_delay == 2.0

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy.for_harness(timeout=-1.0)


class TestResolveFailure:
    def test_bounds_and_accounting(self):
        policy = RetryPolicy(max_retries=3)
        for seed in range(30):
            retries, ok, spent = policy.resolve_failure(random.Random(seed))
            assert 1 <= retries <= 3 or (retries == 3 and not ok)
            assert spent > 0
            max_spend = sum(policy.schedule(random.Random(seed)))
            assert spent <= max_spend

    def test_always_fails_when_no_retries_allowed(self):
        policy = RetryPolicy(max_retries=0)
        retries, ok, spent = policy.resolve_failure(random.Random(1))
        assert (retries, ok, spent) == (0, False, 0)

    def test_deterministic_per_seed(self):
        policy = RetryPolicy()
        assert policy.resolve_failure(random.Random(11)) \
            == policy.resolve_failure(random.Random(11))

"""Service metrics: counters, percentiles, bounded sampling."""

import pytest

from repro.faults.metrics import ServiceMetrics


class TestCounters:
    def test_observe_accumulates(self):
        m = ServiceMetrics()
        m.observe(100)
        m.observe(200, ok=False, retries=3, hedged=True, timed_out=True,
                  dropped=True)
        assert m.requests == 2
        assert m.successes == 1
        assert m.failures == 1
        assert m.retries == 3
        assert m.hedges == 1
        assert m.timeouts == 1
        assert m.drops == 1

    def test_goodput_and_retry_rate(self):
        m = ServiceMetrics()
        assert m.goodput() == 0.0
        assert m.retry_rate() == 0.0
        for _ in range(3):
            m.observe(10)
        m.observe(10, ok=False, retries=2)
        assert m.goodput() == pytest.approx(0.75)
        assert m.retry_rate() == pytest.approx(0.5)

    def test_summary_is_json_shaped(self):
        import json

        m = ServiceMetrics()
        m.observe(50, retries=1)
        summary = m.summary()
        assert json.loads(json.dumps(summary)) == summary
        for key in ("requests", "goodput", "retry_rate", "retries",
                    "hedges", "timeouts", "drops", "p50", "p99", "p999"):
            assert key in summary


class TestPercentiles:
    def test_nearest_rank(self):
        m = ServiceMetrics()
        for latency in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]:
            m.observe(latency)
        assert m.p50() == 60
        assert m.p99() == 100
        assert m.percentile(0.0) == 10
        assert m.percentile(1.0) == 100

    def test_empty_percentile_is_zero(self):
        assert ServiceMetrics().p99() == 0

    def test_empty_reservoir_every_accessor(self):
        # A fully ejected node or partitioned shard observes nothing;
        # its window must report 0, not raise, at every quantile.
        m = ServiceMetrics()
        assert m.p50() == 0
        assert m.p999() == 0
        assert m.percentile(0.0) == 0
        assert m.percentile(1.0) == 0

    def test_p999_tracks_deep_tail(self):
        m = ServiceMetrics()
        for latency in range(1, 2_001):
            m.observe(latency)
        assert m.p99() <= m.p999() <= 2_000
        assert m.p999() >= 1_990

    def test_rejects_out_of_range_quantile(self):
        m = ServiceMetrics()
        m.observe(1)
        with pytest.raises(ValueError):
            m.percentile(1.5)

    def test_rejects_out_of_range_quantile_even_when_empty(self):
        with pytest.raises(ValueError):
            ServiceMetrics().percentile(-0.1)


class TestSampling:
    def test_decimation_bounds_memory(self):
        class Small(ServiceMetrics):
            """A metrics accumulator with a tiny sample buffer."""
            MAX_SAMPLES = 64

        m = Small()
        for latency in range(1_000):
            m.observe(latency)
        assert len(m._latencies) < 64 * 2
        assert m.requests == 1_000
        # Decimated percentiles still track the distribution.
        assert 400 <= m.p50() <= 600

    def test_merge_folds_counters_and_samples(self):
        a = ServiceMetrics()
        b = ServiceMetrics()
        for latency in range(100):
            a.observe(latency)
        for latency in range(100, 200):
            b.observe(latency, retries=1)
        a.merge(b)
        assert a.requests == 200
        assert a.retries == 100
        assert a.percentile(1.0) == 199

"""Fault plans and events: validation, scheduling, determinism."""

import pytest

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor-strike", at_request=0, duration=1)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            FaultEvent("straggler", at_request=-1, duration=1)
        with pytest.raises(ValueError):
            FaultEvent("straggler", at_request=0, duration=0)
        with pytest.raises(ValueError):
            FaultEvent("straggler", at_request=0, duration=10, period=5)
        with pytest.raises(ValueError):
            FaultEvent("straggler", at_request=0, duration=1, severity=0.0)
        with pytest.raises(ValueError):
            FaultEvent("straggler", at_request=0, duration=1, severity=5.0)

    def test_one_shot_window(self):
        event = FaultEvent("gc-storm", at_request=10, duration=5)
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(14)
        assert not event.active_at(15)
        assert not event.active_at(1_000)

    def test_periodic_window_recurs(self):
        event = FaultEvent("request-drop", at_request=8, duration=4, period=16)
        for cycle in range(4):
            base = 8 + 16 * cycle
            assert event.active_at(base)
            assert event.active_at(base + 3)
            assert not event.active_at(base + 4)
        assert not event.active_at(0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty()
        assert plan.active_at(0) == ()
        assert plan.describe() == "(empty plan)"

    def test_events_coerced_to_tuple_and_hashable(self):
        event = FaultEvent("straggler", at_request=0, duration=2)
        plan = FaultPlan(events=[event], seed=3)
        assert isinstance(plan.events, tuple)
        assert hash(plan) == hash(FaultPlan(events=(event,), seed=3))
        assert {plan: "cached"}[FaultPlan(events=(event,), seed=3)] == "cached"

    def test_degraded_plan_covers_every_kind_periodically(self):
        plan = FaultPlan.degraded(seed=1)
        kinds = {event.kind for event in plan.events}
        assert kinds == set(FAULT_KINDS)
        assert all(event.period > 0 for event in plan.events)

    def test_degraded_intensity_scales_severity(self):
        mild = FaultPlan.degraded(seed=1, intensity=0.5)
        harsh = FaultPlan.degraded(seed=1, intensity=2.0)
        assert all(e.severity == 0.5 for e in mild.events)
        assert all(e.severity == 2.0 for e in harsh.events)
        with pytest.raises(ValueError):
            FaultPlan.degraded(intensity=0.0)

    def test_generate_is_seed_deterministic(self):
        assert FaultPlan.generate(5) == FaultPlan.generate(5)
        assert FaultPlan.generate(5) != FaultPlan.generate(6)

    def test_generate_respects_horizon_and_kinds(self):
        plan = FaultPlan.generate(1, horizon=100,
                                  kinds=("straggler", "gc-storm"),
                                  events_per_kind=2)
        assert len(plan.events) == 4
        assert all(event.at_request < 100 for event in plan.events)
        assert {e.kind for e in plan.events} == {"straggler", "gc-storm"}
        with pytest.raises(ValueError):
            FaultPlan.generate(1, kinds=("bogus",))

    def test_active_at_returns_one_event_per_kind(self):
        plan = FaultPlan(events=(
            FaultEvent("straggler", at_request=0, duration=10),
            FaultEvent("straggler", at_request=5, duration=10),
            FaultEvent("gc-storm", at_request=5, duration=10),
        ))
        active = plan.active_at(6)
        assert {e.kind for e in active} == {"straggler", "gc-storm"}
        assert len(active) == 2
        # The earliest straggler window wins.
        straggler = next(e for e in active if e.kind == "straggler")
        assert straggler.at_request == 0

    def test_describe_names_every_event(self):
        text = FaultPlan.degraded(seed=0).describe()
        for kind in FAULT_KINDS:
            assert kind in text

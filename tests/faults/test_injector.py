"""The fault injector: request clock, exposure accounting, RNG."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan


def _plan(*events, seed=0):
    return FaultPlan(events=tuple(events), seed=seed)


class TestEnablement:
    def test_empty_plan_is_inert(self):
        injector = FaultInjector(FaultPlan.empty())
        assert not injector.enabled
        assert injector.tick() == ()
        assert injector.total_fired() == 0

    def test_nonempty_plan_is_enabled(self):
        injector = FaultInjector(
            _plan(FaultEvent("straggler", at_request=0, duration=1)))
        assert injector.enabled


class TestClock:
    def test_tick_advances_and_reports_open_windows(self):
        injector = FaultInjector(
            _plan(FaultEvent("gc-storm", at_request=2, duration=2)))
        opened = [bool(injector.tick()) for _ in range(6)]
        assert opened == [False, False, True, True, False, False]
        assert injector.requests_seen == 6
        assert injector.exposure["gc-storm"] == 2

    def test_count_tracks_fired_and_drops(self):
        injector = FaultInjector(
            _plan(FaultEvent("request-drop", at_request=0, duration=4)))
        injector.count("request-drop", dropped=True)
        injector.count("straggler")
        assert injector.fired["request-drop"] == 1
        assert injector.fired["straggler"] == 1
        assert injector.dropped_requests == 1
        assert injector.total_fired() == 2


class TestRandomness:
    def test_roll_edge_probabilities(self):
        injector = FaultInjector(FaultPlan.empty())
        assert not injector.roll(0.0)
        assert not injector.roll(-1.0)
        assert injector.roll(1.0)
        assert injector.roll(2.0)

    def test_rng_is_plan_seed_deterministic(self):
        plan = _plan(FaultEvent("straggler", at_request=0, duration=1), seed=9)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.rng.random() for _ in range(20)] \
            == [b.rng.random() for _ in range(20)]

    def test_different_plan_seeds_draw_differently(self):
        event = FaultEvent("straggler", at_request=0, duration=1)
        a = FaultInjector(_plan(event, seed=1))
        b = FaultInjector(_plan(event, seed=2))
        assert [a.rng.random() for _ in range(5)] \
            != [b.rng.random() for _ in range(5)]

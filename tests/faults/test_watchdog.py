"""The runaway-trace watchdog: budget guard and stall detection."""

import pytest

from repro.faults.watchdog import (
    TRACE_ALLOWANCE,
    TRACE_SLACK,
    MAX_SILENT_SERVES,
    RunawayTraceError,
    guard_trace,
    trace_budget,
)


class TestBudget:
    def test_budget_formula(self):
        assert trace_budget(10_000) == int(10_000 * TRACE_SLACK) + TRACE_ALLOWANCE

    def test_guard_passes_traces_within_budget(self):
        assert list(guard_trace(iter(range(100)), 100, "ok")) == list(range(100))

    def test_guard_raises_past_budget(self):
        with pytest.raises(RunawayTraceError, match="my-workload"):
            list(guard_trace(iter(range(200)), 100, "my-workload"))

    def test_guard_is_lazy(self):
        guarded = guard_trace(iter(range(10 ** 9)), 5, "lazy")
        assert next(guarded) == 0  # no exhaustion attempt up front


class TestStallDetection:
    def test_wedged_serve_loop_raises(self):
        from repro.apps.synth import ParsecCpuApp

        app = ParsecCpuApp(seed=1)
        app.serve = lambda rt: None  # a serve that never emits micro-ops
        with pytest.raises(RunawayTraceError, match="serve"):
            list(app.trace(0, 1_000))

    def test_stall_threshold_is_generous(self):
        # The limit exists for wedged loops, not bursty apps: hundreds
        # of consecutive empty serves are required before it trips.
        assert MAX_SILENT_SERVES >= 64

"""Fault-injection subsystem tests."""

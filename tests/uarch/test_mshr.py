"""Super-queue occupancy accounting (memory cycles + MLP, §3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.mshr import SuperQueue


class TestBasicAccounting:
    def test_empty_queue_never_busy(self):
        sq = SuperQueue(16)
        sq.advance(100)
        assert sq.busy_cycles == 0
        assert sq.mlp == 0.0

    def test_single_request_busy_for_its_latency(self):
        sq = SuperQueue(16)
        sq.insert(completion_cycle=50)
        sq.advance(100)
        assert sq.busy_cycles == 50
        assert sq.mlp == pytest.approx(1.0)

    def test_two_overlapping_requests(self):
        sq = SuperQueue(16)
        sq.insert(100)
        sq.insert(100)
        sq.advance(100)
        assert sq.busy_cycles == 100
        assert sq.mlp == pytest.approx(2.0)

    def test_partial_overlap(self):
        sq = SuperQueue(16)
        sq.insert(10)  # busy [0,10) with 1..2 outstanding
        sq.insert(20)  # busy [0,20)
        sq.advance(20)
        # [0,10): 2 outstanding; [10,20): 1 outstanding.
        assert sq.busy_cycles == 20
        assert sq.occupancy_sum == 2 * 10 + 1 * 10
        assert sq.mlp == pytest.approx(1.5)

    def test_disjoint_requests_leave_idle_gap(self):
        sq = SuperQueue(16)
        sq.insert(10)
        sq.advance(50)
        sq.insert(90)
        sq.advance(100)
        assert sq.busy_cycles == 10 + 40
        assert sq.mlp == pytest.approx(1.0)

    def test_capacity_tracking(self):
        sq = SuperQueue(2)
        sq.insert(10)
        assert sq.has_capacity()
        sq.insert(10)
        assert not sq.has_capacity()
        sq.advance(11)
        assert sq.has_capacity()

    def test_requests_counter(self):
        sq = SuperQueue(4)
        for _ in range(5):
            sq.insert(1)
            sq.advance(2)
        assert sq.requests == 5

    def test_advance_is_idempotent_for_same_cycle(self):
        sq = SuperQueue(4)
        sq.insert(10)
        sq.advance(5)
        busy = sq.busy_cycles
        sq.advance(5)
        assert sq.busy_cycles == busy


@settings(max_examples=50, deadline=None)
@given(
    latencies=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=40),
    gaps=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
)
def test_busy_cycles_bounded_by_total_latency(latencies, gaps):
    """Property: busy cycles never exceed the sum of request latencies,
    and occupancy integral equals exactly that sum once all complete."""
    sq = SuperQueue(1 << 30)
    now = 0
    total_latency = 0
    for latency, gap in zip(latencies, gaps):
        now += gap
        sq.advance(now)
        sq.insert(now + latency)
        total_latency += latency
    sq.advance(now + max(latencies) + 1)
    assert sq.busy_cycles <= total_latency
    # The occupancy integral counts each request once per cycle in flight.
    assert sq.occupancy_sum == total_latency
    if sq.busy_cycles:
        assert sq.mlp >= 1.0

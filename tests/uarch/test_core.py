"""Out-of-order core: issue limits, dependences, stalls, SMT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams, PrefetcherParams
from repro.uarch.uop import MicroOp, OpKind

NO_PF = PrefetcherParams(False, False, False, False)


def make_core(params=None) -> Core:
    params = params or MachineParams().with_prefetchers(NO_PF)
    return Core(params, MemoryHierarchy(params))


def alu_trace(n, deps_fn=lambda seq: (), tid=0, pc=0x400000):
    seq = 0
    for _ in range(n):
        seq += 1
        yield MicroOp(OpKind.ALU, pc, 0, deps_fn(seq), seq, tid=tid)


class TestIssueWidth:
    def test_independent_alus_reach_width_limit(self):
        core = make_core()
        res = core.run([alu_trace(4000)])
        ipc = res.instructions / res.cycles
        assert ipc > 3.0  # 4-wide core, no dependences, one hot I-line

    def test_serial_chain_limits_ipc_to_one(self):
        core = make_core()
        res = core.run([alu_trace(4000, deps_fn=lambda s: (s - 1,) if s > 1 else ())])
        ipc = res.instructions / res.cycles
        assert 0.8 < ipc <= 1.05

    def test_all_instructions_commit(self):
        core = make_core()
        res = core.run([alu_trace(1234)])
        assert res.instructions == 1234

    def test_committing_plus_stalled_equals_cycles(self):
        core = make_core()
        res = core.run([alu_trace(1000)])
        assert res.committing_cycles + res.stalled_cycles == res.cycles


class TestMemoryBehaviour:
    def _load_trace(self, n, stride, dep_chain, base=1 << 30):
        seq = 0
        last = 0
        for i in range(n):
            seq += 1
            deps = (last,) if (dep_chain and last) else ()
            yield MicroOp(OpKind.LOAD, 0x400000, base + i * stride, deps, seq)
            last = seq

    def test_dependent_cold_loads_serialize(self):
        core = make_core()
        res = core.run([self._load_trace(300, 4096, dep_chain=True)])
        assert res.mlp == pytest.approx(1.0, abs=0.05)
        cycles_per_load = res.cycles / 300
        assert cycles_per_load > 200  # each pays the full memory latency

    def test_independent_cold_loads_overlap(self):
        core = make_core()
        res = core.run([self._load_trace(300, 4096, dep_chain=False)])
        assert res.mlp > 3.0
        assert res.memory_cycles > 0.8 * res.cycles

    def test_mlp_bounded_by_mshrs(self):
        params = MachineParams().with_prefetchers(NO_PF)
        core = make_core(params)
        res = core.run([self._load_trace(400, 4096, dep_chain=False)])
        assert res.mlp <= params.mshr_entries + 0.01

    def test_warm_loads_do_not_stall(self):
        core = make_core()

        def trace(n):
            for seq in range(1, n + 1):
                yield MicroOp(OpKind.LOAD, 0x400000, 1 << 30, (), seq)

        core.run([trace(50)])  # absorb the cold-start misses
        res = core.run([trace(1000)])
        assert res.memory_cycles < 0.05 * res.cycles

    def test_stores_do_not_block_commit(self):
        seq = 0
        trace = []
        for i in range(500):
            seq += 1
            trace.append(
                MicroOp(OpKind.STORE, 0x400000, (1 << 30) + i * 4096, (), seq)
            )
        core = make_core()
        res = core.run([iter(trace)])
        # Store misses drain in the background: far faster than loads would be.
        assert res.cycles < 500 * 50

    def test_loads_and_stores_counted(self):
        seq = 0
        trace = [
            MicroOp(OpKind.LOAD, 0x400000, 1 << 30, (), 1),
            MicroOp(OpKind.STORE, 0x400000, 1 << 30, (), 2),
            MicroOp(OpKind.ALU, 0x400000, 0, (), 3),
        ]
        core = make_core()
        res = core.run([iter(trace)])
        assert res.loads == 1
        assert res.stores == 1


class TestFrontend:
    def test_icache_misses_stall_fetch(self):
        # Jump between many code lines so the L1-I misses constantly.
        def trace():
            seq = 0
            for i in range(3000):
                seq += 1
                pc = 0x400000 + (i * 8192) % (4 << 20)
                yield MicroOp(OpKind.ALU, pc, 0, (), seq)

        core = make_core()
        res = core.run([trace()])
        assert res.l1i_misses > 1000
        assert res.instructions / res.cycles < 1.0

    def test_branch_mispredicts_charge_penalty(self):
        import random

        rng = random.Random(3)

        def trace(predictable):
            seq = 0
            for i in range(2000):
                seq += 1
                if i % 4 == 0:
                    taken = True if predictable else rng.random() < 0.5
                    yield MicroOp(OpKind.BRANCH, 0x400100, 0, (), seq,
                                  taken=taken, target=0x400200)
                else:
                    yield MicroOp(OpKind.ALU, 0x400000, 0, (), seq)

        predictable = make_core().run([trace(True)])
        noisy = make_core().run([trace(False)])
        assert noisy.cycles > predictable.cycles * 1.5
        assert noisy.branch_mispredicts > predictable.branch_mispredicts

    def test_os_instructions_counted(self):
        def trace():
            for seq in range(1, 101):
                yield MicroOp(OpKind.ALU, 0x400000, 0, (), seq,
                              is_os=(seq % 2 == 0))

        res = make_core().run([trace()])
        assert res.os_instructions == 50


class TestSmt:
    def test_two_threads_all_commit(self):
        core = make_core(MachineParams().with_smt(2).with_prefetchers(NO_PF))
        res = core.run([alu_trace(1000, tid=0), alu_trace(1000, tid=1)])
        assert res.instructions == 2000
        assert res.per_thread_instructions == [1000, 1000]

    def test_smt_improves_throughput_of_stalling_threads(self):
        def memory_bound(tid):
            seq = 0
            last = 0
            base = (1 << 30) + tid * (1 << 26)
            for i in range(1500):
                seq += 1
                deps = (last,) if last else ()
                yield MicroOp(OpKind.LOAD, 0x400000, base + i * 4096, deps,
                              seq, tid=tid)
                last = seq

        single = make_core().run([memory_bound(0)])
        smt_core = make_core(MachineParams().with_smt(2).with_prefetchers(NO_PF))
        dual = smt_core.run([memory_bound(0), memory_bound(1)])
        single_ipc = single.instructions / single.cycles
        dual_ipc = dual.instructions / dual.cycles
        assert dual_ipc > 1.5 * single_ipc  # two serial chains overlap
        assert dual.mlp > 1.5 * single.mlp

    def test_smt_threads_contend_for_core_resources(self):
        single = make_core().run([alu_trace(2000)])
        smt_core = make_core(MachineParams().with_smt(2).with_prefetchers(NO_PF))
        dual = smt_core.run([alu_trace(2000, tid=0), alu_trace(2000, tid=1)])
        per_thread_ipc = dual.per_thread_instructions[0] / dual.cycles
        assert per_thread_ipc < single.instructions / single.cycles


class TestResumability:
    def test_counters_are_per_run_deltas(self):
        core = make_core()
        first = core.run([alu_trace(500)])
        second = core.run([alu_trace(500)])
        assert first.instructions == second.instructions == 500
        assert second.l1i_misses <= first.l1i_misses  # caches stay warm


class TestCycleBudget:
    def test_idle_fast_forward_respects_max_cycles(self):
        """The idle-cycle skip must clamp to the budget, not overshoot.

        A cold load to DRAM parks the pipeline for ~hundreds of idle
        cycles; the fast-forward used to jump straight to the completion
        event even when that landed past ``max_cycles``, so a budgeted
        run could report more cycles than it was granted.
        """
        def trace():
            # One cold miss, then a dependent ALU so the window cannot
            # retire past the load.
            yield MicroOp(OpKind.LOAD, 0x400000, 1 << 30, (), 1)
            yield MicroOp(OpKind.ALU, 0x400004, 0, (1,), 2)

        core = make_core()
        res = core.run([trace()], max_cycles=50)
        assert res.cycles <= 50

    def test_unbudgeted_run_still_completes(self):
        def trace():
            yield MicroOp(OpKind.LOAD, 0x400000, 1 << 30, (), 1)
            yield MicroOp(OpKind.ALU, 0x400004, 0, (1,), 2)

        core = make_core()
        res = core.run([trace()])
        assert res.instructions == 2


@settings(max_examples=20, deadline=None)
@given(
    kinds=st.lists(
        st.sampled_from([OpKind.ALU, OpKind.LOAD, OpKind.STORE]),
        min_size=1,
        max_size=200,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_all_uops_commit_and_cycles_consistent(kinds, seed):
    """Property: every micro-op commits exactly once; cycle classification
    partitions total cycles; MLP is non-negative."""
    import random

    rng = random.Random(seed)
    trace = []
    for i, kind in enumerate(kinds, start=1):
        addr = (1 << 30) + rng.randrange(1 << 22) // 64 * 64
        deps = (rng.randrange(1, i),) if i > 1 and rng.random() < 0.4 else ()
        trace.append(MicroOp(kind, 0x400000 + (i % 64) * 4, addr, deps, i))
    core = make_core()
    res = core.run([iter(trace)])
    assert res.instructions == len(kinds)
    assert res.committing_cycles + res.stalled_cycles == res.cycles
    assert res.cycles >= (len(kinds) + 3) // 4
    assert res.mlp >= 0.0

"""MachineParams: Table 1 values and derived configurations."""

import pytest

from repro.uarch.params import CacheParams, MachineParams, PrefetcherParams


class TestTable1Defaults:
    def test_frequency_is_293ghz(self, params):
        assert params.freq_hz == pytest.approx(2.93e9)

    def test_six_cores_four_active(self, params):
        assert params.num_cores == 6
        assert params.active_cores == 4

    def test_core_width_four(self, params):
        assert params.width == 4

    def test_rob_128_entries(self, params):
        assert params.rob_entries == 128

    def test_load_store_buffers_48_32(self, params):
        assert params.load_buffer == 48
        assert params.store_buffer == 32

    def test_reservation_stations_36(self, params):
        assert params.reservation_stations == 36

    def test_l1_split_32kb_4cycle(self, params):
        assert params.l1i.size_bytes == 32 * 1024
        assert params.l1d.size_bytes == 32 * 1024
        assert params.l1i.latency == 4
        assert params.l1d.latency == 4

    def test_l2_256kb_6cycle(self, params):
        assert params.l2.size_bytes == 256 * 1024
        assert params.l2.latency == 6

    def test_llc_12mb_29cycle(self, params):
        assert params.llc.size_bytes == 12 * 1024 * 1024
        assert params.llc.latency == 29

    def test_memory_three_channels_32gbs(self, params):
        assert params.memory_channels == 3
        assert params.peak_bandwidth_bytes_per_s == pytest.approx(32e9)

    def test_table1_rows_render_every_parameter(self):
        rows = dict(MachineParams.table1_rows())
        assert "Reorder buffer" in rows
        assert rows["Core width"] == "4-wide issue and retire"
        assert "12MB" in rows["LLC (L3 cache)"]


class TestCacheParams:
    def test_num_sets(self):
        cache = CacheParams(32 * 1024, 4, 4)
        assert cache.num_sets == 128

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(1000, 3, 4)

    def test_line_bytes_default(self):
        assert CacheParams(4096, 1, 1).line_bytes == 64


class TestDerivedConfigurations:
    def test_with_llc_mb_resizes(self, params):
        smaller = params.with_llc_mb(6)
        assert smaller.llc.size_bytes == 6 * 1024 * 1024
        # Everything else untouched.
        assert smaller.l2 == params.l2
        assert smaller.rob_entries == params.rob_entries

    @pytest.mark.parametrize("size_mb", [4, 5, 6, 7, 8, 9, 10, 11])
    def test_with_llc_mb_supports_every_figure4_point(self, params, size_mb):
        resized = params.with_llc_mb(size_mb)
        assert resized.llc.size_bytes == size_mb * 1024 * 1024
        assert resized.llc.num_sets * resized.llc.assoc * 64 == resized.llc.size_bytes

    def test_with_smt(self, params):
        assert params.with_smt(2).smt_threads == 2
        assert params.smt_threads == 1  # frozen original unchanged

    def test_with_prefetchers(self, params):
        off = params.with_prefetchers(PrefetcherParams().all_disabled())
        assert not off.prefetch.hw_prefetcher
        assert not off.prefetch.adjacent_line
        assert not off.prefetch.dcu_streamer
        assert not off.prefetch.l1i_next_line
        assert params.prefetch.hw_prefetcher  # original untouched

    def test_params_are_hashable_for_run_caching(self, params):
        assert hash(params) == hash(MachineParams())

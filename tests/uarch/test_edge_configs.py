"""Robustness: pathological configurations and degenerate inputs."""

from dataclasses import replace

import pytest

from repro.uarch.cache import Cache
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import CacheParams, MachineParams, PrefetcherParams
from repro.uarch.uop import MicroOp, OpKind

NO_PF = PrefetcherParams(False, False, False, False)


class TestDegenerateTraces:
    def test_empty_trace(self):
        core = Core(MachineParams())
        result = core.run([iter([])])
        assert result.instructions == 0

    def test_no_threads(self):
        core = Core(MachineParams())
        result = core.run([])
        assert result.cycles == 0

    def test_single_uop(self):
        core = Core(MachineParams())
        result = core.run([iter([MicroOp(OpKind.ALU, 0x400000)])])
        assert result.instructions == 1

    def test_one_empty_one_busy_thread(self):
        params = MachineParams().with_smt(2)
        core = Core(params)
        busy = iter([MicroOp(OpKind.ALU, 0x400000, 0, (), s, tid=1)
                     for s in range(1, 50)])
        result = core.run([iter([]), busy])
        assert result.instructions == 49

    def test_dangling_dependency_is_treated_as_ready(self):
        """A dep referencing a long-retired producer must not deadlock."""
        core = Core(MachineParams())
        trace = [MicroOp(OpKind.ALU, 0x400000, 0, (999,), 1)]
        result = core.run([iter(trace)])
        assert result.instructions == 1


class TestTinyCaches:
    def test_direct_mapped_single_line_cache(self):
        cache = Cache("tiny", CacheParams(64, 1, 1))
        cache.fill(0)
        assert cache.access(0)
        cache.fill(64 * cache.num_sets)
        assert not cache.access(0)

    def test_hierarchy_with_tiny_llc(self):
        params = replace(
            MachineParams().with_prefetchers(NO_PF),
            llc=CacheParams(64 * 1024, 16, 29),
        )
        hier = MemoryHierarchy(params)
        for i in range(4096):
            hier.access(i * 64)
        assert hier.llc.resident_lines() <= 64 * 1024 // 64

    def test_core_runs_on_tiny_machine(self):
        params = replace(
            MachineParams().with_prefetchers(NO_PF),
            rob_entries=8,
            reservation_stations=4,
            load_buffer=2,
            store_buffer=2,
            mshr_entries=1,
            fetch_queue=2,
        )
        core = Core(params)
        trace = []
        for seq in range(1, 400):
            kind = OpKind.LOAD if seq % 3 == 0 else OpKind.ALU
            trace.append(MicroOp(kind, 0x400000, (1 << 30) + seq * 4096,
                                 (seq - 1,) if seq % 5 == 0 else (), seq))
        result = core.run([iter(trace)])
        assert result.instructions == 399
        assert result.mlp <= 1.01  # one MSHR caps parallelism


class TestConfigValidation:
    def test_llc_resize_beyond_limits(self):
        with pytest.raises(ValueError):
            MachineParams().with_llc_mb(0.00001)

    def test_negative_window_is_rejected_by_scaled_floor(self):
        from repro.core.runner import RunConfig

        config = RunConfig(window_uops=10, warm_uops=10).scaled(0.0001)
        assert config.window_uops >= 2_000

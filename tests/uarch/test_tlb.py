"""Two-level TLB model."""

from repro.uarch.tlb import Tlb, _LruArray, make_tlbs


class TestLruArray:
    def test_miss_then_hit(self):
        arr = _LruArray(4)
        assert not arr.access(1)
        arr.fill(1)
        assert arr.access(1)

    def test_capacity_eviction(self):
        arr = _LruArray(2)
        arr.fill(1)
        arr.fill(2)
        arr.fill(3)  # evicts 1
        assert not arr.access(1)
        assert arr.access(2)
        assert arr.access(3)

    def test_access_refreshes_recency(self):
        arr = _LruArray(2)
        arr.fill(1)
        arr.fill(2)
        arr.access(1)
        arr.fill(3)  # evicts 2, the LRU
        assert arr.access(1)
        assert not arr.access(2)


class TestTlbLevels:
    def test_first_access_walks(self):
        itlb, _ = make_tlbs(4, 4, 16)
        assert itlb.access(0x1000) == "miss"
        assert itlb.stats.l2_misses == 1

    def test_second_access_hits_l1(self):
        itlb, _ = make_tlbs(4, 4, 16)
        itlb.access(0x1000)
        assert itlb.access(0x1234) == "l1"  # same 4K page
        assert itlb.stats.l1_hits == 1

    def test_l1_eviction_falls_back_to_stlb(self):
        itlb, _ = make_tlbs(2, 2, 64)
        for page in range(4):
            itlb.access(page * 4096)
        # Page 0 fell out of the 2-entry L1 but is still in the STLB.
        assert itlb.access(0) == "l2"

    def test_stlb_is_shared_between_i_and_d(self):
        itlb, dtlb = make_tlbs(1, 1, 16)
        itlb.access(0x5000)
        itlb.access(0x6000)  # evicts 0x5000 from the 1-entry L1
        assert dtlb.access(0x5000) == "l2"  # warm in the shared STLB

    def test_different_pages_miss(self):
        itlb, _ = make_tlbs(8, 8, 64)
        itlb.access(0)
        assert itlb.access(4096) == "miss"

    def test_stats_accesses(self):
        itlb, _ = make_tlbs(4, 4, 16)
        for i in range(5):
            itlb.access(i * 4096)
        assert itlb.stats.accesses == 5

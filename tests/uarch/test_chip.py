"""Multi-core chip: shared LLC, aggregation, segment interleaving."""

from repro.uarch.chip import Chip, ChipResult
from repro.uarch.core import CoreResult
from repro.uarch.params import MachineParams, PrefetcherParams
from repro.uarch.uop import MicroOp, OpKind

NO_PF = PrefetcherParams(False, False, False, False)


def simple_trace(n, base, tid=0):
    for seq in range(1, n + 1):
        if seq % 3 == 0:
            yield MicroOp(OpKind.LOAD, 0x400000, base + seq * 64, (), seq, tid=tid)
        else:
            yield MicroOp(OpKind.ALU, 0x400000, 0, (), seq, tid=tid)


class TestChipStructure:
    def test_cores_share_one_llc(self):
        chip = Chip(MachineParams().with_prefetchers(NO_PF), num_cores=2)
        assert chip.cores[0].hierarchy.llc is chip.cores[1].hierarchy.llc
        assert chip.cores[0].hierarchy.l2 is not chip.cores[1].hierarchy.l2

    def test_cores_share_directory_and_dram(self):
        chip = Chip(MachineParams(), num_cores=4)
        h0, h3 = chip.cores[0].hierarchy, chip.cores[3].hierarchy
        assert h0.directory is h3.directory
        assert h0.dram is h3.dram

    def test_invalidators_attached(self):
        chip = Chip(MachineParams(), num_cores=2)
        assert len(chip.directory._invalidators) == 2

    def test_rejects_too_many_traces(self):
        chip = Chip(MachineParams(), num_cores=2)
        import pytest
        with pytest.raises(ValueError):
            chip.run([iter([]), iter([]), iter([])])


class TestExecution:
    def test_all_cores_commit_their_traces(self):
        chip = Chip(MachineParams().with_prefetchers(NO_PF), num_cores=2)
        result = chip.run([simple_trace(600, 1 << 30), simple_trace(400, 2 << 30)])
        assert result.per_core[0].instructions == 600
        assert result.per_core[1].instructions == 400
        assert result.instructions == 1000

    def test_wall_clock_is_max_of_cores(self):
        chip = Chip(MachineParams().with_prefetchers(NO_PF), num_cores=2)
        result = chip.run([simple_trace(2000, 1 << 30), simple_trace(100, 2 << 30)])
        assert result.cycles == max(r.cycles for r in result.per_core)

    def test_llc_sharing_between_cores(self):
        """A line loaded by core 0 is an LLC hit for core 1."""
        chip = Chip(MachineParams().with_prefetchers(NO_PF), num_cores=2)
        addr = 5 << 30

        def one_load(tid):
            yield MicroOp(OpKind.LOAD, 0x400000, addr, (), 1, tid=tid)

        chip.run_segments([[one_load(0)], [one_load(1)]])
        # Two off-chip fetches total (the data line + the instruction
        # line); the second core hit both in the shared LLC.
        assert chip.dram.stats.read_bytes == 128

    def test_segments_interleave_round_robin(self):
        chip = Chip(MachineParams().with_prefetchers(NO_PF), num_cores=2)
        result = chip.run_segments(
            [
                [simple_trace(100, 1 << 30), simple_trace(100, 1 << 30)],
                [simple_trace(100, 2 << 30)],
            ]
        )
        assert result.per_core[0].instructions == 200
        assert result.per_core[1].instructions == 100


class TestAggregation:
    def test_summed_adds_counters(self):
        result = ChipResult(per_core=[
            CoreResult(cycles=100, instructions=50, superq_busy_cycles=10, mlp=2.0),
            CoreResult(cycles=200, instructions=70, superq_busy_cycles=30, mlp=4.0),
        ])
        total = result.summed()
        assert total.cycles == 300
        assert total.instructions == 120
        # MLP is busy-cycle weighted.
        assert abs(total.mlp - (2.0 * 10 + 4.0 * 30) / 40) < 1e-9

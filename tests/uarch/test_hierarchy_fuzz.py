"""Fuzzed invariants over the full hierarchy with prefetchers enabled."""

import random

from hypothesis import given, settings, strategies as st

from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    footprint_log2=st.integers(min_value=12, max_value=26),
    writes=st.floats(min_value=0.0, max_value=0.5),
)
def test_hierarchy_invariants_under_random_traffic(seed, footprint_log2, writes):
    """Any access pattern preserves the hierarchy's physical invariants."""
    params = MachineParams()
    hier = MemoryHierarchy(params)
    rng = random.Random(seed)
    footprint = 1 << footprint_log2
    min_latency = params.l1d.latency
    max_latency = (params.l1d.latency + params.l2.latency + params.llc.latency
                   + params.memory_latency + params.tlb_miss_penalty
                   + 2 * params.memory_latency)  # late-prefetch residue
    for i in range(600):
        addr = (1 << 32) + (rng.randrange(footprint) & ~63)
        is_write = rng.random() < writes
        res = hier.access(addr, is_write=is_write, now=i * 4)
        # Latency is bounded and consistent with the reported level.
        assert res.latency >= min_latency
        if res.level == "mem":
            assert res.off_chip and res.off_core
        if res.level in ("l1", "l2"):
            assert not res.off_chip
        # A just-accessed line is resident in the L1.
        assert hier.l1d.contains(addr)
    # Capacity invariants.
    for cache in (hier.l1d, hier.l1i, hier.l2, hier.llc):
        capacity = cache.num_sets * cache.assoc
        assert cache.resident_lines() <= capacity
    # Conservation: every demand access is a hit or a miss.
    for cache in (hier.l1d, hier.l2, hier.llc):
        stats = cache.stats
        assert stats.demand_hits + stats.demand_misses == stats.demand_accesses
    # Off-chip traffic is line-granular.
    assert hier.dram.stats.total_bytes % 64 == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_dram_queue_is_monotonic(seed):
    params = MachineParams()
    hier = MemoryHierarchy(params)
    rng = random.Random(seed)
    last_free = 0
    for i in range(100):
        hier.access((1 << 33) + i * (1 << 16), now=rng.randrange(0, 50))
        assert hier._dram_next_free >= last_free
        last_free = hier._dram_next_free

"""The SMT comparison harness (Figure 3 methodology)."""

from repro.uarch.core import CoreResult
from repro.uarch.params import MachineParams, PrefetcherParams
from repro.uarch.smt import SmtComparison, run_smt_comparison
from repro.uarch.uop import MicroOp, OpKind


def memory_bound_factory(tid):
    def trace():
        seq = 0
        last = 0
        base = (1 << 32) + tid * (1 << 26)
        for i in range(1200):
            seq += 1
            deps = (last,) if last else ()
            yield MicroOp(OpKind.LOAD, 0x400000, base + i * 4096, deps, seq, tid=tid)
            last = seq
    return trace()


class TestComparison:
    def test_runs_both_configurations(self):
        params = MachineParams().with_prefetchers(
            PrefetcherParams(False, False, False, False)
        )
        comparison = run_smt_comparison(params, memory_bound_factory)
        assert comparison.baseline.instructions == 1200
        assert comparison.smt.instructions == 2400

    def test_memory_bound_threads_gain_from_smt(self):
        params = MachineParams().with_prefetchers(
            PrefetcherParams(False, False, False, False)
        )
        comparison = run_smt_comparison(params, memory_bound_factory)
        assert comparison.ipc_gain > 0.5
        assert comparison.mlp_gain > 0.5

    def test_gain_properties_handle_zero(self):
        comparison = SmtComparison(
            baseline=CoreResult(cycles=10, instructions=5, mlp=0.0),
            smt=CoreResult(cycles=10, instructions=8, mlp=2.0),
        )
        assert comparison.mlp_gain == 0.0
        assert comparison.ipc_gain > 0.0

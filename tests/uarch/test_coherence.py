"""Last-writer directory and invalidation hooks (Figure 6 machinery)."""

from repro.uarch.coherence import LastWriterDirectory


class TestClassification:
    def test_unwritten_block_is_not_shared(self):
        d = LastWriterDirectory()
        assert not d.classify_llc_data_ref(0x1000, core=0, is_os=False)
        assert d.stats.remote_dirty_hits == 0
        assert d.stats.llc_data_refs == 1

    def test_own_write_is_not_remote(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=0)
        assert not d.classify_llc_data_ref(0x1000, core=0, is_os=False)

    def test_remote_write_is_shared(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=1)
        assert d.classify_llc_data_ref(0x1000, core=0, is_os=False)
        assert d.stats.remote_dirty_hits == 1

    def test_os_hits_split(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=1)
        d.classify_llc_data_ref(0x1000, core=0, is_os=True)
        assert d.stats.os_remote_dirty_hits == 1
        assert d.stats.app_remote_dirty_hits == 0

    def test_fraction(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=1)
        d.classify_llc_data_ref(0x1000, core=0, is_os=False)
        d.classify_llc_data_ref(0x2000, core=0, is_os=False)
        assert d.stats.remote_dirty_fraction == 0.5

    def test_line_granularity(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=1)
        assert d.classify_llc_data_ref(0x1020, core=0, is_os=False)  # same line
        assert not d.classify_llc_data_ref(0x1040, core=0, is_os=False)


class TestSockets:
    def test_socket_mapping(self):
        d = LastWriterDirectory(cores_per_socket=2)
        assert d.socket_of(0) == 0
        assert d.socket_of(1) == 0
        assert d.socket_of(2) == 1
        assert d.socket_of(3) == 1

    def test_cross_socket_hits_counted(self):
        d = LastWriterDirectory(cores_per_socket=2)
        d.record_write(0x1000, core=3)
        d.classify_llc_data_ref(0x1000, core=0, is_os=False)
        assert d.stats.remote_socket_hits == 1

    def test_same_socket_remote_core_not_cross_socket(self):
        d = LastWriterDirectory(cores_per_socket=2)
        d.record_write(0x1000, core=1)
        d.classify_llc_data_ref(0x1000, core=0, is_os=False)
        assert d.stats.remote_dirty_hits == 1
        assert d.stats.remote_socket_hits == 0


class TestInvalidation:
    def test_write_invalidates_other_cores(self):
        d = LastWriterDirectory()
        invalidated = {0: [], 1: []}
        d.attach_core(0, lambda a: invalidated[0].append(a))
        d.attach_core(1, lambda a: invalidated[1].append(a))
        d.record_write(0x1040, core=0)
        assert invalidated[1] == [0x1040]
        assert invalidated[0] == []

    def test_repeated_writes_by_same_core_do_not_reinvalidate(self):
        d = LastWriterDirectory()
        invalidated = []
        d.attach_core(1, invalidated.append)
        d.record_write(0x1040, core=0)
        d.record_write(0x1040, core=0)
        assert len(invalidated) == 1

    def test_ping_pong_writes_invalidate_each_time(self):
        d = LastWriterDirectory()
        counts = {0: 0, 1: 0}

        def bump(core):
            def _inner(addr):
                counts[core] += 1
            return _inner

        d.attach_core(0, bump(0))
        d.attach_core(1, bump(1))
        for _ in range(3):
            d.record_write(0x2000, core=0)
            d.record_write(0x2000, core=1)
        assert counts[0] == 3
        assert counts[1] == 3

    def test_clear_forgets_writers(self):
        d = LastWriterDirectory()
        d.record_write(0x1000, core=1)
        d.clear()
        assert not d.classify_llc_data_ref(0x1000, core=0, is_os=False)

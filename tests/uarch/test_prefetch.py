"""Prefetcher models: next-line, adjacent-line, stream detection."""

from repro.uarch.prefetch import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    StreamPrefetcher,
)


class TestNextLine:
    def test_proposes_following_line(self):
        pf = NextLinePrefetcher()
        assert pf.observe(0x1000, hit=True) == [0x1040]

    def test_no_repeat_proposal_within_same_line(self):
        pf = NextLinePrefetcher()
        pf.observe(0x1000, hit=True)
        assert pf.observe(0x1008, hit=True) == []

    def test_new_line_triggers_again(self):
        pf = NextLinePrefetcher()
        pf.observe(0x1000, hit=True)
        assert pf.observe(0x1040, hit=True) == [0x1080]


class TestAdjacentLine:
    def test_buddy_of_even_line(self):
        pf = AdjacentLinePrefetcher()
        assert pf.observe(0x1000, hit=False) == [0x1040]

    def test_buddy_of_odd_line(self):
        pf = AdjacentLinePrefetcher()
        assert pf.observe(0x1040, hit=False) == [0x1000]

    def test_silent_on_hits(self):
        pf = AdjacentLinePrefetcher()
        assert pf.observe(0x1000, hit=True) == []


class TestStreamPrefetcher:
    def test_trains_on_ascending_stream(self):
        pf = StreamPrefetcher(degree=2, train_threshold=1)
        pf.observe(0x0, hit=False)
        pf.observe(0x40, hit=False)
        proposals = pf.observe(0x80, hit=False)
        assert 0xC0 in proposals
        assert 0x100 in proposals

    def test_trains_on_descending_stream(self):
        pf = StreamPrefetcher(degree=1, train_threshold=1)
        pf.observe(0x200, hit=False)
        pf.observe(0x1C0, hit=False)
        proposals = pf.observe(0x180, hit=False)
        assert proposals == [0x140]

    def test_does_not_cross_page_boundary(self):
        pf = StreamPrefetcher(degree=4, train_threshold=1)
        page_last = 4096 - 64
        pf.observe(page_last - 128, hit=False)
        pf.observe(page_last - 64, hit=False)
        proposals = pf.observe(page_last, hit=False)
        assert all(p < 4096 for p in proposals)

    def test_random_accesses_do_not_train(self):
        pf = StreamPrefetcher(degree=2, train_threshold=1)
        assert pf.observe(0 * 4096, hit=False) == []
        assert pf.observe(7 * 4096, hit=False) == []
        assert pf.observe(3 * 4096, hit=False) == []

    def test_direction_flip_resets_confidence(self):
        pf = StreamPrefetcher(degree=1, train_threshold=1)
        pf.observe(0x0, hit=False)
        pf.observe(0x40, hit=False)   # up
        pf.observe(0x80, hit=False)   # up, trained
        assert pf.observe(0x40, hit=False) == []  # down: retrain needed

    def test_table_capacity_evicts_oldest_page(self):
        pf = StreamPrefetcher(table_entries=2, degree=1, train_threshold=1)
        pf.observe(0 * 4096, hit=False)
        pf.observe(1 * 4096, hit=False)
        pf.observe(2 * 4096, hit=False)  # evicts page 0
        # Page 0 must retrain from scratch: first observation proposes nothing.
        assert pf.observe(0 * 4096 + 64, hit=False) == []

    def test_reset_clears_table(self):
        pf = StreamPrefetcher(degree=1, train_threshold=1)
        pf.observe(0x0, hit=False)
        pf.reset()
        assert pf.observe(0x40, hit=False) == []

    def test_degree_controls_distance(self):
        pf = StreamPrefetcher(degree=4, train_threshold=1)
        pf.observe(0x0, hit=False)
        pf.observe(0x40, hit=False)
        proposals = pf.observe(0x80, hit=False)
        assert len(proposals) == 4
        assert proposals == [0xC0, 0x100, 0x140, 0x180]

"""Cache model: hits, LRU replacement, writebacks, prefetch metadata."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache
from repro.uarch.params import CacheParams


def make_cache(size=4096, assoc=4, latency=4, line=64) -> Cache:
    return Cache("test", CacheParams(size, assoc, latency, line))


class TestBasicOperation:
    def test_cold_miss_then_hit_after_fill(self):
        cache = make_cache()
        assert not cache.access(0x1000)
        cache.fill(0x1000)
        assert cache.access(0x1000)

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.access(0x1000 + 63)
        assert not cache.access(0x1000 + 64)

    def test_stats_track_hits_and_misses(self):
        cache = make_cache()
        cache.access(0)
        cache.fill(0)
        cache.access(0)
        assert cache.stats.demand_misses == 1
        assert cache.stats.demand_hits == 1
        assert cache.stats.demand_accesses == 2
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_instruction_and_data_counters_are_split(self):
        cache = make_cache()
        cache.access(0, is_instr=True)
        cache.access(64, is_instr=False)
        assert cache.stats.inst_misses == 1
        assert cache.stats.data_misses == 1

    def test_os_counters(self):
        cache = make_cache()
        cache.access(0, is_instr=True, is_os=True)
        cache.fill(0)
        cache.access(0, is_instr=True, is_os=True)
        assert cache.stats.os_inst_misses == 1
        assert cache.stats.os_inst_hits == 1


class TestLruReplacement:
    def test_eviction_follows_lru_order(self):
        cache = make_cache(size=4 * 64, assoc=4, line=64)  # one set
        for i in range(4):
            cache.fill(i * 64 * cache.num_sets)
        # Touch line 0 so line 1 becomes LRU.
        cache.access(0)
        victim = cache.fill(4 * 64 * cache.num_sets)
        assert victim is not None
        assert victim.addr == 1 * 64 * cache.num_sets

    def test_capacity_never_exceeded(self):
        cache = make_cache(size=2048, assoc=2)
        for i in range(1000):
            cache.fill(i * 64)
        assert cache.resident_lines() <= 2048 // 64

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(size=64, assoc=1)
        cache.fill(0, dirty=True)
        victim = cache.fill(64 * cache.num_sets)
        assert victim is not None and victim.dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_not_a_writeback(self):
        cache = make_cache(size=64, assoc=1)
        cache.fill(0, dirty=False)
        victim = cache.fill(64 * cache.num_sets)
        assert victim is not None and not victim.dirty
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size=64, assoc=1)
        cache.fill(0)
        cache.access(0, is_write=True)
        victim = cache.fill(64 * cache.num_sets)
        assert victim.dirty


class TestPrefetchMetadata:
    def test_prefetched_line_counted_useful_on_demand_hit(self):
        cache = make_cache()
        cache.fill(0, prefetched=True)
        assert cache.stats.prefetch_issued == 1
        cache.access(0)
        assert cache.stats.prefetch_useful == 1

    def test_unused_prefetch_eviction_is_counted(self):
        cache = make_cache(size=64, assoc=1)
        cache.fill(0, prefetched=True)
        cache.fill(64 * cache.num_sets)
        assert cache.stats.prefetch_unused_evicted == 1

    def test_pf_penalty_consumed_once(self):
        cache = make_cache()
        cache.fill(0, prefetched=True, pf_penalty=80)
        cache.access(0)
        assert cache.consumed_pf_penalty == 80
        cache.access(0)
        assert cache.consumed_pf_penalty == 0

    def test_demand_fill_clears_prefetch_state(self):
        cache = make_cache()
        cache.fill(0, prefetched=True, pf_penalty=80)
        cache.fill(0, prefetched=False)
        cache.access(0)
        assert cache.consumed_pf_penalty == 0


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.invalidate(0x40)
        assert not cache.contains(0x40)

    def test_invalidate_missing_line_returns_false(self):
        cache = make_cache()
        assert not cache.invalidate(0x40)

    def test_flush_empties_cache(self):
        cache = make_cache()
        for i in range(10):
            cache.fill(i * 64)
        cache.flush()
        assert cache.resident_lines() == 0

    def test_peek_state_does_not_touch_lru(self):
        cache = make_cache(size=2 * 64, assoc=2)
        cache.fill(0)
        cache.fill(64 * cache.num_sets)
        cache.peek_state(0)  # must NOT make line 0 most-recently-used
        victim = cache.fill(2 * 64 * cache.num_sets)
        assert victim.addr == 0


class ReferenceLru:
    """Oracle: per-set LRU lists maintained the slow, obvious way."""

    def __init__(self, num_sets: int, assoc: int, line: int = 64) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.line = line
        self.sets: dict[int, list[int]] = {i: [] for i in range(num_sets)}

    def _set_of(self, addr: int) -> tuple[int, int]:
        tag = addr // self.line
        return tag % self.num_sets, tag

    def access(self, addr: int) -> bool:
        index, tag = self._set_of(addr)
        lru = self.sets[index]
        if tag in lru:
            lru.remove(tag)
            lru.append(tag)
            return True
        return False

    def fill(self, addr: int) -> None:
        index, tag = self._set_of(addr)
        lru = self.sets[index]
        if tag in lru:
            return
        if len(lru) >= self.assoc:
            lru.pop(0)
        lru.append(tag)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=63)),
        min_size=1,
        max_size=300,
    )
)
def test_cache_matches_reference_lru_model(ops):
    """Property: hit/miss outcomes match an oracle LRU implementation."""
    cache = make_cache(size=8 * 64 * 2, assoc=2)  # 8 sets, 2-way
    oracle = ReferenceLru(cache.num_sets, 2)
    for is_fill, line_index in ops:
        addr = line_index * 64
        if is_fill:
            cache.fill(addr)
            oracle.fill(addr)
        else:
            assert cache.access(addr) == oracle.access(addr)
            # Model demand-fill-on-miss so both stay in sync.
            cache.fill(addr)
            oracle.fill(addr)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_resident_lines_never_exceed_capacity(seed):
    rng = random.Random(seed)
    cache = make_cache(size=4096, assoc=4)
    capacity = 4096 // 64
    for _ in range(500):
        cache.fill(rng.randrange(1 << 20) & ~63)
        assert cache.resident_lines() <= capacity

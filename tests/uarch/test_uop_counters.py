"""Micro-op record and the performance-counter surface."""

import pytest

from repro.uarch.core import CoreResult
from repro.uarch.counters import CounterSet, counters_from
from repro.uarch.uop import MicroOp, OpKind


class TestMicroOp:
    def test_memory_classification(self):
        assert MicroOp(OpKind.LOAD, 0, 64).is_memory()
        assert MicroOp(OpKind.STORE, 0, 64).is_memory()
        assert not MicroOp(OpKind.ALU, 0).is_memory()
        assert not MicroOp(OpKind.BRANCH, 0).is_memory()

    def test_defaults(self):
        uop = MicroOp(OpKind.ALU, 0x400000)
        assert uop.deps == ()
        assert not uop.is_os
        assert uop.tid == 0

    def test_repr_is_readable(self):
        uop = MicroOp(OpKind.LOAD, 0x400000, 0x1000, (3,), 7, is_os=True)
        text = repr(uop)
        assert "LOAD" in text and "os" in text

    def test_slots_prevent_arbitrary_attributes(self):
        uop = MicroOp(OpKind.ALU, 0)
        with pytest.raises(AttributeError):
            uop.color = "red"


class TestCounterSet:
    def test_mapping_interface(self):
        counters = CounterSet()
        counters["cycles"] = 100.0
        assert counters["cycles"] == 100.0
        assert "cycles" in counters
        assert counters.get("nothing", 7.0) == 7.0

    def test_derived_metrics(self):
        counters = CounterSet({
            "cycles": 200.0, "instructions": 100.0, "os_instructions": 20.0,
            "committing_cycles": 50.0, "memory_cycles": 120.0, "mlp": 1.7,
            "l1i_misses": 5.0,
        })
        assert counters.ipc == pytest.approx(0.5)
        assert counters.app_ipc == pytest.approx(0.4)
        assert counters.mlp == pytest.approx(1.7)
        assert counters.committing_fraction == pytest.approx(0.25)
        assert counters.memory_cycles_fraction == pytest.approx(0.6)
        assert counters.mpki("l1i_misses") == pytest.approx(50.0)

    def test_zero_guards(self):
        empty = CounterSet()
        assert empty.ipc == 0.0
        assert empty.app_ipc == 0.0
        assert empty.mpki("anything") == 0.0
        assert empty.committing_fraction == 0.0

    def test_merge_sum(self):
        a = CounterSet({"cycles": 10.0, "instructions": 5.0})
        b = CounterSet({"cycles": 20.0, "loads": 3.0})
        a.merge_sum(b)
        assert a["cycles"] == 30.0
        assert a["instructions"] == 5.0
        assert a["loads"] == 3.0

    def test_as_dict_copies(self):
        counters = CounterSet({"cycles": 1.0})
        copied = counters.as_dict()
        copied["cycles"] = 99.0
        assert counters["cycles"] == 1.0

    def test_core_result_round_trip(self):
        result = CoreResult(cycles=100, instructions=60, mlp=2.5,
                            l1i_misses=7, offchip_bytes=640)
        counters = counters_from(result)
        assert counters.cycles == 100.0
        assert counters.ipc == pytest.approx(0.6)
        assert counters["l1i_misses"] == 7.0
        assert counters["offchip_bytes"] == 640.0

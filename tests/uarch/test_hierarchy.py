"""Memory hierarchy: miss paths, fills, prefetch wiring, DRAM queue."""

import pytest

from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams, PrefetcherParams


def make_hierarchy(prefetch=None) -> MemoryHierarchy:
    params = MachineParams()
    if prefetch is not None:
        params = params.with_prefetchers(prefetch)
    return MemoryHierarchy(params)


NO_PF = PrefetcherParams(False, False, False, False)


class TestMissPath:
    def test_cold_access_goes_to_memory(self):
        h = make_hierarchy(NO_PF)
        res = h.access(0x100000)
        assert res.level == "mem"
        assert res.off_core and res.off_chip
        # Latency covers L1 + L2 + LLC + memory (+ TLB walk).
        assert res.latency >= 4 + 6 + 29 + 200

    def test_second_access_hits_l1(self):
        h = make_hierarchy(NO_PF)
        h.access(0x100000)
        res = h.access(0x100000)
        assert res.level == "l1"
        assert res.latency == 4
        assert not res.off_core and not res.off_chip

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy(NO_PF)
        h.access(0x100000)
        # Evict from the 32KB 8-way L1-D by filling its set.
        conflict_stride = h.l1d.num_sets * 64
        for i in range(1, 9):
            h.access(0x100000 + i * conflict_stride)
        res = h.access(0x100000)
        assert res.level == "l2"
        assert res.latency == 4 + 6

    def test_fill_propagates_to_all_levels(self):
        h = make_hierarchy(NO_PF)
        h.access(0x40)
        assert h.l1d.contains(0x40)
        assert h.l2.contains(0x40)
        assert h.llc.contains(0x40)

    def test_instruction_accesses_use_l1i(self):
        h = make_hierarchy(NO_PF)
        h.access(0x400000, is_instr=True)
        assert h.l1i.contains(0x400000)
        assert not h.l1d.contains(0x400000)

    def test_off_chip_traffic_counts_bytes(self):
        h = make_hierarchy(NO_PF)
        for i in range(10):
            h.access(i * 64)
        assert h.dram.stats.read_bytes == 10 * 64

    def test_os_bytes_attributed(self):
        h = make_hierarchy(NO_PF)
        h.access(0, is_os=True)
        h.access(1 << 20, is_os=False)
        assert h.dram.stats.os_read_bytes == 64
        assert h.dram.stats.read_bytes == 128


class TestWritebacks:
    def test_dirty_llc_eviction_writes_to_memory(self):
        params = MachineParams().with_prefetchers(NO_PF).with_llc_mb(4)
        h = MemoryHierarchy(params)
        h.access(0x0, is_write=True)
        written_before = h.dram.stats.write_bytes
        # Flood the LLC to force the dirty line out.
        lines = params.llc.size_bytes // 64 + params.llc.assoc * params.llc.num_sets
        for i in range(1, lines):
            h.access(i * 64)
        assert h.dram.stats.write_bytes > written_before


class TestPrefetchWiring:
    def test_stream_prefetch_fills_l2(self):
        h = make_hierarchy(PrefetcherParams(False, False, True, False))
        for i in range(3):
            h.access(0x100000 + i * 64)
        assert h.l2.stats.prefetch_issued > 0

    def test_prefetch_consumes_bandwidth(self):
        h = make_hierarchy(PrefetcherParams(False, True, False, False))
        h.access(0x100000)  # miss -> buddy prefetched from memory
        assert h.dram.stats.read_bytes == 2 * 64

    def test_late_prefetch_charges_residual_latency(self):
        h = make_hierarchy(PrefetcherParams(False, True, False, False))
        h.access(0x100000)  # buddy 0x100040 prefetched (late)
        res = h.access(0x100040)
        assert res.level == "l2"
        assert res.latency > 4 + 6  # residual memory latency included

    def test_disabled_prefetchers_produce_no_prefetch_fills(self):
        h = make_hierarchy(NO_PF)
        for i in range(64):
            h.access(0x100000 + i * 64)
        assert h.l2.stats.prefetch_issued == 0
        assert h.l1d.stats.prefetch_issued == 0

    def test_dcu_covers_stream_after_first_misses(self):
        h = make_hierarchy(PrefetcherParams(False, False, True, True))
        levels = [h.access(0x200000 + i * 64).level for i in range(32)]
        assert "l1" in levels[2:]  # DCU turned later lines into L1 hits


class TestDramQueue:
    def test_untimed_accesses_skip_the_queue(self):
        h = make_hierarchy(NO_PF)
        res1 = h.access(0 * 64)
        res2 = h.access(1 * 64)
        assert res1.latency == res2.latency + 30 or res1.latency >= res2.latency
        # (first access pays the TLB walk; neither pays queueing delay)

    def test_back_to_back_timed_misses_queue(self):
        h = make_hierarchy(NO_PF)
        first = h.access(0 * 64, now=0)
        second = h.access(1024 * 64, now=0)  # same instant, second transfer
        assert second.latency - second.latency % 1 >= h.dram_interval or \
            second.latency > first.latency - 30

    def test_queue_drains_over_time(self):
        h = make_hierarchy(NO_PF)
        h.access(0, now=0)
        h.access(1 << 20, now=0)
        late = h.access(2 << 20, now=10_000)  # long after: no queueing
        assert late.latency <= 4 + 6 + 29 + 200 + 30

    def test_interval_matches_per_core_share(self):
        h = make_hierarchy(NO_PF)
        # 64B / (32GB/s / 4 cores) * 2.93GHz ≈ 23 cycles
        assert 20 <= h.dram_interval <= 25


class TestCoherenceHooks:
    def test_invalidate_private_drops_all_levels(self):
        h = make_hierarchy(NO_PF)
        h.access(0x40)
        h.invalidate_private(0x40)
        assert not h.l1d.contains(0x40)
        assert not h.l2.contains(0x40)
        assert h.llc.contains(0x40)  # LLC keeps the (shared) copy

    def test_store_records_writer(self):
        h = make_hierarchy(NO_PF)
        h.access(0x80, is_write=True)
        assert h.directory._writer.get(0x80 >> 6) == 0


class TestStallAccumulators:
    def test_l2_instruction_hits_accumulate_stalls(self):
        h = make_hierarchy(NO_PF)
        h.access(0x400000, is_instr=True)
        conflict = h.l1i.num_sets * 64
        for i in range(1, 5):
            h.access(0x400000 + i * conflict, is_instr=True)
        before = h.l2_instr_hit_stalls
        h.access(0x400000, is_instr=True)  # L1-I miss, L2 hit
        assert h.l2_instr_hit_stalls == before + h.l2.latency

    def test_tlb_walks_accumulate(self):
        h = make_hierarchy(NO_PF)
        for page in range(600):  # overflow the 512-entry STLB
            h.access(page * 4096)
        assert h.stlb_miss_stalls > 0

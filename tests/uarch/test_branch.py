"""Branch predictor: bias learning, BTB behaviour, penalty separation."""

import random

from repro.uarch.branch import BranchPredictor


class TestDirectionPrediction:
    def test_learns_always_taken(self):
        bp = BranchPredictor()
        miss = sum(
            bp.predict_and_update(0x1000, True, 0x2000)[0] for _ in range(100)
        )
        assert miss <= 2  # at most the cold start

    def test_learns_always_not_taken(self):
        bp = BranchPredictor()
        miss = sum(
            bp.predict_and_update(0x1000, False, 0)[0] for _ in range(100)
        )
        assert miss <= 2

    def test_learns_strong_bias(self):
        bp = BranchPredictor()
        rng = random.Random(1)
        outcomes = [rng.random() < 0.9 for _ in range(2000)]
        miss = sum(
            bp.predict_and_update(0x40, taken, 0x800)[0] for taken in outcomes
        )
        # ~10% of executions take the cold direction; the predictor should
        # track the bias, not alternate.
        assert miss / len(outcomes) < 0.25

    def test_alternating_pattern_is_hard_for_bimodal(self):
        bp = BranchPredictor()
        miss = sum(
            bp.predict_and_update(0x40, bool(i % 2), 0x800)[0]
            for i in range(200)
        )
        assert miss > 50  # a bimodal counter cannot learn strict alternation

    def test_distinct_sites_do_not_interfere_when_spaced(self):
        bp = BranchPredictor()
        for _ in range(50):
            assert not bp.predict_and_update(0x1000, True, 0x40)[0] or True
            bp.predict_and_update(0x8000, False, 0)
        m1, _ = bp.predict_and_update(0x1000, True, 0x40)
        m2, _ = bp.predict_and_update(0x8000, False, 0)
        assert not m1 and not m2


class TestBtb:
    def test_first_taken_branch_misses_btb(self):
        bp = BranchPredictor()
        # Train direction first so the BTB check is reached.
        for _ in range(4):
            bp.predict_and_update(0x1000, True, 0x2000)
        mis, btb = bp.predict_and_update(0x1000, True, 0x2000)
        assert not mis and not btb  # now fully predicted

    def test_changing_target_misses_btb(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict_and_update(0x1000, True, 0x2000)
        mis, btb = bp.predict_and_update(0x1000, True, 0x3000)
        assert not mis
        assert btb

    def test_not_taken_never_checks_btb(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict_and_update(0x1000, False, 0)
        mis, btb = bp.predict_and_update(0x1000, False, 0)
        assert not mis and not btb

    def test_btb_capacity_conflicts(self):
        bp = BranchPredictor(btb_entries=2)
        # Two taken branches whose sites collide in a 2-entry BTB.
        pc_a, pc_b = 0x10, 0x10 + 2 * 16  # sites differ by table size
        for _ in range(8):
            bp.predict_and_update(pc_a, True, 0x100)
            bp.predict_and_update(pc_b, True, 0x200)
        assert bp.stats.btb_misses > 4


class TestStats:
    def test_branches_counted(self):
        bp = BranchPredictor()
        for i in range(10):
            bp.predict_and_update(i * 16, bool(i % 2), 64)
        assert bp.stats.branches == 10
        assert 0.0 <= bp.stats.mispredict_rate <= 1.0

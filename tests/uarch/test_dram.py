"""Memory channel byte accounting and the Figure 7 utilization metric."""

import pytest

from repro.uarch.dram import MemoryChannels


class TestAccounting:
    def test_reads_and_writes_accumulate(self):
        mem = MemoryChannels(3, 32e9)
        mem.read_line(is_os=False)
        mem.read_line(is_os=True)
        mem.write_line(is_os=False)
        assert mem.stats.read_bytes == 128
        assert mem.stats.write_bytes == 64
        assert mem.stats.total_bytes == 192

    def test_os_split(self):
        mem = MemoryChannels(3, 32e9)
        mem.read_line(is_os=True)
        mem.write_line(is_os=True)
        mem.read_line(is_os=False)
        assert mem.stats.os_bytes == 128
        assert mem.stats.app_bytes == 64


class TestUtilization:
    def test_zero_cycles_is_zero(self):
        mem = MemoryChannels(3, 32e9)
        assert mem.utilization(0, 2.93e9, 4) == 0.0

    def test_full_rate_is_100_percent(self):
        mem = MemoryChannels(3, 32e9)
        freq = 2.93e9
        seconds = 1e-3
        cycles = int(freq * seconds)
        per_core_share = 32e9 / 4
        lines = int(per_core_share * seconds / 64)
        for _ in range(lines):
            mem.read_line(is_os=False)
        assert mem.utilization(cycles, freq, 4) == pytest.approx(1.0, rel=0.01)

    def test_utilization_scales_with_active_cores(self):
        mem = MemoryChannels(3, 32e9)
        for _ in range(1000):
            mem.read_line(is_os=False)
        u4 = mem.utilization(10_000, 2.93e9, 4)
        u1 = mem.utilization(10_000, 2.93e9, 1)
        assert u4 == pytest.approx(4 * u1)

"""The in-order core model (§4.2 contrast case)."""

from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.inorder import InOrderCore
from repro.uarch.params import MachineParams, PrefetcherParams
from repro.uarch.uop import MicroOp, OpKind

NO_PF = PrefetcherParams(False, False, False, False)


def params():
    return MachineParams().with_prefetchers(NO_PF)


def alu_trace(n, chain=False):
    for seq in range(1, n + 1):
        deps = (seq - 1,) if (chain and seq > 1) else ()
        yield MicroOp(OpKind.ALU, 0x400000, 0, deps, seq)


def load_trace(n, stride=4096, chain=False, base=1 << 30):
    last = 0
    for seq in range(1, n + 1):
        deps = (last,) if (chain and last) else ()
        yield MicroOp(OpKind.LOAD, 0x400000, base + seq * stride, deps, seq)
        last = seq


class TestBasics:
    def test_all_instructions_counted(self):
        core = InOrderCore(params())
        res = core.run([alu_trace(500)])
        assert res.instructions == 500
        assert res.cycles > 0

    def test_width_two_bound(self):
        core = InOrderCore(params())
        res = core.run([alu_trace(2000)])
        ipc = res.instructions / res.cycles
        assert ipc <= 2.05

    def test_serial_chain_is_ipc_one(self):
        core = InOrderCore(params())
        res = core.run([alu_trace(2000, chain=True)])
        ipc = res.instructions / res.cycles
        assert 0.8 < ipc <= 1.05

    def test_cycle_classification_partitions(self):
        core = InOrderCore(params())
        res = core.run([alu_trace(300)])
        assert res.committing_cycles + res.stalled_cycles == res.cycles


class TestMemoryBehaviour:
    def test_dependent_loads_serialize(self):
        core = InOrderCore(params())
        res = core.run([load_trace(200, chain=True)])
        assert res.cycles / 200 > 150  # ~memory latency per load

    def test_scoreboard_allows_limited_overlap(self):
        core = InOrderCore(params())
        res = core.run([load_trace(200, chain=False)])
        assert 1.0 < res.mlp <= core.scoreboard_entries + 0.01


class TestContrastWithOoO:
    def test_ooo_beats_inorder_on_mixed_code(self):
        # Independent loads each feeding a burst of dependent ALU work:
        # the OoO window overlaps the misses; in-order issue stalls on
        # the first load-use every iteration.
        def workload():
            seq = 0
            for i in range(400):
                seq += 1
                load_seq = seq
                yield MicroOp(OpKind.LOAD, 0x400000, (1 << 30) + i * 4096,
                              (), seq)
                for _ in range(6):
                    seq += 1
                    yield MicroOp(OpKind.ALU, 0x400000, 0, (load_seq,), seq)

        p = params()
        inorder = InOrderCore(p, MemoryHierarchy(p)).run([workload()])
        ooo = Core(p, MemoryHierarchy(p)).run([workload()])
        assert (ooo.instructions / ooo.cycles) > \
            1.2 * (inorder.instructions / inorder.cycles)

"""Shared fixtures: small machine configurations and cached workload runs.

Workload measurements reuse the runner's process-level cache, so a
session's tests share runs with identical configurations instead of
re-simulating.
"""

from __future__ import annotations

import pytest

from repro.core.runner import RunConfig
from repro.uarch.params import MachineParams


TINY = RunConfig(window_uops=12_000, warm_uops=4_000)
SMALL = RunConfig(window_uops=30_000, warm_uops=10_000)


@pytest.fixture(scope="session")
def tiny_config() -> RunConfig:
    """A few thousand micro-ops: enough for smoke/shape-light checks."""
    return TINY


@pytest.fixture(scope="session")
def small_config() -> RunConfig:
    """The configuration used by the qualitative shape tests."""
    return SMALL


@pytest.fixture()
def params() -> MachineParams:
    return MachineParams()

"""Shared fixtures: small machine configurations and cached workload runs.

Workload measurements reuse the runner's process-level cache, so a
session's tests share runs with identical configurations instead of
re-simulating.
"""

from __future__ import annotations

import os

import pytest

from repro.core.runner import RunConfig
from repro.uarch.params import MachineParams


TINY = RunConfig(window_uops=12_000, warm_uops=4_000)
SMALL = RunConfig(window_uops=30_000, warm_uops=10_000)


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the result/trace stores at a throwaway root.

    ``run_workload`` persists captured traces through the trace store,
    so an unisolated suite would write into the user's real
    ``~/.cache/repro``.  Tests that need a root of their own still
    monkeypatch ``REPRO_CACHE_DIR`` per test; this only changes the
    default.
    """
    root = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield root
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def tiny_config() -> RunConfig:
    """A few thousand micro-ops: enough for smoke/shape-light checks."""
    return TINY


@pytest.fixture(scope="session")
def small_config() -> RunConfig:
    """The configuration used by the qualitative shape tests."""
    return SMALL


@pytest.fixture()
def params() -> MachineParams:
    return MachineParams()

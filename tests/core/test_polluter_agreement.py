"""The two Figure 4 methodologies agree (§3.1 polluters vs LLC resizing)."""

from dataclasses import replace

import pytest

from repro.core import analysis
from repro.core.polluter import polluter_array_bytes, warm_polluter
from repro.core.runner import RunConfig, run_workload
from repro.core.workloads import build_app
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy


def _resize_user_ipc(name: str, config: RunConfig, size_mb: int) -> float:
    params = config.params.with_llc_mb(size_mb)
    run = run_workload(name, replace(config, params=params))
    return analysis.application_ipc(run.result)


def _polluter_user_ipc(name: str, config: RunConfig, size_mb: int) -> float:
    app = build_app(name, seed=config.seed)
    hierarchy = MemoryHierarchy(config.params)
    array_bytes = polluter_array_bytes(config.params, size_mb)
    warm_polluter(hierarchy.llc, array_bytes)
    app.warm(hierarchy, trace_uops=config.warm_uops)
    warm_polluter(hierarchy.llc, array_bytes)  # polluters run continuously
    core = Core(config.params, hierarchy)
    result = core.run([app.trace(0, config.window_uops)])
    return analysis.application_ipc(result)


@pytest.mark.parametrize("size_mb", [4, 8])
def test_polluter_and_resize_methods_agree(size_mb):
    """User-IPC at an effective capacity should be (approximately) the
    same whether the capacity is taken away by polluter residency or by
    shrinking the cache — the cross-validation the paper could not do."""
    config = RunConfig(window_uops=30_000, warm_uops=10_000)
    name = "web-search"
    resized = _resize_user_ipc(name, config, size_mb)
    polluted = _polluter_user_ipc(name, config, size_mb)
    assert polluted == pytest.approx(resized, rel=0.25)


def test_polluter_degrades_monotonically():
    config = RunConfig(window_uops=24_000, warm_uops=8_000)
    generous = _polluter_user_ipc("web-search", config, 10)
    tight = _polluter_user_ipc("web-search", config, 4)
    assert tight <= generous * 1.05  # allow small noise, forbid inversions

"""Execution-time breakdown and derived metrics."""

import pytest

from repro.core import analysis
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.uarch.core import CoreResult


def result(**kw) -> CoreResult:
    base = dict(
        cycles=1000, instructions=500, os_instructions=100,
        committing_cycles=300, committing_cycles_os=60,
        stalled_cycles=700, stalled_cycles_os=140,
        memory_cycles=600, mlp=2.0,
        l1i_misses=50, l1i_misses_os=10, l2i_misses=20, l2i_misses_os=5,
        l2_demand_hits=80, l2_demand_accesses=100,
        llc_data_refs=40, remote_dirty_hits=4, remote_dirty_hits_os=1,
        offchip_bytes=64_000, offchip_bytes_os=16_000,
        branches=100, branch_mispredicts=10,
    )
    base.update(kw)
    return CoreResult(**base)


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        b = compute_breakdown(result())
        assert b.stalled + b.committing == pytest.approx(1.0)
        b.validate()

    def test_component_values(self):
        b = compute_breakdown(result())
        assert b.stalled_os == pytest.approx(0.14)
        assert b.stalled_app == pytest.approx(0.56)
        assert b.committing_os == pytest.approx(0.06)
        assert b.committing_app == pytest.approx(0.24)
        assert b.memory == pytest.approx(0.6)

    def test_memory_capped_at_one(self):
        b = compute_breakdown(result(memory_cycles=5000))
        assert b.memory == 1.0

    def test_zero_cycles(self):
        b = compute_breakdown(CoreResult())
        assert b.stalled == b.committing == b.memory == 0.0

    def test_validate_rejects_bad_breakdown(self):
        bad = ExecutionBreakdown(0.5, 0.1, 0.1, 0.1, 0.5)
        with pytest.raises(ValueError):
            bad.validate()


class TestAnalysis:
    def test_ipc(self):
        assert analysis.ipc(result()) == pytest.approx(0.5)

    def test_application_ipc_excludes_os(self):
        assert analysis.application_ipc(result()) == pytest.approx(0.4)

    def test_instruction_mpki(self):
        r = result()
        assert analysis.instruction_mpki(r) == pytest.approx(100.0)
        assert analysis.instruction_mpki(r, os_only=True) == pytest.approx(20.0)
        assert analysis.instruction_mpki(r, "l2") == pytest.approx(40.0)

    def test_mpki_unknown_level(self):
        with pytest.raises(ValueError):
            analysis.instruction_mpki(result(), "l4")

    def test_l2_hit_ratio(self):
        assert analysis.l2_hit_ratio(result()) == pytest.approx(0.8)
        assert analysis.l2_hit_ratio(CoreResult()) == 0.0

    def test_remote_dirty_fraction(self):
        r = result()
        assert analysis.remote_dirty_fraction(r) == pytest.approx(0.1)
        assert analysis.remote_dirty_fraction(r, os_only=True) == pytest.approx(0.025)

    def test_bandwidth_utilization(self):
        r = result()
        # 64 kB over 1000 cycles at 2.93 GHz vs a 8 GB/s per-core share.
        util = analysis.bandwidth_utilization(r, 2.93e9, 32e9, 4)
        expected = (64_000 / (1000 / 2.93e9)) / 8e9
        assert util == pytest.approx(expected)

    def test_branch_mispredict_rate(self):
        assert analysis.branch_mispredict_rate(result()) == pytest.approx(0.1)

    def test_os_instruction_fraction(self):
        assert analysis.os_instruction_fraction(result()) == pytest.approx(0.2)

    def test_zero_guards(self):
        empty = CoreResult()
        assert analysis.ipc(empty) == 0.0
        assert analysis.application_ipc(empty) == 0.0
        assert analysis.branch_mispredict_rate(empty) == 0.0
        assert analysis.os_instruction_fraction(empty) == 0.0
        assert analysis.bandwidth_utilization(empty, 1e9, 1e9) == 0.0

"""The CLI entry point and experiment-module smoke tests."""

import pytest

from repro.__main__ import _parse_config, main
from repro.core.experiments import ALL_EXPERIMENTS, ablations, table1
from repro.core.runner import RunConfig


class TestCliParsing:
    def test_defaults(self):
        args, config, options = _parse_config(["figure1"])
        assert args == ["figure1"]
        assert config.window_uops == 80_000
        assert config.warm_uops == 80_000 // 3
        assert not options.bars
        assert not options.fresh
        assert options.jobs == 1
        assert not options.no_cache

    def test_window_and_warm_flags(self):
        args, config, options = _parse_config(
            ["run", "tpc-c", "--window", "5000",
             "--warm", "1000", "--bars"])
        assert args == ["run", "tpc-c"]
        assert config.window_uops == 5000
        assert config.warm_uops == 1000
        assert options.bars
        assert not options.fresh

    def test_seed_and_fresh_flags(self):
        args, config, options = _parse_config(
            ["faults", "--seed", "11", "--fresh"])
        assert args == ["faults"]
        assert config.seed == 11
        assert options.fresh

    def test_jobs_and_no_cache_flags(self):
        args, _config, options = _parse_config(
            ["figure4", "--jobs", "4", "--no-cache"])
        assert args == ["figure4"]
        assert options.jobs == 4
        assert options.no_cache

    def test_help_flags_pass_through(self):
        args, _, _ = _parse_config(["-h"])
        assert args == ["-h"]

    def test_supervision_flags(self):
        args, _config, options = _parse_config(
            ["figure4", "--timeout", "2.5", "--retries", "0", "--resume"])
        assert args == ["figure4"]
        assert options.timeout == 2.5
        assert options.retries == 0
        assert options.resume

    def test_supervision_defaults(self):
        _args, _config, options = _parse_config(["figure4"])
        assert options.timeout is None
        assert options.retries == 2
        assert not options.resume
        assert not options.check

    @pytest.mark.parametrize("argv", [
        ["figure1", "--window"],            # missing value
        ["figure1", "--window", "abc"],     # non-integer value
        ["figure1", "--warm"],
        ["figure1", "--warm", "2.5"],
        ["figure1", "--seed", "x"],
        ["figure4", "--jobs"],
        ["figure4", "--jobs", "two"],
        ["figure4", "--jobs", "0"],         # must be >= 1
        ["figure4", "--timeout"],           # missing value
        ["figure4", "--timeout", "soon"],   # non-numeric value
        ["figure4", "--timeout", "0"],      # must be positive
        ["figure4", "--timeout", "-3"],
        ["figure4", "--retries", "-1"],     # must be >= 0
        ["figure4", "--retries", "1.5"],
        ["--bogus"],                        # unknown flag
        ["-x", "figure1"],
    ])
    def test_malformed_flags_exit_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse_config(argv)
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err


class TestCliCommands:
    def test_help(self, capsys):
        assert main(["help"]) == 0
        assert "figure1" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "data-serving" in out
        assert "tpc-e" in out

    def test_unknown_command(self, capsys):
        assert main(["figure99"]) == 2

    def test_run_requires_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_workload(self, capsys):
        assert main(["run", "sat-solver", "--window", "6000"]) == 0
        out = capsys.readouterr().out
        assert "IPC=" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Reorder buffer" in capsys.readouterr().out

    def test_faults_rejects_unknown_workload(self, capsys):
        assert main(["faults", "no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "no-such-workload"])
        assert exc.value.code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_trace_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "no-such-workload"])
        assert exc.value.code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_trace_rejects_non_integer_count(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "sat-solver", "abc"])
        assert exc.value.code == 2
        assert "trace count" in capsys.readouterr().err

    def test_trace_accepts_integer_count(self, capsys):
        assert main(["trace", "sat-solver", "5"]) == 0
        assert capsys.readouterr().out

    def test_cache_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_cache_rejects_unknown_action(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with pytest.raises(SystemExit) as exc:
            main(["cache", "prune"])
        assert exc.value.code == 2
        assert "unknown cache action" in capsys.readouterr().err

    def test_malformed_flag_exits_via_main(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["figure1", "--window", "many"])
        assert exc.value.code == 2


class TestDoctorCommand:
    @staticmethod
    def _seed_store(tmp_path, monkeypatch, poison=False):
        import json

        from repro.core.runner import run_workload
        from repro.core.store import ResultStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = ResultStore()
        run = run_workload("sat-solver",
                           RunConfig(window_uops=6_000, warm_uops=2_000))
        store.put("a" * 64, [run])
        if poison:
            path = store.path_for("a" * 64)
            document = json.loads(path.read_text())
            document["runs"][0]["result"]["llc_misses"] = -9
            path.write_text(json.dumps(document))
        return store

    def test_doctor_clean_store_exits_zero(self, tmp_path, monkeypatch,
                                           capsys):
        self._seed_store(tmp_path, monkeypatch)
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "healthy:   1" in out

    def test_doctor_quarantines_and_exits_one(self, tmp_path, monkeypatch,
                                              capsys):
        store = self._seed_store(tmp_path, monkeypatch, poison=True)
        assert main(["doctor"]) == 1
        out = capsys.readouterr().out
        assert "quarantined: 1" in out
        assert "negative" in out
        assert not store.path_for("a" * 64).exists()
        assert (store.corrupt_directory / f"{'a' * 64}.json").exists()

    def test_doctor_check_mode_leaves_the_store_alone(
            self, tmp_path, monkeypatch, capsys):
        store = self._seed_store(tmp_path, monkeypatch, poison=True)
        assert main(["doctor", "--check"]) == 1
        out = capsys.readouterr().out
        assert "defective: 1" in out
        assert store.path_for("a" * 64).exists()


class TestExperimentRegistry:
    def test_every_figure_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "figure1", "figure2", "figure3", "figure4",
            "figure5", "figure6", "figure7", "figure9",
        }

    def test_every_module_has_run(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert callable(module.run), name


class TestExperimentSmoke:
    """Cheap experiments run end-to-end at a tiny window."""

    def test_table1(self, tiny_config):
        table = table1.run(tiny_config)
        assert len(table.rows) == 10

    def test_figure2_rows_cover_the_suite(self, tiny_config):
        from repro.core.experiments import figure2

        table = figure2.run(tiny_config)
        assert len(table.rows) == 14
        for row in table.rows:
            assert float(row["L1-I (App)"]) >= 0.0
            assert float(row["L1-I (OS)"]) >= 0.0

    def test_figure7_rows_cover_the_suite(self, tiny_config):
        from repro.core.experiments import figure7

        table = figure7.run(tiny_config)
        assert len(table.rows) == 14
        for row in table.rows:
            assert 0.0 <= float(row["Application"]) + float(row["OS"]) <= 1.2


class TestAblationSmoke:
    def test_window_size_table_shape(self, tiny_config):
        table = ablations.window_size(
            tiny_config, rob_sizes=(32, 128), workloads=["sat-solver"]
        )
        row = table.rows[0]
        assert "ROB 32" in row and "ROB 128" in row

    def test_llc_latency_table_shape(self, tiny_config):
        table = ablations.llc_latency(tiny_config, workloads=["mapreduce"])
        assert float(table.rows[0]["Speedup"]) > 0.0


class TestCliTrace:
    def test_trace_command_prints_summary(self, capsys):
        assert main(["trace", "sat-solver", "100"]) == 0
        out = capsys.readouterr().out
        assert "# workload=sat-solver" in out
        assert "memory_fraction=" in out

    def test_trace_requires_workload(self, capsys):
        assert main(["trace"]) == 2

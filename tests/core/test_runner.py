"""Measurement runner: single, SMT, member, and chip runs."""

import pytest

from repro.core.runner import (
    RunConfig,
    clear_cache,
    metric_mean,
    metric_range,
    run_workload,
    run_workload_chip,
    run_workload_members,
    run_workload_smt,
)
from repro.core import analysis
from repro.core.workloads import ALL_WORKLOADS


class TestRunWorkload:
    def test_produces_counters(self, tiny_config):
        run = run_workload("mapreduce", tiny_config)
        assert run.result.instructions >= tiny_config.window_uops
        assert run.result.cycles > 0

    def test_cache_returns_same_object(self, tiny_config):
        a = run_workload("mapreduce", tiny_config)
        b = run_workload("mapreduce", tiny_config)
        assert a is b

    def test_cache_bypass(self, tiny_config):
        a = run_workload("mapreduce", tiny_config)
        b = run_workload("mapreduce", tiny_config, use_cache=False)
        assert a is not b

    def test_deterministic_given_seed(self, tiny_config):
        clear_cache()
        a = run_workload("web-search", tiny_config, use_cache=False)
        b = run_workload("web-search", tiny_config, use_cache=False)
        assert a.result.cycles == b.result.cycles
        assert a.result.instructions == b.result.instructions
        assert a.result.l1i_misses == b.result.l1i_misses

    def test_bandwidth_helpers(self, tiny_config):
        run = run_workload("mapreduce", tiny_config)
        assert 0.0 <= run.bandwidth_utilization() <= 1.5
        assert 0.0 <= run.os_bandwidth_fraction() <= 1.0


class TestSmtRuns:
    def test_two_threads_counted(self, tiny_config):
        run = run_workload_smt("sat-solver", tiny_config)
        assert len(run.result.per_thread_instructions) == 2
        assert all(n > 0 for n in run.result.per_thread_instructions)


class TestMemberRuns:
    def test_groups_expand_to_members(self, tiny_config):
        runs = run_workload_members("parsec-cpu", tiny_config)
        assert len(runs) == 2
        assert {r.name for r in runs} == {
            "parsec-cpu:blackscholes", "parsec-cpu:swaptions",
        }

    def test_non_groups_are_single_runs(self, tiny_config):
        runs = run_workload_members("tpc-e", tiny_config)
        assert len(runs) == 1

    def test_metric_helpers(self, tiny_config):
        runs = run_workload_members("parsec-cpu", tiny_config)
        mean = metric_mean(runs, analysis.ipc)
        lo, hi = metric_range(runs, analysis.ipc)
        assert lo <= mean <= hi


class TestChipRuns:
    def test_four_core_run(self, tiny_config):
        chip_run = run_workload_chip("media-streaming", tiny_config,
                                     num_cores=4, segments=2)
        assert len(chip_run.result.per_core) == 4
        assert all(r.instructions > 0 for r in chip_run.result.per_core)

    def test_single_process_per_core_workloads_use_asids(self, tiny_config):
        chip_run = run_workload_chip("sat-solver", tiny_config,
                                     num_cores=2, segments=2)
        summed = chip_run.summed
        # Independent processes: no remote-dirty hits at all.
        assert summed.remote_dirty_hits == 0


class TestConfig:
    def test_scaled(self):
        config = RunConfig(window_uops=100_000, warm_uops=40_000)
        half = config.scaled(0.5)
        assert half.window_uops == 50_000
        assert half.warm_uops == 20_000

    def test_scaled_floors(self):
        tiny = RunConfig(window_uops=100, warm_uops=100).scaled(0.001)
        assert tiny.window_uops >= 2_000 or tiny.window_uops == 2_000

"""§4.3 footnote 3: user-IPC is proportional to application throughput.

The paper verifies that relationship for its workloads before using
user-IPC as the Figure 4 performance metric.  We verify it here too:
across LLC capacities, the change in requests completed per cycle
tracks the change in application (user) IPC.
"""

from dataclasses import replace

import pytest

from repro.core import analysis
from repro.core.runner import RunConfig
from repro.core.workloads import build_app
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy


def measure(name: str, llc_mb: int, config: RunConfig):
    params = config.params.with_llc_mb(llc_mb)
    app = build_app(name, seed=config.seed)
    hierarchy = MemoryHierarchy(params)
    app.warm(hierarchy, trace_uops=config.warm_uops)
    requests_before = app.requests_served
    core = Core(params, hierarchy)
    result = core.run([app.trace(0, config.window_uops)])
    requests = app.requests_served - requests_before
    return analysis.application_ipc(result), requests / result.cycles


@pytest.mark.parametrize("name", ["data-serving"])
def test_user_ipc_tracks_request_throughput(name):
    config = RunConfig(window_uops=40_000, warm_uops=14_000)
    ipc_big, tput_big = measure(name, 12, config)
    ipc_small, tput_small = measure(name, 4, config)
    assert tput_big > 0 and tput_small > 0
    ipc_ratio = ipc_small / ipc_big
    tput_ratio = tput_small / tput_big
    # Proportionality: the two ratios agree within measurement noise.
    assert ipc_ratio == pytest.approx(tput_ratio, rel=0.2)

"""The claims-as-code verification layer."""

import pytest

from repro.core.paper import CLAIMS, Claim, verify
from repro.core.report import ExperimentTable


class TestClaimRegistry:
    def test_every_figure_has_claims(self):
        figures = {claim.figure for claim in CLAIMS}
        assert figures == {f"figure{i}" for i in range(1, 8)}

    def test_documented_deviations_are_marked(self):
        partial = [claim for claim in CLAIMS if claim.expected == "partial"]
        texts = " ".join(claim.text for claim in partial)
        assert "SMT nearly doubles" in texts
        assert "improve when prefetching is disabled" in texts
        assert len(partial) == 2

    def test_claims_have_text_and_checks(self):
        for claim in CLAIMS:
            assert claim.text
            assert callable(claim.check)


class TestVerifyMechanics:
    def test_checks_run_against_synthetic_tables(self):
        """A claim's predicate sees exactly the tables dict."""
        seen = {}

        def probe(tables):
            seen.update(tables)
            return True

        claim = Claim("figure1", "probe", probe)
        table = ExperimentTable("t", ["Workload"])
        assert claim.check({"figure1": table})
        assert seen == {"figure1": table}

    def test_verify_subset_of_figures(self, small_config):
        report = verify(small_config, figures=["figure2"])
        assert all(row["Figure"] == "figure2" for row in report.rows)
        assert len(report.rows) == 2

    def test_verify_reports_ok_column(self, small_config):
        report = verify(small_config, figures=["figure1"])
        for row in report.rows:
            assert row["OK"] in ("yes", "NO")
            assert row["Verdict"] in ("holds", "deviates")
        # Figure 1's claims all hold at the small window too.
        assert all(row["OK"] == "yes" for row in report.rows)

"""Integration: every registered workload runs end-to-end with sane counters."""

import pytest

from repro.core import analysis
from repro.core.breakdown import compute_breakdown
from repro.core.runner import run_workload
from repro.core.workloads import ALL_WORKLOADS, MCF


@pytest.mark.parametrize(
    "name", [spec.name for spec in ALL_WORKLOADS] + [MCF.name]
)
def test_workload_runs_and_counters_are_sane(name, tiny_config):
    run = run_workload(name, tiny_config)
    r = run.result
    assert r.instructions >= tiny_config.window_uops
    assert r.cycles > r.instructions / 4  # IPC can never exceed the width
    # Cycle classification partitions execution.
    assert r.committing_cycles + r.stalled_cycles == r.cycles
    assert 0 <= r.memory_cycles <= r.cycles
    assert 0 <= r.os_instructions <= r.instructions
    # Derived metrics land in physical ranges.
    assert 0.0 < analysis.ipc(r) <= 4.0
    assert 0.0 <= analysis.mlp(r) <= 16.0
    assert 0.0 <= analysis.l2_hit_ratio(r) <= 1.0
    breakdown = compute_breakdown(r)
    breakdown.validate()
    # The hierarchy really moved data.
    assert r.loads > 0
    assert r.branches > 0


@pytest.mark.parametrize("name", [spec.name for spec in ALL_WORKLOADS])
def test_os_tagging_matches_workload_class(name, tiny_config):
    run = run_workload(name, tiny_config)
    r = run.result
    os_fraction = analysis.os_instruction_fraction(r)
    if name in ("parsec-cpu", "parsec-mem", "specint-cpu", "specint-mem"):
        assert os_fraction < 0.01
    elif name == "specweb09":
        assert os_fraction > 0.4
    elif name in ("sat-solver",):
        assert os_fraction < 0.05
    else:
        assert 0.0 < os_fraction < 0.6


@pytest.mark.parametrize("name", ["data-serving", "media-streaming",
                                  "tpc-c", "specweb09"])
def test_counter_cross_consistency(name, tiny_config):
    """Hierarchy counters respect containment: misses shrink level by
    level, and off-chip bytes cover at least the demand misses."""
    r = run_workload(name, tiny_config).result
    assert r.l2i_misses <= r.l1i_misses
    assert r.l1i_misses_os <= r.l1i_misses
    assert r.l2i_misses_os <= r.l2i_misses
    assert r.offchip_bytes >= r.llc_misses * 64
    assert r.offchip_bytes_os <= r.offchip_bytes
    assert r.remote_dirty_hits <= r.llc_data_refs
    assert r.superq_busy_cycles <= r.cycles
    assert r.branch_mispredicts <= r.branches

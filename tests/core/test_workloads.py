"""Workload registry."""

import pytest

from repro.core.workloads import (
    ALL_WORKLOADS,
    MCF,
    REGISTRY,
    SCALE_OUT,
    SERVER_GROUP,
    TRADITIONAL,
    build_app,
    workload_names,
)


class TestRegistry:
    def test_fourteen_suite_workloads(self):
        assert len(ALL_WORKLOADS) == 14
        assert len(SCALE_OUT) == 6
        assert len(TRADITIONAL) == 8

    def test_scale_out_matches_cloudsuite(self):
        names = {spec.name for spec in SCALE_OUT}
        assert names == {
            "data-serving", "mapreduce", "media-streaming",
            "sat-solver", "web-frontend", "web-search",
        }

    def test_traditional_matches_section_3_3(self):
        names = {spec.name for spec in TRADITIONAL}
        assert names == {
            "parsec-cpu", "parsec-mem", "specint-cpu", "specint-mem",
            "specweb09", "tpc-c", "tpc-e", "web-backend",
        }

    def test_groups(self):
        assert all(spec.group == "scale-out" for spec in SCALE_OUT)
        assert REGISTRY["tpc-c"].group == "oltp"
        assert REGISTRY["parsec-cpu"].group == "parallel"

    def test_server_group_for_figure4(self):
        assert set(SERVER_GROUP) == {"tpc-c", "tpc-e", "web-backend"}

    def test_mcf_registered_but_not_in_suite(self):
        assert MCF.name in REGISTRY
        assert MCF.name not in {spec.name for spec in ALL_WORKLOADS}

    def test_workload_names(self):
        assert len(workload_names()) == 14
        assert len(workload_names(include_mcf=True)) == 15

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            build_app("quake-server")

    def test_multithreaded_flags(self):
        assert REGISTRY["data-serving"].multithreaded
        assert not REGISTRY["sat-solver"].multithreaded
        assert not REGISTRY["parsec-cpu"].multithreaded

    @pytest.mark.parametrize("name", ["mapreduce", "specweb09"])
    def test_build_app_constructs(self, name):
        app = build_app(name, seed=1)
        assert app.name == name

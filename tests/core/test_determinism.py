"""Reproducibility: identical seeds produce identical measurements."""

import pytest

from repro.core.runner import RunConfig, run_workload
from repro.core.workloads import build_app


@pytest.mark.parametrize("name", ["data-serving", "web-frontend", "tpc-e"])
def test_counters_are_bit_identical_across_runs(name):
    config = RunConfig(window_uops=10_000, warm_uops=4_000, seed=11)
    first = run_workload(name, config, use_cache=False).result
    second = run_workload(name, config, use_cache=False).result
    for field in ("cycles", "instructions", "os_instructions",
                  "committing_cycles", "stalled_cycles", "memory_cycles",
                  "l1i_misses", "l2i_misses", "llc_misses", "loads",
                  "stores", "branches", "branch_mispredicts",
                  "offchip_bytes", "remote_dirty_hits"):
        assert getattr(first, field) == getattr(second, field), field
    assert first.mlp == second.mlp


@pytest.mark.parametrize("name", ["web-search"])
def test_different_seeds_differ(name):
    base = RunConfig(window_uops=10_000, warm_uops=4_000, seed=11)
    other = RunConfig(window_uops=10_000, warm_uops=4_000, seed=12)
    first = run_workload(name, base, use_cache=False).result
    second = run_workload(name, other, use_cache=False).result
    assert first.cycles != second.cycles


def test_traces_are_deterministic():
    first = [
        (u.kind, u.pc, u.addr, u.deps)
        for u in build_app("sat-solver", seed=5).trace(0, 5_000)
    ]
    second = [
        (u.kind, u.pc, u.addr, u.deps)
        for u in build_app("sat-solver", seed=5).trace(0, 5_000)
    ]
    assert first == second

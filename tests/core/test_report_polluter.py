"""Report tables and the cache-polluter methodology."""

import pytest

from repro.core.polluter import (
    polluted_params,
    polluter_array_bytes,
    polluter_trace,
    warm_polluter,
)
from repro.core.report import ExperimentTable
from repro.uarch.cache import Cache
from repro.uarch.params import MachineParams
from repro.uarch.uop import OpKind


class TestExperimentTable:
    def make(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(a="x", b=1.0)
        table.add_row(a="y", b=2.5)
        return table

    def test_rendering_includes_everything(self):
        text = self.make().to_text()
        assert "T" in text
        assert "x" in text and "2.500" in text

    def test_column_extraction(self):
        assert self.make().column("b") == [1.0, 2.5]

    def test_row_for(self):
        assert self.make().row_for("a", "y")["b"] == 2.5
        with pytest.raises(KeyError):
            self.make().row_for("a", "z")

    def test_notes_rendered(self):
        table = self.make()
        table.notes.append("hello")
        assert "note: hello" in table.to_text()


class TestPolluter:
    def test_trace_emits_requested_uops(self):
        trace = list(polluter_trace(1 << 20, 1000, seed=1))
        assert len(trace) == 1000

    def test_loads_cover_the_array_without_repeats_first(self):
        array = 64 * 100
        trace = [u for u in polluter_trace(array, 200, seed=1)
                 if u.kind == OpKind.LOAD]
        addresses = [u.addr for u in trace[:100]]
        assert len(set(addresses)) == len(addresses)

    def test_warm_polluter_fills_llc(self):
        params = MachineParams()
        llc = Cache("LLC", params.llc)
        warm_polluter(llc, 1 << 20)
        assert llc.resident_lines() == (1 << 20) // 64

    def test_polluted_params_resizes(self):
        params = polluted_params(MachineParams(), 6)
        assert params.llc.size_bytes == 6 << 20

    def test_array_bytes_complement(self):
        params = MachineParams()
        assert polluter_array_bytes(params, 4) == 8 << 20
        with pytest.raises(ValueError):
            polluter_array_bytes(params, 13)

    def test_polluter_achieves_high_llc_hit_ratio(self):
        """§3.1: 'the polluter threads achieve nearly 100% hit ratio in
        the LLC' — verify with the real hierarchy."""
        from repro.uarch.hierarchy import MemoryHierarchy
        from repro.uarch.params import PrefetcherParams

        params = MachineParams().with_prefetchers(
            PrefetcherParams(False, False, False, False)
        )
        hier = MemoryHierarchy(params)
        array = 4 << 20
        warm_polluter(hier.llc, array)
        hits = misses = 0
        for uop in polluter_trace(array, 6000, seed=2):
            if uop.kind != OpKind.LOAD:
                continue
            res = hier.access(uop.addr)
            if res.off_chip:
                misses += 1
            elif res.off_core:
                hits += 1
        assert hits / (hits + misses) > 0.95


class TestExports:
    def make(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(a="x", b=1.0)
        table.add_row(a="y", b=2.5)
        return table

    def test_csv_round_trips(self):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(self.make().to_csv())))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x", "1.0"]
        assert rows[2] == ["y", "2.5"]

    def test_markdown_contains_header_and_rows(self):
        table = self.make()
        table.notes.append("a note")
        md = table.to_markdown()
        assert "| a | b |" in md
        assert "| y | 2.500 |" in md
        assert "*a note*" in md


class TestAsciiBars:
    def make(self):
        table = ExperimentTable("Chart", ["Workload", "IPC"])
        table.add_row(Workload="alpha", IPC=0.5)
        table.add_row(Workload="beta", IPC=1.0)
        return table

    def test_bars_scale_to_the_maximum(self):
        chart = self.make().to_bars("Workload", ["IPC"], width=10)
        lines = chart.splitlines()
        alpha = next(l for l in lines if l.startswith("alpha"))
        beta = next(l for l in lines if l.startswith("beta"))
        assert beta.count("█") == 10
        assert alpha.count("█") == 5

    def test_auto_detects_numeric_columns(self):
        chart = self.make().to_bars("Workload", width=8)
        assert "0.500" in chart and "1.000" in chart

    def test_rejects_tables_without_numbers(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(a="x", b="y")
        with pytest.raises(ValueError):
            table.to_bars("a")

"""Figure-module helper functions over synthetic tables."""

import pytest

from repro.core.experiments import figure1, figure2, figure3, figure5, figure6, figure7
from repro.core.report import ExperimentTable


def table_with(columns, rows):
    table = ExperimentTable("t", ["Workload"] + columns)
    for name, values in rows.items():
        table.add_row(Workload=name, **values)
    return table


class TestFigure1Helpers:
    def test_stalled_fraction_sums_components(self):
        table = table_with(
            ["Stalled (OS)", "Stalled (App)"],
            {"X": {"Stalled (OS)": 0.1, "Stalled (App)": 0.6}},
        )
        assert figure1.stalled_fraction(table, "X") == pytest.approx(0.7)


class TestFigure2Helpers:
    def test_total_l1i_mpki(self):
        table = table_with(
            ["L1-I (App)", "L1-I (OS)"],
            {"X": {"L1-I (App)": 30.0, "L1-I (OS)": 12.0}},
        )
        assert figure2.total_l1i_mpki(table, "X") == pytest.approx(42.0)


class TestFigure3Helpers:
    def test_smt_ipc_gain(self):
        table = table_with(
            ["IPC", "IPC (SMT)"],
            {"X": {"IPC": 0.5, "IPC (SMT)": 0.8}},
        )
        assert figure3.smt_ipc_gain(table, "X") == pytest.approx(0.6)

    def test_smt_gain_zero_base(self):
        table = table_with(
            ["IPC", "IPC (SMT)"],
            {"X": {"IPC": 0.0, "IPC (SMT)": 0.8}},
        )
        assert figure3.smt_ipc_gain(table, "X") == 0.0


class TestFigure5Helpers:
    def test_prefetcher_benefit_positive_when_baseline_wins(self):
        table = table_with(
            ["Baseline (all enabled)", "Adjacent-line (disabled)",
             "HW prefetcher (disabled)"],
            {"X": {"Baseline (all enabled)": 0.7,
                   "Adjacent-line (disabled)": 0.5,
                   "HW prefetcher (disabled)": 0.6}},
        )
        assert figure5.prefetcher_benefit(table, "X") == pytest.approx(0.2)

    def test_prefetcher_benefit_negative_for_pollution(self):
        table = table_with(
            ["Baseline (all enabled)", "Adjacent-line (disabled)",
             "HW prefetcher (disabled)"],
            {"X": {"Baseline (all enabled)": 0.5,
                   "Adjacent-line (disabled)": 0.6,
                   "HW prefetcher (disabled)": 0.55}},
        )
        assert figure5.prefetcher_benefit(table, "X") == pytest.approx(-0.05)


class TestFigure6And7Helpers:
    def test_total_sharing(self):
        table = table_with(
            ["Application", "OS"],
            {"X": {"Application": 0.03, "OS": 0.02}},
        )
        assert figure6.total_sharing(table, "X") == pytest.approx(0.05)

    def test_total_utilization(self):
        table = table_with(
            ["Application", "OS"],
            {"X": {"Application": 0.1, "OS": 0.05}},
        )
        assert figure7.total_utilization(table, "X") == pytest.approx(0.15)

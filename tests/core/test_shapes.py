"""Qualitative shape tests: the paper's findings, §4.

These assert the *shape* of each result — who wins, by roughly what
factor, where crossovers fall — on reduced measurement windows.  The
benchmark harness reproduces the full tables; these tests guard the
claims against regressions.
"""

import pytest

from repro.core import analysis
from repro.core.breakdown import compute_breakdown
from repro.core.runner import (
    RunConfig,
    metric_mean,
    run_workload,
    run_workload_members,
    run_workload_smt,
)
from repro.core.workloads import SCALE_OUT

SCALE_OUT_NAMES = [spec.name for spec in SCALE_OUT]


def mean_metric(name, config, metric):
    return metric_mean(run_workload_members(name, config), metric)


class TestFigure1Shapes:
    """Scale-out workloads stall most cycles, predominantly on memory."""

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_stalls_dominate(self, name, small_config):
        run = run_workload(name, small_config)
        breakdown = compute_breakdown(run.result)
        assert breakdown.stalled > 0.5, name

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_stalls_are_memory_bound(self, name, small_config):
        run = run_workload(name, small_config)
        breakdown = compute_breakdown(run.result)
        # Web Frontend is the exception: its interpreter stalls the
        # frontend (dispatch) more than the data path.
        floor = 0.25 if name == "web-frontend" else 0.5
        assert breakdown.memory > floor * breakdown.stalled, name

    def test_cpu_intensive_benchmarks_stall_far_less_than_scale_out(
        self, small_config
    ):
        for group in ("parsec-cpu", "specint-cpu"):
            runs = run_workload_members(group, small_config)
            stalled = sum(
                compute_breakdown(r.result).stalled for r in runs
            ) / len(runs)
            scale_out = compute_breakdown(
                run_workload("data-serving", small_config).result
            ).stalled
            assert stalled < 0.65, group
            assert stalled < scale_out - 0.15, group

    def test_tpcc_is_the_most_stalled_server_workload(self, small_config):
        tpcc = compute_breakdown(run_workload("tpc-c", small_config).result)
        assert tpcc.stalled > 0.8  # "over 80% of the time stalled" (§4)


class TestFigure2Shapes:
    """Scale-out instruction working sets overwhelm the L1-I."""

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_l1i_mpki_is_order_of_magnitude_above_desktop(
        self, name, small_config
    ):
        scale_out = mean_metric(name, small_config, analysis.instruction_mpki)
        desktop = mean_metric("parsec-cpu", small_config,
                              analysis.instruction_mpki)
        assert scale_out > 10 * max(desktop, 0.2), name

    def test_desktop_and_parallel_have_tiny_instruction_working_sets(
        self, small_config
    ):
        for group in ("parsec-cpu", "parsec-mem", "specint-cpu", "specint-mem"):
            mpki = mean_metric(group, small_config, analysis.instruction_mpki)
            assert mpki < 3.0, group

    def test_traditional_server_resembles_scale_out(self, small_config):
        tpcc = mean_metric("tpc-c", small_config, analysis.instruction_mpki)
        assert tpcc > 20.0

    def test_scale_out_os_instruction_misses_below_traditional_server(
        self, small_config
    ):
        """§4.1: the OS instruction working set of scale-out workloads is
        smaller than traditional server workloads'."""
        os_mpki = lambda r: analysis.instruction_mpki(r, os_only=True)
        scale_out = max(
            mean_metric(n, small_config, os_mpki)
            for n in ("data-serving", "media-streaming", "web-search")
        )
        specweb = mean_metric("specweb09", small_config, os_mpki)
        assert specweb > scale_out * 0.9

    @pytest.mark.parametrize("name", ["data-serving", "media-streaming",
                                      "web-search", "tpc-c"])
    def test_l2_instruction_misses_significant(self, name, small_config):
        l2_mpki = mean_metric(
            name, small_config, lambda r: analysis.instruction_mpki(r, "l2")
        )
        assert l2_mpki > 3.0, name


class TestFigure3Shapes:
    """Low IPC/MLP for scale-out; SMT helps substantially."""

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_ipc_modest(self, name, small_config):
        ipc = mean_metric(name, small_config, analysis.ipc)
        assert 0.15 < ipc < 1.3, name

    def test_cpu_intensive_ipc_well_above_scale_out(self, small_config):
        desktop = mean_metric("parsec-cpu", small_config, analysis.ipc)
        scale_out = max(
            mean_metric(n, small_config, analysis.ipc) for n in SCALE_OUT_NAMES
        )
        assert desktop > 1.3
        assert desktop > scale_out

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_mlp_is_low(self, name, small_config):
        mlp = mean_metric(name, small_config, analysis.mlp)
        assert mlp < 4.0, name

    def test_web_frontend_has_the_lowest_scale_out_mlp(self, small_config):
        mlps = {
            name: mean_metric(name, small_config, analysis.mlp)
            for name in SCALE_OUT_NAMES
        }
        assert min(mlps, key=mlps.get) == "web-frontend"

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_smt_improves_scale_out_ipc_substantially(self, name, small_config):
        base = run_workload(name, small_config)
        smt = run_workload_smt(name, small_config)
        gain = analysis.ipc(smt.result) / analysis.ipc(base.result) - 1.0
        assert gain > 0.3, name  # the paper reports 39-69%

    @pytest.mark.parametrize("name", ["media-streaming", "mapreduce"])
    def test_smt_raises_mlp(self, name, small_config):
        base = run_workload(name, small_config)
        smt = run_workload_smt(name, small_config)
        assert smt.result.mlp > 1.2 * base.result.mlp, name

    def test_smt_raises_mlp_for_data_serving(self, small_config):
        base = run_workload("data-serving", small_config)
        smt = run_workload_smt("data-serving", small_config)
        assert smt.result.mlp > 1.05 * base.result.mlp


class TestFigure4Shapes:
    """LLC capacity: scale-out flat above 4-6 MB; mcf keeps scaling."""

    def test_mcf_scales_with_llc_while_scale_out_saturates(self):
        from dataclasses import replace

        config = RunConfig(window_uops=30_000, warm_uops=10_000)

        def user_ipc(name, llc_mb):
            params = config.params.with_llc_mb(llc_mb)
            run = run_workload(name, replace(config, params=params))
            return analysis.application_ipc(run.result)

        mcf_gain = user_ipc("specint-mcf", 11) / user_ipc("specint-mcf", 4)
        search_gain = user_ipc("web-search", 11) / user_ipc("web-search", 6)
        assert mcf_gain > 1.1
        assert search_gain < mcf_gain
        assert search_gain < 1.25


class TestFigure7Shapes:
    """Off-chip bandwidth is over-provisioned for scale-out workloads."""

    @pytest.mark.parametrize("name", SCALE_OUT_NAMES)
    def test_scale_out_uses_a_fraction_of_bandwidth(self, name, small_config):
        runs = run_workload_members(name, small_config)
        util = sum(r.bandwidth_utilization() for r in runs) / len(runs)
        assert util < 0.30, name

    def test_media_streaming_is_the_scale_out_maximum(self, small_config):
        config = small_config.scaled(2)  # its streams need a longer window
        utils = {}
        for name in SCALE_OUT_NAMES:
            runs = run_workload_members(name, config)
            utils[name] = sum(r.bandwidth_utilization() for r in runs) / len(runs)
        assert max(utils, key=utils.get) == "media-streaming"

"""The result-validation layer: physical invariants, loud failures."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.runner import RunConfig, run_workload
from repro.core.validate import (
    ValidationError,
    check_result,
    validate_result,
    validate_runs,
)
from repro.uarch.params import MachineParams

WEE = RunConfig(window_uops=6_000, warm_uops=2_000)


@pytest.fixture(scope="module")
def healthy():
    return run_workload("sat-solver", WEE)


class TestHealthyResults:
    def test_real_run_has_no_violations(self, healthy):
        assert check_result(healthy.result, healthy.config.params) == []

    def test_validate_result_passes_silently(self, healthy):
        validate_result(healthy.result, healthy.config.params)

    def test_validate_runs_passes_a_run_list(self, healthy):
        validate_runs([healthy, healthy])


class TestViolations:
    """Each mutation must be caught and named in the diagnostic."""

    @pytest.mark.parametrize("mutation,needle", [
        (dict(cycles=0), "cycles"),
        (dict(instructions=0), "instructions"),
        (dict(llc_misses=-4), "negative"),
        (dict(mlp=float("nan")), "NaN"),
        (dict(branches=0), "branch_mispredicts"),
        (dict(memory_cycles=10 ** 12), "memory_cycles"),
        (dict(os_instructions=10 ** 12), "os_instructions"),
        (dict(offchip_bytes_os=10 ** 15), "offchip_bytes_os"),
        (dict(l2_demand_hits=10 ** 12), "l2_demand_hits"),
        (dict(l2i_misses=10 ** 12), "l2i_misses"),
        (dict(loads=10 ** 12), "loads"),
        (dict(per_thread_instructions=[100, -1]), "per_thread"),
    ])
    def test_mutation_is_caught(self, healthy, mutation, needle):
        broken = dataclasses.replace(healthy.result, **mutation)
        violations = check_result(broken, healthy.config.params)
        assert violations, mutation
        assert any(needle in v for v in violations), violations

    def test_partition_must_be_exact(self, healthy):
        broken = dataclasses.replace(
            healthy.result, committing_cycles=healthy.result.cycles,
            stalled_cycles=healthy.result.cycles)
        violations = check_result(broken)
        assert any("committing + stalled" in v for v in violations)

    def test_ipc_bounded_by_issue_width(self, healthy):
        r = healthy.result
        broken = dataclasses.replace(
            r, instructions=r.cycles * healthy.config.params.width + 1,
            loads=0, stores=0, os_instructions=0)
        violations = check_result(broken, healthy.config.params)
        assert any("issue-width" in v for v in violations)

    def test_mlp_bounded_by_superqueue(self, healthy):
        broken = dataclasses.replace(
            healthy.result,
            mlp=float(healthy.config.params.mshr_entries + 1))
        violations = check_result(broken, healthy.config.params)
        assert any("super-queue" in v for v in violations)

    def test_machine_bounds_need_params(self, healthy):
        broken = dataclasses.replace(
            healthy.result,
            mlp=float(healthy.config.params.mshr_entries + 1))
        assert check_result(broken) == []  # no params, no width/MLP bound

    def test_smt_widens_the_ipc_bound(self):
        params = MachineParams().with_smt(2)
        run = run_workload("sat-solver", WEE)
        near_double = dataclasses.replace(
            run.result,
            instructions=run.result.cycles * params.width * 2,
            loads=0, stores=0, os_instructions=0,
            branch_mispredicts=0, branches=0,
            l1i_misses=run.result.l1i_misses)
        violations = [v for v in check_result(near_double, params)
                      if "issue-width" in v]
        assert violations == []


class TestValidationError:
    def test_carries_context_and_violations(self, healthy):
        broken = dataclasses.replace(healthy.result, cycles=0,
                                     committing_cycles=0, stalled_cycles=0)
        with pytest.raises(ValidationError) as exc:
            validate_result(broken, context="cell single:sat-solver")
        assert "cell single:sat-solver" in str(exc.value)
        assert exc.value.violations
        assert exc.value.context == "cell single:sat-solver"

    def test_validate_runs_names_the_offending_run(self, healthy):
        broken = dataclasses.replace(healthy, result=dataclasses.replace(
            healthy.result, llc_misses=-1))
        with pytest.raises(ValidationError) as exc:
            validate_runs([healthy, broken], context="sweep")
        assert "sat-solver" in str(exc.value)

    def test_is_a_value_error(self):
        assert issubclass(ValidationError, ValueError)

"""The sweep supervisor: crash isolation, deadlines, retries, resume.

The misbehaving workers are driven by *flag files*: a worker that finds
its flag removes it first and then misbehaves, so the first attempt
fails deterministically and every retry succeeds — which is exactly the
transient-fault shape (OOM kill, preemption, wedged I/O) the supervisor
exists to absorb.  Flags live in a tmpdir advertised through
``REPRO_SUPERVISOR_TEST_DIR`` (inherited by pool workers).
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import time

import pytest

from repro.core import sweep as sweep_mod
from repro.core.runner import RunConfig
from repro.core.store import ResultStore
from repro.core.supervise import (
    SweepCellError,
    SweepCheckpoint,
    sweep_digest,
)
from repro.core.sweep import Cell, SweepEngine, _cell_worker
from repro.faults.retry import RetryPolicy

WEE = RunConfig(window_uops=6_000, warm_uops=2_000)
NAMES = ("sat-solver", "mapreduce", "web-search")

#: Fast backoff so retry tests stay quick; no deadline unless asked.
FAST = RetryPolicy.for_harness(retries=2, base_delay=0.05, cap_delay=0.2)


def _flag_dir() -> pathlib.Path:
    return pathlib.Path(os.environ["REPRO_SUPERVISOR_TEST_DIR"])


def _consume_flag(name: str) -> bool:
    """True (once) if the flag exists; removing it arms the retry."""
    flag = _flag_dir() / name
    if flag.exists():
        flag.unlink()
        return True
    return False


def _killed_once_worker(task):
    cell, _use_cache = task
    if _consume_flag(f"kill-{cell.name}"):
        os.kill(os.getpid(), signal.SIGKILL)
    return _cell_worker(task)


def _raises_once_worker(task):
    cell, _use_cache = task
    if _consume_flag(f"raise-{cell.name}"):
        raise RuntimeError("injected transient failure")
    return _cell_worker(task)


def _hangs_once_worker(task):
    cell, _use_cache = task
    if _consume_flag(f"hang-{cell.name}"):
        time.sleep(120)
    return _cell_worker(task)


def _always_raises_worker(task):
    cell, _use_cache = task
    if (_flag_dir() / f"doomed-{cell.name}").exists():  # never consumed
        raise RuntimeError("injected permanent failure")
    return _cell_worker(task)


def _recording_worker(task):
    cell, _use_cache = task
    (_flag_dir() / f"ran-{cell.name}").touch()
    return _cell_worker(task)


@pytest.fixture()
def flag_dir(tmp_path, monkeypatch) -> pathlib.Path:
    flags = tmp_path / "flags"
    flags.mkdir()
    monkeypatch.setenv("REPRO_SUPERVISOR_TEST_DIR", str(flags))
    return flags


def _cells() -> list[Cell]:
    return [Cell("single", name, WEE) for name in NAMES]


@pytest.fixture(scope="module")
def serial_reference():
    """The ground truth: an unsupervised, uncached serial sweep."""
    return SweepEngine(jobs=1, use_cache=False).run(_cells())


def _assert_tables_identical(results, reference):
    assert len(results) == len(reference)
    for runs, expected_runs in zip(results, reference):
        assert len(runs) == len(expected_runs)
        for run, expected in zip(runs, expected_runs):
            assert run.result == expected.result
            assert run.config == expected.config
            assert run.name == expected.name


class TestCrashIsolation:
    def test_worker_exception_is_retried_to_a_full_table(
            self, flag_dir, serial_reference):
        (flag_dir / f"raise-{NAMES[0]}").touch()
        engine = SweepEngine(jobs=2, use_cache=False, retry=FAST,
                             worker=_raises_once_worker)
        _assert_tables_identical(engine.run(_cells()), serial_reference)
        assert not (flag_dir / f"raise-{NAMES[0]}").exists()

    def test_sigkilled_worker_only_costs_the_cells_in_flight(
            self, flag_dir, serial_reference):
        """The acceptance scenario: SIGKILL mid-cell, byte-identical
        table after the pool respawn and retry."""
        (flag_dir / f"kill-{NAMES[0]}").touch()
        engine = SweepEngine(jobs=2, use_cache=False, retry=FAST,
                             worker=_killed_once_worker)
        _assert_tables_identical(engine.run(_cells()), serial_reference)

    def test_cell_exceeding_its_deadline_is_killed_and_retried(
            self, flag_dir, serial_reference):
        (flag_dir / f"hang-{NAMES[0]}").touch()
        # The deadline clock starts at pool.submit, so it absorbs pool
        # fork time and CPU contention from sibling cells; on a 1-CPU
        # runner the three WEE cells alone cost ~1.5s of CPU.  Keep the
        # deadline far below the 120s hang but comfortably above that.
        policy = RetryPolicy.for_harness(timeout=5.0, retries=2,
                                         base_delay=0.05, cap_delay=0.2)
        engine = SweepEngine(jobs=2, use_cache=False, retry=policy,
                             worker=_hangs_once_worker)
        started = time.monotonic()
        _assert_tables_identical(engine.run(_cells()), serial_reference)
        # The hung worker must have been killed, not waited out.
        assert time.monotonic() - started < 60

    def test_exhausted_retries_surface_after_the_rest_completes(
            self, flag_dir, tmp_path):
        (flag_dir / f"doomed-{NAMES[0]}").touch()
        store = ResultStore(tmp_path / "store")
        engine = SweepEngine(jobs=2, use_cache=True, store=store,
                             retry=FAST, worker=_always_raises_worker,
                             checkpoint_dir=tmp_path / "ckpt")
        with pytest.raises(SweepCellError) as exc:
            engine.run(_cells())
        assert NAMES[0] in str(exc.value)
        assert "injected permanent failure" in str(exc.value)
        assert len(exc.value.failures) == 1
        # The healthy cell finished and was persisted before the raise.
        healthy_print = Cell("single", NAMES[1], WEE).fingerprint()
        assert store.get(healthy_print) is not None


class TestSerialSupervision:
    def test_transient_serial_failure_is_retried(self, monkeypatch,
                                                 serial_reference):
        real = sweep_mod._execute_cell
        calls = {"failures": 0}

        def flaky(cell, use_cache=True):
            if cell.name == NAMES[0] and calls["failures"] == 0:
                calls["failures"] += 1
                raise RuntimeError("transient")
            return real(cell, use_cache)

        monkeypatch.setattr(sweep_mod, "_execute_cell", flaky)
        engine = SweepEngine(jobs=1, use_cache=False, retry=FAST)
        _assert_tables_identical(engine.run(_cells()), serial_reference)
        assert calls["failures"] == 1

    def test_permanent_serial_failure_raises_sweep_cell_error(
            self, monkeypatch):
        def doomed(cell, use_cache=True):
            raise RuntimeError("permanent")

        monkeypatch.setattr(sweep_mod, "_execute_cell", doomed)
        policy = RetryPolicy.for_harness(retries=1, base_delay=0.01,
                                         cap_delay=0.01)
        with pytest.raises(SweepCellError) as exc:
            SweepEngine(jobs=1, use_cache=False, retry=policy).run(_cells())
        # Every cell failed independently; each was attempted twice.
        assert len(exc.value.failures) == len(NAMES)
        assert all(f["attempts"] == 2 for f in exc.value.failures)

    def test_run_flat_names_the_cell_that_produced_no_runs(
            self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_execute_cell",
                            lambda cell, use_cache=True: [])
        engine = SweepEngine(jobs=1, use_cache=False, retry=FAST)
        with pytest.raises(ValueError, match="single:sat-solver"):
            engine.run_flat([Cell("single", "sat-solver", WEE)])


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_only_unfinished_cells(
            self, flag_dir, tmp_path, serial_reference):
        """Acceptance: two cells fail permanently, the third is
        journaled; the --resume rerun executes *only* the failed two."""
        ckpt = tmp_path / "ckpt"
        (flag_dir / f"doomed-{NAMES[0]}").touch()
        (flag_dir / f"doomed-{NAMES[1]}").touch()
        engine = SweepEngine(jobs=2, use_cache=False, retry=FAST,
                             worker=_always_raises_worker,
                             checkpoint_dir=ckpt)
        with pytest.raises(SweepCellError):
            engine.run(_cells())
        journals = list(ckpt.glob("sweep-*.json"))
        assert len(journals) == 1  # the interrupted sweep left its journal

        resumed = SweepEngine(jobs=2, use_cache=False, retry=FAST,
                              worker=_recording_worker,
                              checkpoint_dir=ckpt, resume=True)
        _assert_tables_identical(resumed.run(_cells()), serial_reference)
        ran = sorted(p.name for p in flag_dir.glob("ran-*"))
        # The journaled cell was skipped; only the failed two reran.
        assert ran == sorted(f"ran-{name}" for name in NAMES[:2])
        assert list(ckpt.glob("sweep-*.json")) == []  # journal retired

    def test_without_resume_a_stale_journal_is_discarded(
            self, flag_dir, tmp_path):
        ckpt = tmp_path / "ckpt"
        cells = _cells()
        engine = SweepEngine(jobs=1, use_cache=False, retry=FAST,
                             checkpoint_dir=ckpt)
        engine.run(cells)  # completes: journal retired
        # Seed a journal, then rerun without resume: every cell reruns.
        fingerprints = [cell.fingerprint() for cell in cells]
        seeded = SweepCheckpoint(ckpt, fingerprints)
        seeded.put(fingerprints[0], [{"bogus": True}])
        fresh = SweepEngine(jobs=1, use_cache=False, retry=FAST,
                            checkpoint_dir=ckpt, resume=False)
        results = fresh.run(cells)
        assert all(runs for runs in results)

    def test_journal_from_a_different_sweep_is_not_trusted(self, tmp_path):
        cells_a = [Cell("single", NAMES[0], WEE)]
        cells_b = [Cell("single", NAMES[1], WEE)]
        prints_a = [c.fingerprint() for c in cells_a]
        prints_b = [c.fingerprint() for c in cells_b]
        assert sweep_digest(prints_a) != sweep_digest(prints_b)
        a = SweepCheckpoint(tmp_path, prints_a)
        a.put(prints_a[0], [{"x": 1}])
        # Same directory, different cell set: different journal file.
        b = SweepCheckpoint(tmp_path, prints_b, resume=True)
        assert b.get(prints_a[0]) is None

    def test_torn_journal_entry_is_recomputed(self, tmp_path,
                                              serial_reference):
        ckpt = tmp_path / "ckpt"
        cells = _cells()
        fingerprints = [cell.fingerprint() for cell in cells]
        seeded = SweepCheckpoint(ckpt, fingerprints)
        seeded.put(fingerprints[0], [{"name": "sat-solver"}])  # torn payload
        engine = SweepEngine(jobs=1, use_cache=False, retry=FAST,
                             checkpoint_dir=ckpt, resume=True)
        _assert_tables_identical(engine.run(cells), serial_reference)

    def test_checkpoint_digest_is_order_insensitive(self):
        assert sweep_digest(["b", "a"]) == sweep_digest(["a", "b", "a"])


class TestValidationGate:
    def test_invalid_worker_payload_is_retried_then_reported(
            self, monkeypatch):
        """A worker shipping implausible counters must never land in
        the results; the supervisor retries, then reports the cell."""
        _real = sweep_mod._execute_cell

        def corrupting(cell, use_cache=True):
            runs = _real(cell, use_cache)
            runs[0].result.cycles = -1
            return runs

        monkeypatch.setattr(sweep_mod, "_execute_cell", corrupting)
        policy = RetryPolicy.for_harness(retries=1, base_delay=0.01,
                                         cap_delay=0.01)
        with pytest.raises(SweepCellError) as exc:
            SweepEngine(jobs=1, use_cache=False, retry=policy).run(
                [Cell("single", NAMES[0], WEE)])
        assert "negative" in str(exc.value)

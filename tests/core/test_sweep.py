"""The sweep engine: fingerprints, cells, parallelism, and the cache fix.

The fingerprint tests double as the regression suite for the
measurement-cache aliasing bug: the historical key hashed only a subset
of ``MachineParams``, so two configurations differing in (for example)
``memory_latency`` shared one cache entry and sweeps over the memory
subsystem silently returned the first-seen configuration's results.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
from dataclasses import fields, replace

import pytest

from repro.core.runner import (
    RunConfig,
    RunawayTraceError,
    clear_cache,
    run_workload,
    run_workload_members,
)
from repro.core.sweep import Cell, SweepEngine, canonical, config_fingerprint
from repro.faults.plan import FaultPlan
from repro.machine.hashing import stable_hash
from repro.uarch.params import CacheParams, MachineParams, PrefetcherParams
from repro.uarch.uop import MicroOp, OpKind

WEE = RunConfig(window_uops=6_000, warm_uops=2_000)


def _perturbed(value: object) -> object:
    """A value of the same type that must change the fingerprint."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value * 2.0 + 1.0
    if isinstance(value, CacheParams):
        return replace(value, size_bytes=value.size_bytes * 2)
    if isinstance(value, PrefetcherParams):
        return replace(value, l1i_next_line=not value.l1i_next_line)
    raise AssertionError(f"no perturbation rule for {type(value).__name__}; "
                         "extend _perturbed alongside the new field type")


class TestConfigFingerprint:
    def test_memory_latency_no_longer_aliases(self):
        """The headline bug: memory_latency was absent from the old key."""
        base = RunConfig()
        changed = replace(base, params=replace(base.params,
                                               memory_latency=250))
        assert config_fingerprint("single", "x", base) \
            != config_fingerprint("single", "x", changed)

    @pytest.mark.parametrize(
        "field_name", [f.name for f in fields(MachineParams)]
    )
    def test_every_machine_param_field_is_significant(self, field_name):
        """Perturbing ANY machine parameter must change the fingerprint
        — the structural derivation makes omissions impossible."""
        base = RunConfig()
        new_value = _perturbed(getattr(base.params, field_name))
        changed = replace(base, params=replace(base.params,
                                               **{field_name: new_value}))
        assert config_fingerprint("single", "x", base) \
            != config_fingerprint("single", "x", changed)

    @pytest.mark.parametrize("field_name,value", [
        ("window_uops", 123_456),
        ("warm_uops", 54_321),
        ("seed", 4242),
        ("fault_plan", FaultPlan.degraded(seed=1)),
    ])
    def test_run_config_fields_are_significant(self, field_name, value):
        base = RunConfig()
        changed = replace(base, **{field_name: value})
        assert config_fingerprint("single", "x", base) \
            != config_fingerprint("single", "x", changed)

    def test_fault_plan_details_are_significant(self):
        base = replace(RunConfig(), fault_plan=FaultPlan.degraded(seed=1))
        seed = replace(RunConfig(), fault_plan=FaultPlan.degraded(seed=2))
        hot = replace(RunConfig(),
                      fault_plan=FaultPlan.degraded(seed=1, intensity=2.0))
        prints = {config_fingerprint("single", "x", c)
                  for c in (base, seed, hot)}
        assert len(prints) == 3

    def test_kind_and_name_are_significant(self):
        config = RunConfig()
        assert config_fingerprint("single", "x", config) \
            != config_fingerprint("smt", "x", config)
        assert config_fingerprint("single", "x", config) \
            != config_fingerprint("single", "y", config)

    def test_stable_across_calls(self):
        a = config_fingerprint("single", "x", RunConfig())
        b = config_fingerprint("single", "x", RunConfig())
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_unfingerprintable_value_is_a_hard_error(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestRunnerCacheRegression:
    """The LRU in runner.py keys on the full fingerprint now."""

    def test_memory_latency_sweep_gets_distinct_entries(self):
        clear_cache()
        slow = replace(WEE, params=replace(WEE.params, memory_latency=400))
        a = run_workload("sat-solver", WEE)
        b = run_workload("sat-solver", slow)
        # With the old hand-picked key these were one cache entry and
        # `b` came back as the stale `a` object.
        assert a is not b
        assert a.result.cycles != b.result.cycles
        # Identical configurations still share one entry.
        assert run_workload("sat-solver", WEE) is a
        assert run_workload("sat-solver", slow) is b

    @pytest.mark.parametrize("field_name,value", [
        ("memory_channels", 6),
        ("peak_bandwidth_bytes_per_s", 64e9),
        ("mshr_entries", 32),
    ])
    def test_other_missing_dimensions_no_longer_alias(self, field_name,
                                                      value):
        clear_cache()
        changed = replace(WEE, params=replace(WEE.params,
                                              **{field_name: value}))
        a = run_workload("sat-solver", WEE)
        b = run_workload("sat-solver", changed)
        assert a is not b

    def test_members_honour_use_cache(self):
        clear_cache()
        first = run_workload_members("parsec-cpu", WEE)
        cached = run_workload_members("parsec-cpu", WEE)
        assert all(a is b for a, b in zip(first, cached))
        fresh = run_workload_members("parsec-cpu", WEE, use_cache=False)
        assert all(a is not b for a, b in zip(first, fresh))


class TestCellsAndEngine:
    def test_unknown_cell_kind_rejected(self):
        with pytest.raises(ValueError):
            Cell("quadruple", "sat-solver", WEE)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_chip_cell_geometry_in_fingerprint(self):
        a = Cell("chip", "sat-solver", WEE, num_cores=2, segments=2)
        b = Cell("chip", "sat-solver", WEE, num_cores=4, segments=2)
        assert a.fingerprint() != b.fingerprint()

    def test_engine_preserves_cell_order(self):
        engine = SweepEngine()
        results = engine.run([Cell("single", "sat-solver", WEE),
                              Cell("members", "parsec-cpu", WEE),
                              Cell("single", "mapreduce", WEE)])
        assert [len(r) for r in results] == [1, 2, 1]
        assert results[0][0].name == "sat-solver"
        assert {r.name for r in results[1]} \
            == {"parsec-cpu:blackscholes", "parsec-cpu:swaptions"}
        assert results[2][0].name == "mapreduce"

    def test_parallel_results_match_serial_bit_for_bit(self):
        cells = [Cell("single", name, WEE)
                 for name in ("sat-solver", "mapreduce", "web-search")]
        serial = SweepEngine(jobs=1, use_cache=False).run(cells)
        parallel = SweepEngine(jobs=2, use_cache=False).run(cells)
        for s_runs, p_runs in zip(serial, parallel):
            for s, p in zip(s_runs, p_runs):
                assert s.result == p.result
                assert s.config == p.config

    def test_parallel_figure_table_is_byte_identical(self):
        from repro.core.experiments import figure4

        kwargs = dict(sizes_mb=(4, 8), scale_out_names=["sat-solver"])
        serial = figure4.run(WEE, engine=SweepEngine(jobs=1), **kwargs)
        parallel = figure4.run(
            WEE, engine=SweepEngine(jobs=2, use_cache=False), **kwargs)
        assert serial.to_text() == parallel.to_text()


class TestHashSeedInvariance:
    """Simulated layouts must not depend on PYTHONHASHSEED.

    Builtin ``hash()`` is salted per process, so anything derived from
    it (branch-site PCs, lock/bucket slots, shuffle partitions) made
    results differ between the serial path and pool workers — the
    reason parallel tables weren't byte-identical to serial ones.
    Everything now routes through ``stable_hash``.
    """

    def test_stable_hash_is_deterministic_and_sensitive(self):
        assert stable_hash("district", 3) == stable_hash("district", 3)
        assert stable_hash("district", 3) != stable_hash("district", 4)
        assert stable_hash("a", "b") != stable_hash("b", "a")
        assert 0 <= stable_hash("x") <= 0xFFFFFFFF

    @pytest.mark.parametrize("workload", ["tpc-c", "web-frontend"])
    def test_results_invariant_under_hash_seed(self, workload):
        """tpc-c (lock-table tuples) and web-frontend (branch sites)
        were the workloads whose cycles moved with the hash salt."""
        program = (
            "from repro.core.runner import RunConfig, run_workload;"
            f"r = run_workload({workload!r}, RunConfig(window_uops=6000,"
            " warm_uops=2000));"
            "print(r.result.cycles, r.result.offchip_bytes)"
        )
        outputs = set()
        for hash_seed in ("11", "22"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=str(pathlib.Path(__file__)
                                      .resolve().parents[2] / "src"))
            proc = subprocess.run([sys.executable, "-c", program],
                                  capture_output=True, text=True, env=env,
                                  check=True)
            outputs.add(proc.stdout)
        assert len(outputs) == 1, f"hash-salt-dependent results: {outputs}"


class _WedgedApp:
    """An app whose serve loop ignores its budget — trace never ends."""

    def warm(self, hierarchy, trace_uops=0):
        pass

    def trace(self, tid, budget):
        seq = 0
        while True:
            seq += 1
            yield MicroOp(OpKind.ALU, pc=0x1000 + (seq % 64) * 4,
                          seq=seq, tid=tid)


class TestAblationWatchdog:
    """Ablations route ad-hoc runs through the watchdog guard, so a
    wedged trace raises instead of hanging the sweep."""

    WEDGE = RunConfig(window_uops=1_000, warm_uops=500)

    def test_narrow_cores_raises_on_wedged_trace(self, monkeypatch):
        from repro.core.experiments import ablations

        monkeypatch.setattr(ablations, "build_app",
                            lambda name, seed=0: _WedgedApp())
        with pytest.raises(RunawayTraceError):
            ablations.narrow_cores(self.WEDGE, workloads=["data-serving"])

    def test_core_aggressiveness_raises_on_wedged_trace(self, monkeypatch):
        from repro.core.experiments import ablations

        monkeypatch.setattr(ablations, "build_app",
                            lambda name, seed=0: _WedgedApp())
        with pytest.raises(RunawayTraceError):
            ablations.core_aggressiveness(self.WEDGE,
                                          workloads=["data-serving"])

    def test_guarded_trace_passes_well_behaved_apps(self):
        run = run_workload("sat-solver", WEE, use_cache=False)
        assert run.result.instructions >= WEE.window_uops

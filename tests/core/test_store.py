"""The on-disk result store: round-trips, versioning, incrementality,
quarantine of defective documents, and the doctor scan."""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import replace

import pytest

from repro.core import sweep as sweep_mod
from repro.core.runner import RunConfig, run_workload
from repro.core.store import (
    SCHEMA_VERSION,
    ResultStore,
    default_cache_dir,
    run_from_dict,
    run_to_dict,
)
from repro.core.sweep import Cell, SweepEngine
from repro.core.validate import ValidationError
from repro.faults.plan import FaultEvent, FaultPlan

WEE = RunConfig(window_uops=6_000, warm_uops=2_000)


class TestSerialization:
    def test_run_round_trips_exactly(self):
        run = run_workload("sat-solver", WEE)
        restored = run_from_dict(json.loads(json.dumps(run_to_dict(run))))
        assert restored.name == run.name
        assert restored.config == run.config
        assert restored.result == run.result
        assert restored.app is None

    def test_fault_plan_config_round_trips(self):
        config = replace(WEE, fault_plan=FaultPlan.degraded(seed=3,
                                                            intensity=1.5))
        run = run_workload("data-serving", config)
        restored = run_from_dict(json.loads(json.dumps(run_to_dict(run))))
        assert restored.config == run.config
        assert restored.config.fault_plan == config.fault_plan

    def test_derived_metrics_survive_restoration(self):
        run = run_workload("mapreduce", WEE)
        restored = run_from_dict(run_to_dict(run))
        assert restored.bandwidth_utilization() \
            == run.bandwidth_utilization()
        assert restored.os_bandwidth_fraction() \
            == run.os_bandwidth_fraction()


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("f" * 64, [run])
        restored = store.get("f" * 64)
        assert restored is not None
        assert restored[0].result == run.result

    def test_missing_fingerprint_is_a_miss(self, tmp_path):
        assert ResultStore(tmp_path).get("0" * 64) is None

    def test_corrupt_document_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("a" * 64)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert store.get("a" * 64) is None

    def test_wrong_schema_version_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("b" * 64, [run])
        path = store.path_for("b" * 64)
        document = json.loads(path.read_text())
        document["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        assert store.get("b" * 64) is None

    def test_renamed_document_is_a_miss_and_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("c" * 64, [run])
        store.path_for("c" * 64).rename(store.path_for("d" * 64))
        assert store.get("d" * 64) is None
        # The evidence moved to corrupt/ with a diagnosis, instead of
        # being overwritten by the recomputed result.
        quarantined = store.corrupt_directory / f"{'d' * 64}.json"
        assert quarantined.exists()
        reason = json.loads(quarantined.with_suffix(".reason").read_text())
        assert "does not match" in reason["reason"]
        assert not store.path_for("d" * 64).exists()

    def test_fault_plan_config_round_trips_through_the_store(self, tmp_path):
        """The FaultPlan branch of ``_config_from_dict`` — a degraded
        config must come back as frozen FaultEvent/FaultPlan types."""
        store = ResultStore(tmp_path)
        config = replace(WEE, fault_plan=FaultPlan.degraded(seed=5,
                                                            intensity=1.5))
        run = run_workload("data-serving", config)
        store.put("a1" * 32, [run])
        restored = store.get("a1" * 32)
        assert restored is not None
        plan = restored[0].config.fault_plan
        assert plan == config.fault_plan
        assert isinstance(plan, FaultPlan)
        assert all(isinstance(event, FaultEvent) for event in plan.events)
        assert restored[0].config == run.config

    def test_stats_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.stats()["entries"] == 0
        run = run_workload("sat-solver", WEE)
        store.put("e" * 64, [run])
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["corrupt_entries"] == 0
        assert store.clear() == 1
        assert store.stats()["entries"] == 0

    def test_stats_tolerates_concurrently_cleared_entries(
            self, tmp_path, monkeypatch):
        """A concurrent ``clear()`` may unlink a file between the
        directory listing and ``stat()`` — one vanished entry must not
        crash the ``cache`` CLI."""
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("a" * 64, [run])
        store.put("b" * 64, [run])
        doomed = store.path_for("a" * 64).name
        real_stat = pathlib.Path.stat

        def racy_stat(self, **kwargs):
            if self.name == doomed:
                raise FileNotFoundError(self)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racy_stat)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_env_override_of_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        assert ResultStore().root == tmp_path / "custom"


class TestValidationGate:
    def test_put_rejects_implausible_results(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        broken = dataclasses.replace(
            run, result=dataclasses.replace(run.result, llc_misses=-7))
        with pytest.raises(ValidationError, match="negative"):
            store.put("f" * 64, [broken])
        assert not store.path_for("f" * 64).exists()

    def test_get_quarantines_out_of_range_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("9" * 64, [run])
        path = store.path_for("9" * 64)
        document = json.loads(path.read_text())
        document["runs"][0]["result"]["l1i_misses"] = -123
        path.write_text(json.dumps(document))
        assert store.get("9" * 64) is None
        assert (store.corrupt_directory / path.name).exists()


class TestDoctor:
    @staticmethod
    def _poison(store, fingerprint, **counter_overrides):
        path = store.path_for(fingerprint)
        document = json.loads(path.read_text())
        document["runs"][0]["result"].update(counter_overrides)
        path.write_text(json.dumps(document))

    def test_doctor_quarantines_and_reports_defects(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("1" * 64, [run])
        store.put("2" * 64, [run])
        self._poison(store, "2" * 64, cycles=0, committing_cycles=0,
                     stalled_cycles=0, memory_cycles=0, superq_busy_cycles=0)
        report = store.doctor()
        assert report["scanned"] == 2
        assert report["healthy"] == 1
        assert len(report["defects"]) == 1
        fingerprint, reason = report["defects"][0]
        assert fingerprint == "2" * 64
        assert "cycles" in reason
        assert report["corrupt_entries"] == 1
        # The healthy document survived; the defective one moved.
        assert store.get("1" * 64) is not None
        assert not store.path_for("2" * 64).exists()
        assert (store.corrupt_directory / f"{'2' * 64}.json").exists()

    def test_doctor_check_mode_reports_without_moving(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("3" * 64, [run])
        self._poison(store, "3" * 64, llc_misses=-1)
        report = store.doctor(repair=False)
        assert len(report["defects"]) == 1
        assert not report["repaired"]
        assert store.path_for("3" * 64).exists()  # left in place

    def test_doctor_on_a_clean_store_is_quiet(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_workload("sat-solver", WEE)
        store.put("4" * 64, [run])
        report = store.doctor()
        assert report["defects"] == []
        assert report["healthy"] == report["scanned"] == 1


class TestIncrementalSweeps:
    def test_second_engine_run_hits_the_store(self, tmp_path, monkeypatch):
        cells = [Cell("single", "sat-solver", WEE),
                 Cell("members", "parsec-cpu", WEE)]
        first = SweepEngine(store=ResultStore(tmp_path)).run(cells)

        def explode(cell, use_cache=True):
            raise AssertionError(f"store miss: {cell.kind}:{cell.name}")

        monkeypatch.setattr(sweep_mod, "_execute_cell", explode)
        second = SweepEngine(store=ResultStore(tmp_path)).run(cells)
        for first_runs, second_runs in zip(first, second):
            for a, b in zip(first_runs, second_runs):
                assert a.result == b.result
                assert a.config == b.config

    def test_no_cache_engine_skips_the_store(self, tmp_path):
        cells = [Cell("single", "sat-solver", WEE)]
        store = ResultStore(tmp_path)
        SweepEngine(store=store, use_cache=False).run(cells)
        assert store.stats()["entries"] == 0

    def test_restored_figure_table_is_byte_identical(self, tmp_path):
        from repro.core.experiments import figure7

        fresh = figure7.run(WEE, engine=SweepEngine(
            store=ResultStore(tmp_path)))
        restored = figure7.run(WEE, engine=SweepEngine(
            store=ResultStore(tmp_path)))
        assert fresh.to_text() == restored.to_text()

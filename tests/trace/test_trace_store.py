"""The on-disk trace store: container round-trips, every corruption
class, quarantine evidence, and the doctor scan."""

from __future__ import annotations

import hashlib
import json
import shutil
import struct

import pytest

from repro.trace.capture import TraceKey, capture
from repro.trace.store import (
    TraceFormatError,
    TraceStore,
    deserialize,
    serialize,
)

WEE_KEY = TraceKey("sat-solver", window_uops=2_000, warm_uops=500)

_MAGIC = b"REPROTRC"
_HEADER_LEN = struct.Struct("<I")


@pytest.fixture(scope="module")
def captured():
    trace, _app = capture(WEE_KEY)
    return trace


def header_of(data: bytes) -> dict:
    """Parse a container's JSON header (test-side mirror of the store)."""
    header_len, = _HEADER_LEN.unpack_from(data, len(_MAGIC))
    start = len(_MAGIC) + _HEADER_LEN.size
    return json.loads(data[start:start + header_len])


def resign(data: bytes, **header_updates) -> bytes:
    """Rewrite a container's header and recompute the digest.

    Lets a test corrupt one specific header field while keeping the
    checksum valid, so the parser's own validation (not the checksum)
    is what must catch it.
    """
    body = data[:-32]
    header_len, = _HEADER_LEN.unpack_from(body, len(_MAGIC))
    header_start = len(_MAGIC) + _HEADER_LEN.size
    header = json.loads(body[header_start:header_start + header_len])
    header.update(header_updates)
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    new_body = (_MAGIC + _HEADER_LEN.pack(len(header_bytes))
                + header_bytes + body[header_start + header_len:])
    return new_body + hashlib.sha256(new_body).digest()


class TestContainerRoundTrip:
    def test_everything_survives(self, captured):
        restored = deserialize(serialize(captured))
        assert restored.fingerprint == captured.fingerprint
        assert restored.label == captured.label
        assert restored.fill_ranges == captured.fill_ranges
        assert restored.warm == captured.warm
        assert restored.streams == captured.streams
        assert restored.meta == captured.meta

    def test_serialization_is_deterministic(self, captured):
        assert serialize(captured) == serialize(captured)


class TestContainerDefects:
    def test_too_short(self):
        with pytest.raises(TraceFormatError, match="shorter"):
            deserialize(b"REPRO")

    def test_bad_magic(self, captured):
        data = serialize(captured)
        with pytest.raises(TraceFormatError, match="magic"):
            deserialize(b"NOTTRACE" + data[8:])

    def test_bit_flip_fails_checksum(self, captured):
        data = bytearray(serialize(captured))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(TraceFormatError, match="checksum"):
            deserialize(bytes(data))

    def test_truncated_payload_fails_checksum(self, captured):
        data = serialize(captured)
        with pytest.raises(TraceFormatError):
            deserialize(data[:-100])

    def test_wrong_schema(self, captured):
        data = resign(serialize(captured), schema=999)
        with pytest.raises(TraceFormatError, match="schema"):
            deserialize(data)

    def test_foreign_byteorder(self, captured):
        data = resign(serialize(captured), byteorder="middle")
        with pytest.raises(TraceFormatError, match="endian"):
            deserialize(data)

    def test_uop_count_mismatch(self, captured):
        sections = header_of(serialize(captured))["sections"]
        sections[0] = dict(sections[0], uops=sections[0]["uops"] + 1)
        data = resign(serialize(captured), sections=sections)
        with pytest.raises(TraceFormatError, match="uops"):
            deserialize(data)

    def test_missing_warm_section(self, captured):
        sections = header_of(serialize(captured))["sections"]
        sections[0] = dict(sections[0], name="stream9")
        data = resign(serialize(captured), sections=sections)
        with pytest.raises(TraceFormatError, match="warm"):
            deserialize(data)

    def test_alien_column_set(self, captured):
        sections = header_of(serialize(captured))["sections"]
        columns = [dict(c) for c in sections[0]["columns"]]
        columns[0]["name"] = "opcode"
        sections[0] = dict(sections[0], columns=columns)
        data = resign(serialize(captured), sections=sections)
        with pytest.raises(TraceFormatError, match="columns"):
            deserialize(data)


class TestTraceStore:
    def test_put_get_round_trip(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        restored = store.get(captured.fingerprint)
        assert restored is not None
        assert restored.warm == captured.warm
        assert restored.streams == captured.streams

    def test_miss_is_none(self, tmp_path):
        assert TraceStore(tmp_path).get("f" * 64) is None

    def test_defect_is_quarantined_with_reason(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        path = store.path_for(captured.fingerprint)
        path.write_bytes(path.read_bytes()[:-40])
        assert store.get(captured.fingerprint) is None
        assert not path.exists()
        quarantined = store.corrupt_directory / path.name
        assert quarantined.exists()
        reason = json.loads(
            quarantined.with_suffix(".reason").read_text())
        assert reason["fingerprint"] == captured.fingerprint
        assert reason["reason"]

    def test_renamed_container_is_rejected(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        alias = "0" * 64
        shutil.copy(store.path_for(captured.fingerprint),
                    store.path_for(alias))
        assert store.get(alias) is None
        reason = json.loads(
            (store.corrupt_directory / f"{alias}.reason").read_text())
        assert "does not match the filename" in reason["reason"]

    def test_entries_remove_clear_stats(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["label"] == "sat-solver"
        assert entries[0]["meta"]["window_uops"] == 2_000
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert store.remove(captured.fingerprint[:8]) == 1
        assert store.stats()["entries"] == 0
        store.put(captured)
        assert store.clear() == 1

    def test_env_override_of_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        store = TraceStore()
        assert store.root == tmp_path / "custom"
        assert store.directory.name.startswith("traces-v")


class TestDoctor:
    def test_healthy_store(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        report = store.doctor()
        assert report["scanned"] == 1
        assert report["healthy"] == 1
        assert report["defects"] == []
        assert report["corrupt_entries"] == 0

    def test_check_mode_reports_without_touching(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        path = store.path_for(captured.fingerprint)
        path.write_bytes(b"garbage")
        report = store.doctor(repair=False)
        assert len(report["defects"]) == 1
        assert report["repaired"] is False
        assert path.exists()

    def test_repair_quarantines(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        path = store.path_for(captured.fingerprint)
        path.write_bytes(b"garbage")
        report = store.doctor(repair=True)
        assert len(report["defects"]) == 1
        assert not path.exists()
        assert (store.corrupt_directory / path.name).exists()
        assert store.doctor()["corrupt_entries"] == 1

    def test_stale_versions_listed(self, tmp_path, captured):
        store = TraceStore(tmp_path)
        store.put(captured)
        (tmp_path / "traces-v0").mkdir()
        assert store.doctor()["stale_versions"] == ["traces-v0"]
        assert store.stats()["stale_versions"] == ["traces-v0"]

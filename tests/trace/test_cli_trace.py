"""The ``python -m repro trace`` surface and the doctor's trace audit."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.core.runner import clear_cache
from repro.trace.capture import TraceKey
from repro.trace.store import TraceStore


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache()
    yield
    clear_cache()


def captured_fingerprint(window: int = 6_000) -> str:
    # Mirror of the CLI's key: default config except --window/--warm.
    from repro.core.runner import RunConfig

    config = RunConfig(window_uops=window, warm_uops=2_000)
    return TraceKey.from_config("sat-solver", config).fingerprint()


def capture_args(extra: list[str] | None = None) -> list[str]:
    return (["trace", "capture", "sat-solver",
             "--window", "6000", "--warm", "2000"] + (extra or []))


class TestUsageErrors:
    def test_bare_trace_prints_usage(self, capsys):
        assert main(["trace"]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_capture_requires_workload(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "capture"])
        assert exc.value.code == 2
        assert "requires a workload" in capsys.readouterr().err

    def test_capture_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "capture", "no-such-workload"])
        assert exc.value.code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_rm_requires_prefix(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "rm"])
        assert exc.value.code == 2
        assert "prefix" in capsys.readouterr().err


class TestCaptureLsRmStats:
    def test_capture_then_store_hit(self, capsys):
        assert main(capture_args()) == 0
        out = capsys.readouterr().out
        assert "captured: sat-solver" in out
        assert captured_fingerprint()[:16] in out
        assert "trace pipeline:" in out
        clear_cache()
        assert main(capture_args()) == 0
        assert "store hit: sat-solver" in capsys.readouterr().out

    def test_no_cache_capture_skips_the_store(self, capsys):
        assert main(capture_args(["--no-cache"])) == 0
        capsys.readouterr()
        assert main(["trace", "ls"]) == 0
        assert "0 trace(s)" in capsys.readouterr().out

    def test_ls_lists_entries(self, capsys):
        main(capture_args())
        capsys.readouterr()
        assert main(["trace", "ls"]) == 0
        out = capsys.readouterr().out
        assert "sat-solver" in out
        assert "window=6000" in out
        assert "1 trace(s)" in out

    def test_rm_by_prefix_and_all(self, capsys):
        main(capture_args())
        capsys.readouterr()
        assert main(["trace", "rm", captured_fingerprint()[:8]]) == 0
        assert "removed 1 trace(s)" in capsys.readouterr().out
        clear_cache()  # a fresh CLI process would not hold the memo
        main(capture_args())
        capsys.readouterr()
        assert main(["trace", "rm", "all"]) == 0
        assert "removed 1 trace(s)" in capsys.readouterr().out

    def test_stats_reports_store_and_taps(self, capsys):
        main(capture_args())
        capsys.readouterr()
        assert main(["trace", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "trace pipeline:" in out

    def test_legacy_dump_still_works(self, capsys):
        assert main(["trace", "sat-solver", "5"]) == 0
        assert capsys.readouterr().out


class TestDoctorTraceAudit:
    def poison(self) -> TraceStore:
        main(capture_args())
        store = TraceStore()
        path = store.path_for(captured_fingerprint())
        path.write_bytes(b"garbage")
        return store

    def test_clean_stores_exit_zero(self, capsys):
        main(capture_args())
        capsys.readouterr()
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "traces:" in out

    def test_defective_trace_fails_doctor_and_quarantines(self, capsys):
        store = self.poison()
        capsys.readouterr()
        assert main(["doctor"]) == 1
        assert "quarantined: 1" in capsys.readouterr().out
        path = store.path_for(captured_fingerprint())
        assert not path.exists()
        quarantined = store.corrupt_directory / path.name
        assert quarantined.exists()
        reason = json.loads(
            quarantined.with_suffix(".reason").read_text())
        assert reason["reason"]

    def test_check_mode_reports_but_leaves_the_store_alone(self, capsys):
        store = self.poison()
        capsys.readouterr()
        assert main(["doctor", "--check"]) == 1
        assert store.path_for(captured_fingerprint()).exists()

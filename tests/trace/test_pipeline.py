"""Pipeline plumbing: memoization, taps, sweep pre-materialization.

The acceptance property pinned here: a Figure 4 or Figure 5 sweep
captures each distinct workload trace exactly once — every further
cell is a replay — and the taps prove it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.experiments import figure4, figure5
from repro.core.runner import RunConfig, clear_cache
from repro.core.sweep import Cell, SweepEngine
from repro.trace import pipeline
from repro.trace.capture import TraceKey
from repro.trace.pipeline import (
    TAPS,
    materialize,
    materialize_cells,
    trace_keys_for_cells,
)

WEE = RunConfig(window_uops=6_000, warm_uops=2_000)


@pytest.fixture(autouse=True)
def fresh_pipeline(tmp_path, monkeypatch):
    """Every test gets an empty memo, zeroed taps, and its own store."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_cache()
    yield
    clear_cache()


class TestMaterialize:
    def test_capture_then_memo_hit(self):
        key = TraceKey("sat-solver", window_uops=6_000, warm_uops=2_000)
        first, app = materialize(key)
        assert app is not None
        assert TAPS.captures == 1
        again, _ = materialize(key)
        assert again is first
        assert TAPS.captures == 1
        assert TAPS.memo_hits == 1

    def test_store_hit_after_process_restart(self):
        key = TraceKey("sat-solver", window_uops=6_000, warm_uops=2_000)
        materialize(key)
        pipeline.reset()  # simulate a fresh process, same cache dir
        restored, app = materialize(key)
        assert app is None  # store hits cannot resurrect the live app
        assert TAPS.captures == 0
        assert TAPS.store_hits == 1
        assert restored.fingerprint == key.fingerprint()

    def test_use_store_false_skips_disk_both_ways(self):
        key = TraceKey("sat-solver", window_uops=6_000, warm_uops=2_000)
        materialize(key, use_store=False)
        pipeline.reset()
        materialize(key, use_store=False)
        assert TAPS.store_hits == 0
        assert TAPS.store_misses == 0
        assert TAPS.captures == 1  # no store, so the capture repeats

    def test_require_app_falls_through_store_hits(self):
        key = TraceKey("sat-solver", window_uops=6_000, warm_uops=2_000)
        materialize(key)
        pipeline.reset()
        _, app = materialize(key, require_app=True)
        assert app is not None
        assert TAPS.captures == 1
        # And the app-bearing entry now serves require_app memo hits.
        _, again = materialize(key, require_app=True)
        assert again is app
        assert TAPS.memo_hits == 1


class TestTraceKeysForCells:
    def test_single_cells_dedup_across_machine_params(self):
        cells = figure4.cells(WEE, sizes_mb=(4, 8),
                              scale_out_names=["web-search"])
        names = {cell.name for cell in cells}
        keys = trace_keys_for_cells(cells)
        assert len(cells) == 3 * len(names)  # baseline + two LLC sizes
        assert len(keys) == len(names)  # machine params never key a trace
        assert {key.workload for key in keys} == names

    def test_members_cells_expand_to_member_keys(self):
        cells = [c for c in figure5.cells(WEE) if c.name == "parsec-cpu"]
        assert len(cells) == 3  # three prefetcher variants
        keys = trace_keys_for_cells(cells)
        assert [(k.workload, k.member) for k in keys] == [
            ("parsec-cpu", "blackscholes"),
            ("parsec-cpu", "swaptions"),
        ]
        # Member budgets mirror the runner's group split.
        assert all(k.window_uops == WEE.window_uops // 2 for k in keys)
        assert all(k.warm_uops == WEE.warm_uops // 2 for k in keys)

    def test_non_group_members_cell_keys_like_single(self):
        keys = trace_keys_for_cells([Cell("members", "tpc-e", WEE)])
        assert [(k.workload, k.member) for k in keys] == [("tpc-e", None)]
        assert keys[0].window_uops == WEE.window_uops

    def test_entangled_kinds_stay_live(self):
        cells = [Cell("smt", "sat-solver", WEE),
                 Cell("smt-members", "parsec-cpu", WEE),
                 Cell("chip", "media-streaming", WEE)]
        assert trace_keys_for_cells(cells) == []

    def test_fault_plans_key_separately(self):
        from repro.faults.plan import FaultPlan

        degraded = replace(WEE, fault_plan=FaultPlan.degraded(seed=7))
        keys = trace_keys_for_cells([
            Cell("single", "data-serving", WEE),
            Cell("single", "data-serving", degraded),
        ])
        assert len(keys) == 2


class TestMaterializeCells:
    def test_unknown_workload_is_skipped_not_fatal(self):
        cells = [Cell("single", "no-such-workload", WEE),
                 Cell("single", "sat-solver", WEE)]
        done = materialize_cells(cells)
        assert done == 1
        assert TAPS.captures == 1
        assert TAPS.capture_errors == 1


class TestSweepCapturesOncePerTrace:
    def test_figure4_sweep(self):
        cells = figure4.cells(WEE, sizes_mb=(4,),
                              scale_out_names=["web-search"])
        n_names = len({cell.name for cell in cells})
        results = SweepEngine().run(cells)
        assert len(results) == len(cells) == 2 * n_names
        assert TAPS.captures == n_names  # one capture per workload
        assert TAPS.replays == len(cells)  # one replay per cell

    def test_figure5_members_sweep(self):
        cells = [c for c in figure5.cells(WEE)
                 if c.name in ("parsec-cpu", "specint-mem")]
        results = SweepEngine().run(cells)
        assert len(results) == 6  # 2 groups x 3 prefetcher variants
        assert TAPS.captures == 4  # 2 groups x 2 members, once each
        assert TAPS.replays == 12  # 2 members per cell

    def test_rerun_in_new_process_replays_from_store(self):
        cells = figure4.cells(WEE, sizes_mb=(4,),
                              scale_out_names=["web-search"])
        SweepEngine().run(cells)
        n_names = len({cell.name for cell in cells})
        clear_cache()  # drop the LRU, memo, and taps; keep the disk
        SweepEngine(store=None).run(cells)
        assert TAPS.captures == 0
        assert TAPS.store_hits == n_names
        assert TAPS.replays == len(cells)


class TestSchemaVersionInFingerprints:
    def test_trace_fingerprint_tracks_schema(self, monkeypatch):
        import sys

        key = TraceKey("sat-solver")
        before = key.fingerprint()
        # The package re-exports the ``capture`` function under the
        # submodule's name, so patch the module object itself.
        monkeypatch.setattr(sys.modules["repro.trace.capture"],
                            "TRACE_SCHEMA", 2)
        assert key.fingerprint() != before

    def test_config_fingerprint_tracks_schema(self, monkeypatch):
        """The satellite bugfix: a codec bump invalidates cached
        *results*, not just traces — replayed counters derive from the
        encoding."""
        from repro.core import sweep as sweep_mod

        before = sweep_mod.config_fingerprint("single", "figure4", WEE)
        monkeypatch.setattr(sweep_mod, "TRACE_SCHEMA", 2)
        after = sweep_mod.config_fingerprint("single", "figure4", WEE)
        assert after != before

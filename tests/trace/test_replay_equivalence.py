"""Replay equivalence: decoded replay is byte-identical to live timing.

This is the contract the whole refactor rests on: for every workload in
the registry, feeding a core the captured-and-decoded stream produces a
``CoreResult`` whose ``to_counters()`` matches a live generation run
exactly — not approximately.  The live side below is the pre-refactor
runner path, spelled through the same ``LiveSource`` the SMT runs use.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.runner import RunConfig
from repro.core.workloads import REGISTRY
from repro.faults.plan import FaultPlan
from repro.trace.capture import TraceKey, build_app_for, capture
from repro.trace.columns import batch_for
from repro.trace.live import LiveSource
from repro.trace.replay import (ReplaySource, replay_path_for, replay_trace,
                                selected_replay_path)
from repro.trace.store import deserialize, serialize
from repro.uarch.core import Core
from repro.uarch.counters import COUNTER_NAMES
from repro.uarch.fastpath import replay_columns
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import CacheParams, MachineParams

WINDOW = 6_000
WARM = 2_000


def live_counters(key: TraceKey, params: MachineParams) -> dict:
    """A live measurement: generation feeds the core directly."""
    app = build_app_for(key)
    source = LiveSource(app, budgets=(key.window_uops,),
                        label=key.label(), warm_uops=key.warm_uops)
    hierarchy = MemoryHierarchy(params)
    source.warm_into(hierarchy)
    result = Core(params, hierarchy).run(source.streams())
    return dict(result.to_counters().values)


def replayed_counters(key: TraceKey, params: MachineParams) -> dict:
    """The same measurement through capture, encode, decode, replay."""
    captured, _app = capture(key)
    return dict(replay_trace(captured, params).to_counters().values)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_every_registered_workload(name):
    key = TraceKey(name, window_uops=WINDOW, warm_uops=WARM)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_group_member_key():
    key = TraceKey("parsec-cpu", member="blackscholes",
                   window_uops=WINDOW // 2, warm_uops=WARM // 2)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_fault_plan_runs_replay_identically():
    plan = FaultPlan.degraded(seed=3, intensity=1.5)
    key = TraceKey("data-serving", window_uops=WINDOW, warm_uops=WARM,
                   fault_plan=plan)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_one_capture_serves_many_machine_configs():
    """The machine-independence invariant, stated directly.

    One captured trace replayed under two different machine parameter
    sets must match a live run under each — i.e. nothing about the
    capture depends on the machine the trace is later timed on.
    """
    key = TraceKey("web-search", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    baseline = MachineParams()
    variant = baseline.with_llc_mb(4)
    for params in (baseline, variant):
        replayed = dict(replay_trace(captured, params).to_counters().values)
        assert replayed == live_counters(key, params)


# ---------------------------------------------------------------------
# Engine equivalence: the columnar fast path against the general loop.
# ``replay_trace`` dispatches between the two; these tests run both
# engines on one capture and demand bit-identical counters.

def engine_counters(captured, params: MachineParams, engine: str) -> dict:
    """One measurement through an explicitly chosen replay engine."""
    source = ReplaySource(captured)
    hierarchy = MemoryHierarchy(params)
    source.warm_into(hierarchy)
    core = Core(params, hierarchy)
    if engine == "columnar":
        result = replay_columns(core, batch_for(captured.streams[0]))
    else:
        result = core.run(source.streams())
    return dict(result.to_counters().values)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_columnar_engine_matches_general_loop(name):
    """Every counter, every workload: fast path ≡ general loop."""
    key = TraceKey(name, window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    params = MachineParams()
    fast = engine_counters(captured, params, "columnar")
    general = engine_counters(captured, params, "general")
    assert fast == general
    assert set(fast) == set(COUNTER_NAMES)


def test_plain_capture_selects_columnar_engine():
    key = TraceKey("media-streaming", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    assert selected_replay_path(captured, MachineParams()) == "columnar"
    # SMT machines fall back to the general loop even for this capture.
    assert selected_replay_path(captured,
                                MachineParams().with_smt(2)) == "general"


def test_fault_plan_capture_selects_general_loop():
    """Injected faults must never reach the no-fault fast path."""
    plan = FaultPlan.degraded(seed=3, intensity=1.5)
    key = TraceKey("data-serving", window_uops=WINDOW, warm_uops=WARM,
                   fault_plan=plan)
    captured, _app = capture(key)
    assert captured.meta["fault_events"] > 0
    assert selected_replay_path(captured, MachineParams()) == "general"


def test_replay_path_for_mirrors_runtime_selection():
    """The fingerprint-side selector agrees with the runtime one."""
    healthy = RunConfig()
    assert replay_path_for("single", healthy) == "columnar"
    assert replay_path_for("member", healthy) == "columnar"
    assert replay_path_for("smt", healthy) == "general"
    assert replay_path_for("chip", healthy) == "general"
    faulted = RunConfig(fault_plan=FaultPlan.degraded(seed=3, intensity=1.5))
    assert replay_path_for("single", faulted) == "general"
    smt = RunConfig(params=MachineParams().with_smt(2))
    assert replay_path_for("single", smt) == "general"


def wide_line_params() -> MachineParams:
    """The baseline machine rebuilt with 128-byte lines end to end."""
    return replace(
        MachineParams(),
        line_bytes=128,
        l1i=CacheParams(32 * 1024, 4, 4, line_bytes=128),
        l1d=CacheParams(32 * 1024, 8, 4, line_bytes=128),
        l2=CacheParams(256 * 1024, 8, 6, line_bytes=128),
        llc=CacheParams(12 * 1024 * 1024, 16, 29, line_bytes=128),
    )


def test_wide_line_hierarchy_replays_identically():
    """128-byte lines: warming and replay honour the configured size.

    Guards the ``fill_lines``/``functional_replay`` fix — both used to
    hardcode 64-byte steps, so a non-default line size warmed the wrong
    lines and replay silently diverged from live timing.
    """
    key = TraceKey("mapreduce", window_uops=WINDOW, warm_uops=WARM)
    params = wide_line_params()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_wide_line_engines_agree():
    """Fast-vs-general equivalence holds at line_bytes=128 too."""
    key = TraceKey("web-search", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    params = wide_line_params()
    assert (engine_counters(captured, params, "columnar")
            == engine_counters(captured, params, "general"))


def test_store_round_trip_preserves_counters():
    """Persisting and re-reading the container changes nothing."""
    key = TraceKey("mapreduce", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    params = MachineParams()
    direct = dict(replay_trace(captured, params).to_counters().values)
    restored = deserialize(serialize(captured))
    assert dict(replay_trace(restored, params).to_counters().values) == direct

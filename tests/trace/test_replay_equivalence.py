"""Replay equivalence: decoded replay is byte-identical to live timing.

This is the contract the whole refactor rests on: for every workload in
the registry, feeding a core the captured-and-decoded stream produces a
``CoreResult`` whose ``to_counters()`` matches a live generation run
exactly — not approximately.  The live side below is the pre-refactor
runner path, spelled through the same ``LiveSource`` the SMT runs use.
"""

from __future__ import annotations

import pytest

from repro.core.workloads import REGISTRY
from repro.faults.plan import FaultPlan
from repro.trace.capture import TraceKey, build_app_for, capture
from repro.trace.live import LiveSource
from repro.trace.replay import replay_trace
from repro.trace.store import deserialize, serialize
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams

WINDOW = 6_000
WARM = 2_000


def live_counters(key: TraceKey, params: MachineParams) -> dict:
    """A live measurement: generation feeds the core directly."""
    app = build_app_for(key)
    source = LiveSource(app, budgets=(key.window_uops,),
                        label=key.label(), warm_uops=key.warm_uops)
    hierarchy = MemoryHierarchy(params)
    source.warm_into(hierarchy)
    result = Core(params, hierarchy).run(source.streams())
    return dict(result.to_counters().values)


def replayed_counters(key: TraceKey, params: MachineParams) -> dict:
    """The same measurement through capture, encode, decode, replay."""
    captured, _app = capture(key)
    return dict(replay_trace(captured, params).to_counters().values)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_every_registered_workload(name):
    key = TraceKey(name, window_uops=WINDOW, warm_uops=WARM)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_group_member_key():
    key = TraceKey("parsec-cpu", member="blackscholes",
                   window_uops=WINDOW // 2, warm_uops=WARM // 2)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_fault_plan_runs_replay_identically():
    plan = FaultPlan.degraded(seed=3, intensity=1.5)
    key = TraceKey("data-serving", window_uops=WINDOW, warm_uops=WARM,
                   fault_plan=plan)
    params = MachineParams()
    assert replayed_counters(key, params) == live_counters(key, params)


def test_one_capture_serves_many_machine_configs():
    """The machine-independence invariant, stated directly.

    One captured trace replayed under two different machine parameter
    sets must match a live run under each — i.e. nothing about the
    capture depends on the machine the trace is later timed on.
    """
    key = TraceKey("web-search", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    baseline = MachineParams()
    variant = baseline.with_llc_mb(4)
    for params in (baseline, variant):
        replayed = dict(replay_trace(captured, params).to_counters().values)
        assert replayed == live_counters(key, params)


def test_store_round_trip_preserves_counters():
    """Persisting and re-reading the container changes nothing."""
    key = TraceKey("mapreduce", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    params = MachineParams()
    direct = dict(replay_trace(captured, params).to_counters().values)
    restored = deserialize(serialize(captured))
    assert dict(replay_trace(restored, params).to_counters().values) == direct

"""Op-class capture: the calibration layer's entry into the pipeline.

A ``TraceKey`` with ``op_class`` set captures repeated requests of one
fleet op class instead of the app's mixed serve loop.  Calibration
correctness rests on three properties pinned here: the recorded
per-request micro-op counts tile the stream exactly (proportional
cycle attribution sums to the whole window), the capture is
single-stream and fault-free by construction (so the columnar fastpath
replays it), and misuse fails loudly rather than silently pricing the
wrong thing.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan
from repro.trace import pipeline
from repro.trace.capture import TraceKey, capture
from repro.trace.replay import selected_replay_path
from repro.uarch.params import MachineParams


def _key(op: str, **overrides) -> TraceKey:
    defaults = dict(workload="data-serving", seed=7, window_uops=4_000,
                    warm_uops=1_000, op_class=op)
    defaults.update(overrides)
    return TraceKey(**defaults)


class TestOpClassCapture:
    def test_request_uops_tile_the_stream_exactly(self):
        captured, _app = capture(_key("read"))
        (stream,) = captured.streams
        assert sum(captured.meta["request_uops"]) == len(stream.kind)
        assert all(count >= 0 for count in captured.meta["request_uops"])

    def test_capture_takes_the_columnar_fastpath(self):
        captured, _app = capture(_key("update"))
        assert captured.meta["fault_events"] == 0
        assert captured.meta["op_class"] == "update"
        assert selected_replay_path(captured, MachineParams()) == "columnar"

    def test_op_classes_capture_distinct_streams(self):
        read, _ = capture(_key("read"))
        probe, _ = capture(_key("probe"))
        assert read.fingerprint != probe.fingerprint
        assert read.label == "data-serving@read"

    def test_fault_plans_are_rejected(self):
        with pytest.raises(ValueError, match="no fault plan"):
            capture(_key("read", fault_plan=FaultPlan.degraded()))

    def test_multi_thread_capture_is_rejected(self):
        with pytest.raises(ValueError, match="single-threaded"):
            capture(_key("read", threads=2))

    def test_unknown_op_class_names_the_known_set(self):
        with pytest.raises(KeyError, match="known:"):
            capture(_key("compact"))

    def test_store_round_trip_preserves_request_uops(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = _key("hint")
        first, _ = pipeline.materialize(key, use_store=True)
        second, _ = pipeline.materialize(key, use_store=True)
        assert second.meta["request_uops"] == first.meta["request_uops"]
        assert second.fingerprint == first.fingerprint

"""Columnar codec round-trips: every MicroOp field, every edge value.

The replay-equivalence guarantee rests on ``EncodedStream.decode()``
being field-exact, so these tests exercise the full value range of each
column — including the packed flag bits, empty and long dependency
tuples, and 64-bit extremes — and pin the fail-loudly behaviour for
values a column cannot hold.
"""

from __future__ import annotations

import pytest

from repro.trace.codec import COLUMNS, EncodedStream, encode_stream
from repro.uarch.uop import MicroOp, OpKind

U64_MAX = 2**64 - 1
U16_MAX = 2**16 - 1


def fields_of(uop: MicroOp) -> tuple:
    return (uop.kind, uop.pc, uop.addr, uop.deps, uop.seq,
            uop.is_os, uop.tid, uop.taken, uop.target)


EDGE_UOPS = [
    # Plain ALU op, all defaults.
    MicroOp(OpKind.ALU, pc=0x4000),
    # Load with one dependency and OS mode set.
    MicroOp(OpKind.LOAD, pc=0x4008, addr=0xDEAD_BEE0, deps=(3,),
            seq=4, is_os=True),
    # Store with several dependencies on a nonzero thread.
    MicroOp(OpKind.STORE, pc=0x4010, addr=0x1_0000_0000,
            deps=(1, 2, 3, 4, 5), seq=6, tid=9),
    # Taken branch with a target (the BTB-relevant fields).
    MicroOp(OpKind.BRANCH, pc=0x4018, seq=7, taken=True,
            target=0x7FFF_FFFF_FFFF),
    # Not-taken branch: ``taken`` False must survive next to True.
    MicroOp(OpKind.BRANCH, pc=0x4020, seq=8, taken=False, target=0x4000),
    # 64-bit extremes in every Q column, 16-bit extreme in tid.
    MicroOp(OpKind.LOAD, pc=U64_MAX, addr=U64_MAX, deps=(U64_MAX,),
            seq=U64_MAX, tid=U16_MAX, is_os=True, taken=True,
            target=U64_MAX),
    # Zeroes everywhere.
    MicroOp(OpKind.ALU, pc=0, addr=0, deps=(), seq=0, tid=0, target=0),
]


class TestRoundTrip:
    def test_every_field_of_every_edge_uop(self):
        stream = encode_stream(EDGE_UOPS)
        decoded = list(stream.decode())
        assert len(decoded) == len(EDGE_UOPS)
        for original, restored in zip(EDGE_UOPS, decoded):
            assert fields_of(restored) == fields_of(original)

    def test_decoded_types_are_canonical(self):
        stream = encode_stream(EDGE_UOPS)
        for uop in stream.decode():
            assert isinstance(uop.deps, tuple)
            assert isinstance(uop.is_os, bool)
            assert isinstance(uop.taken, bool)

    def test_decode_is_repeatable(self):
        stream = encode_stream(EDGE_UOPS)
        first = [fields_of(u) for u in stream.decode()]
        second = [fields_of(u) for u in stream.decode()]
        assert first == second

    def test_long_dependency_list(self):
        deps = tuple(range(1, 1001))
        stream = encode_stream([MicroOp(OpKind.ALU, pc=8, deps=deps,
                                        seq=1001)])
        (decoded,) = stream.decode()
        assert decoded.deps == deps

    def test_live_stream_round_trips(self):
        from repro.core.workloads import build_app

        uops = list(build_app("sat-solver", seed=7).trace(0, 500))
        decoded = list(encode_stream(uops).decode())
        assert [fields_of(u) for u in decoded] == \
            [fields_of(u) for u in uops]


class TestContainerBehaviour:
    def test_len_and_nbytes(self):
        stream = encode_stream(EDGE_UOPS)
        assert len(stream) == len(EDGE_UOPS)
        total_deps = sum(len(u.deps) for u in EDGE_UOPS)
        itemsize = {"B": 1, "H": 2, "Q": 8}
        per_uop = sum(itemsize[code] for name, code in COLUMNS
                      if name != "deps")
        assert stream.nbytes() == \
            len(EDGE_UOPS) * per_uop + total_deps * 8

    def test_equality(self):
        assert encode_stream(EDGE_UOPS) == encode_stream(EDGE_UOPS)
        assert encode_stream(EDGE_UOPS) != encode_stream(EDGE_UOPS[:-1])
        assert encode_stream([]) == EncodedStream()

    def test_from_columns_round_trips(self):
        stream = encode_stream(EDGE_UOPS)
        raw = {name: column.tobytes()
               for (name, _), column in zip(COLUMNS, stream.columns())}
        assert EncodedStream.from_columns(raw) == stream

    def test_from_columns_rejects_misaligned_bytes(self):
        stream = encode_stream(EDGE_UOPS)
        raw = {name: column.tobytes()
               for (name, _), column in zip(COLUMNS, stream.columns())}
        raw["pc"] = raw["pc"][:-3]  # not a multiple of the itemsize
        with pytest.raises(ValueError):
            EncodedStream.from_columns(raw)


class TestOverflowDiscipline:
    @pytest.mark.parametrize("uop", [
        MicroOp(OpKind.ALU, pc=-1),
        MicroOp(OpKind.ALU, pc=8, addr=-5),
        MicroOp(OpKind.ALU, pc=8, seq=-1),
        MicroOp(OpKind.ALU, pc=8, deps=(-2,)),
        MicroOp(OpKind.ALU, pc=8, target=-1),
        MicroOp(OpKind.ALU, pc=2**64),
        MicroOp(OpKind.ALU, pc=8, tid=U16_MAX + 1),
        MicroOp(-1, pc=8),
        MicroOp(256, pc=8),
    ])
    def test_out_of_range_fields_raise(self, uop):
        with pytest.raises(OverflowError):
            EncodedStream().append(uop)

    def test_encode_stream_propagates_the_failure(self):
        # Capture must abort loudly on an unencodable uop — the failed
        # stream is discarded, never persisted in a truncated form.
        bad = EDGE_UOPS[:2] + [MicroOp(OpKind.ALU, pc=-1)]
        with pytest.raises(OverflowError):
            encode_stream(bad)

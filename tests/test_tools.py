"""Trace-dump developer tools."""

from repro.tools import dump_trace, format_uop, summarize
from repro.uarch.uop import MicroOp, OpKind


class TestFormatting:
    def test_format_load(self):
        uop = MicroOp(OpKind.LOAD, 0x400000, 0x1000, (3,), 9)
        line = format_uop(uop)
        assert "load" in line and "deps=3" in line and "addr=" in line

    def test_format_branch_direction(self):
        taken = MicroOp(OpKind.BRANCH, 0x400000, 0, (), 1, taken=True)
        assert "taken" in format_uop(taken)
        untaken = MicroOp(OpKind.BRANCH, 0x400000, 0, (), 2, taken=False)
        assert "not-taken" in format_uop(untaken)

    def test_format_os_tag(self):
        uop = MicroOp(OpKind.ALU, 0x400000, 0, (), 1, is_os=True)
        assert format_uop(uop).endswith("os")


class TestSummaries:
    def test_summary_counts(self):
        uops = [
            MicroOp(OpKind.LOAD, 0x40, 0x1000, (), 1),
            MicroOp(OpKind.LOAD, 0x44, 0x2000, (1,), 2),
            MicroOp(OpKind.STORE, 0x48, 0x3000, (), 3),
            MicroOp(OpKind.ALU, 0x4C, 0, (), 4, is_os=True),
            MicroOp(OpKind.BRANCH, 0x50, 0, (), 5),
        ]
        summary = summarize(uops)
        assert summary.total == 5
        assert summary.loads == 2 and summary.stores == 1
        assert summary.branches == 1 and summary.alu == 1
        assert summary.dependent_loads == 1
        assert summary.os_ops == 1
        assert summary.memory_fraction == 0.6

    def test_dump_trace_runs_a_real_workload(self):
        text, summary = dump_trace("sat-solver", 1_500, include_listing=False)
        assert summary.total >= 1_500
        assert summary.loads > 0
        assert "# workload=sat-solver" in text

    def test_dump_trace_listing(self):
        text, summary = dump_trace("parsec-cpu", 300)
        listing_lines = [l for l in text.splitlines()
                         if not l.startswith("#")]
        assert len(listing_lines) == summary.total

#!/usr/bin/env python3
"""Figure 3 on demand: the SMT study for selected workloads.

Runs each workload with one thread and with two SMT threads on one
core, reporting IPC and MLP for both — the paper's §4.2 result that the
independent threads of scale-out workloads gain 39-69 % aggregate IPC
from SMT while nearly doubling exploited MLP.

Usage:
    python examples/smt_study.py [workload ...]
        default: the six scale-out workloads
"""

import sys

from repro import RunConfig, analysis, run_workload, run_workload_smt
from repro.core.workloads import SCALE_OUT


def main() -> None:
    workloads = sys.argv[1:] or [spec.name for spec in SCALE_OUT]
    config = RunConfig(window_uops=60_000, warm_uops=20_000)
    header = (f"{'workload':<18}{'IPC':>7}{'IPC(SMT)':>10}{'gain':>8}"
              f"{'MLP':>7}{'MLP(SMT)':>10}")
    print(header)
    print("-" * len(header))
    for name in workloads:
        base = run_workload(name, config)
        smt = run_workload_smt(name, config)
        base_ipc = analysis.ipc(base.result)
        smt_ipc = analysis.ipc(smt.result)
        gain = smt_ipc / base_ipc - 1.0 if base_ipc else 0.0
        print(f"{name:<18}{base_ipc:>7.2f}{smt_ipc:>10.2f}{gain:>7.0%} "
              f"{base.result.mlp:>6.2f}{smt.result.mlp:>10.2f}")
    print("\n(the paper reports 39-69% SMT IPC gains for scale-out "
          "workloads, with MLP nearly doubling)")


if __name__ == "__main__":
    main()

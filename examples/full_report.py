#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation as one markdown report.

Runs Table 1, Figures 1-7, the §4-implications ablations, and the
claims-as-code verification, and writes everything to a single markdown
file (default: ``report.md``).

Usage:
    python examples/full_report.py [output.md] [window_uops]

At the default 60k window this takes several minutes — it is the whole
evaluation.  Pass a smaller window (e.g. 20000) for a quick draft.
"""

import sys
import time

from repro import RunConfig
from repro.core.experiments import ALL_EXPERIMENTS, ablations
from repro.core.paper import verify


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "report.md"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    config = RunConfig(window_uops=window, warm_uops=window // 3)

    sections = ["# Clearing the Clouds — regenerated evaluation", ""]
    sections.append(f"*window: {window:,} micro-ops per measurement*")
    sections.append("")

    started = time.time()
    for name, module in ALL_EXPERIMENTS.items():
        print(f"[{time.time() - started:6.0f}s] {name} ...")
        sections.append(module.run(config).to_markdown())
        sections.append("")

    for experiment in (ablations.narrow_cores, ablations.window_size,
                       ablations.llc_latency, ablations.instruction_fetch,
                       ablations.core_aggressiveness):
        print(f"[{time.time() - started:6.0f}s] {experiment.__name__} ...")
        sections.append(experiment(config).to_markdown())
        sections.append("")

    print(f"[{time.time() - started:6.0f}s] verification ...")
    sections.append(verify(config).to_markdown())
    sections.append("")

    with open(output, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {output} in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: characterize one workload on the simulated server.

Builds the Data Serving workload (a Cassandra-like store under YCSB
load), warms the memory hierarchy to steady state, runs a measurement
window on the simulated Xeon X5670-class core, and prints the counters
the paper reads: IPC, MLP, the execution-time breakdown, instruction
miss rates, and bandwidth utilization.

Usage:
    python examples/quickstart.py [workload] [window_uops]

    workload     one of `repro.workload_names()` (default: data-serving)
    window_uops  measurement window size (default: 100000)
"""

import sys

from repro import RunConfig, analysis, compute_breakdown, run_workload, workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "data-serving"
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000
    known = workload_names(include_mcf=True)
    if workload not in known:
        print(f"unknown workload {workload!r}; choose one of:")
        for name in known:
            print(f"  {name}")
        raise SystemExit(1)

    print(f"Running {workload} for a {window:,}-micro-op window "
          f"(plus functional warmup)...")
    config = RunConfig(window_uops=window, warm_uops=window // 3)
    run = run_workload(workload, config)
    r = run.result

    breakdown = compute_breakdown(r)
    print()
    print(f"== {workload} ==")
    print(f"instructions retired   {r.instructions:>12,}")
    print(f"cycles                 {r.cycles:>12,}")
    print(f"IPC (max 4)            {analysis.ipc(r):>12.2f}")
    print(f"application IPC        {analysis.application_ipc(r):>12.2f}")
    print(f"MLP                    {analysis.mlp(r):>12.2f}")
    print()
    print("execution-time breakdown (Figure 1 methodology):")
    print(f"  committing (app)     {breakdown.committing_app:>11.1%}")
    print(f"  committing (OS)      {breakdown.committing_os:>11.1%}")
    print(f"  stalled (app)        {breakdown.stalled_app:>11.1%}")
    print(f"  stalled (OS)         {breakdown.stalled_os:>11.1%}")
    print(f"  memory cycles        {breakdown.memory:>11.1%}   (overlapped)")
    print()
    print("instruction-fetch path (Figure 2):")
    print(f"  L1-I misses/k-instr  {analysis.instruction_mpki(r):>12.1f}")
    print(f"  L2-I misses/k-instr  {analysis.instruction_mpki(r, 'l2'):>12.1f}")
    print()
    print("memory system:")
    print(f"  L2 demand hit ratio  {analysis.l2_hit_ratio(r):>12.2f}")
    print(f"  off-chip bandwidth   {run.bandwidth_utilization():>11.1%} "
          "of the per-core share")
    print(f"  OS share of traffic  {run.os_bandwidth_fraction():>11.1%}")
    print()
    print(f"branch mispredict rate {analysis.branch_mispredict_rate(r):>11.1%}")
    print(f"OS instruction share   {analysis.os_instruction_fraction(r):>11.1%}")


if __name__ == "__main__":
    main()

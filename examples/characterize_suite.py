#!/usr/bin/env python3
"""Characterize the whole suite: a compact version of the paper's §4.

Runs every workload (scale-out on the left, traditional on the right,
like the paper's figures) and prints one row per workload with the
headline metrics from Figures 1, 2, 3, and 7.

Usage:
    python examples/characterize_suite.py [window_uops]
"""

import sys

from repro import RunConfig, analysis, compute_breakdown
from repro.core.runner import metric_mean, run_workload_members
from repro.core.workloads import ALL_WORKLOADS


def main() -> None:
    window = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    config = RunConfig(window_uops=window, warm_uops=window // 3)
    header = (f"{'workload':<17}{'group':<11}{'IPC':>6}{'MLP':>6}"
              f"{'stall%':>8}{'mem%':>7}{'os%':>6}{'L1I':>7}{'L2I':>6}"
              f"{'bw%':>6}")
    print(header)
    print("-" * len(header))
    previous_group_is_scale_out = True
    for spec in ALL_WORKLOADS:
        if previous_group_is_scale_out and spec.group != "scale-out":
            print("-" * len(header))  # the figures' left/right divider
            previous_group_is_scale_out = False
        runs = run_workload_members(spec.name, config)
        breakdowns = [compute_breakdown(r.result) for r in runs]
        stalled = sum(b.stalled for b in breakdowns) / len(breakdowns)
        memory = sum(b.memory for b in breakdowns) / len(breakdowns)
        bw = sum(r.bandwidth_utilization() for r in runs) / len(runs)
        print(
            f"{spec.display_name:<17}{spec.group:<11}"
            f"{metric_mean(runs, analysis.ipc):>6.2f}"
            f"{metric_mean(runs, analysis.mlp):>6.2f}"
            f"{stalled:>8.0%}{memory:>7.0%}"
            f"{metric_mean(runs, analysis.os_instruction_fraction):>6.0%}"
            f"{metric_mean(runs, analysis.instruction_mpki):>7.1f}"
            f"{metric_mean(runs, lambda r: analysis.instruction_mpki(r, 'l2')):>6.1f}"
            f"{bw:>6.1%}"
        )
    print()
    print("stall%/mem% per Figure 1; L1I/L2I are misses per k-instruction "
          "(Figure 2); bw% is the per-core share of off-chip bandwidth "
          "(Figure 7).")


if __name__ == "__main__":
    main()

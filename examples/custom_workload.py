#!/usr/bin/env python3
"""Build and characterize a NEW workload on the public API.

The library is extensible: a workload is a `ServerApp` subclass that
builds its dataset in simulated memory at `setup()` and emits one unit
of work per `serve()` call through the tracing runtime.  This example
implements a memcached-like object cache (hash table + slab allocator +
LRU eviction, UDP-ish request path) — a scale-out workload the paper
did not study — and characterizes it next to Data Serving.
"""

from repro import MachineParams, analysis, compute_breakdown
from repro.apps.base import ServerApp
from repro.load.distributions import ScrambledZipf
from repro.machine.runtime import Runtime
from repro.machine.structures import SimHashMap
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy

_LINE = 64


class MemcachedApp(ServerApp):
    """An in-memory object cache under a Zipfian get/set mix."""

    name = "memcached"
    os_intensive = True

    CODE_PLAN = [
        ("proto_parse", 64, "scatter", 8, 0.25),
        ("hash_lookup", 48, "scatter", 9, 0.3),
        ("slab_alloc", 64, "scatter", 8, 0.25),
        ("lru_maintain", 48, "scatter", 9, 0.3),
        ("item_ops", 96, "scatter", 8, 0.2),
        ("libevent", 128, "scatter", 7, 0.15),
    ]

    def __init__(self, seed: int = 0, items: int = 100_000,
                 value_bytes: int = 384) -> None:
        self.items = items
        self.value_bytes = value_bytes
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(f"memcached.{name}", kb * 1024,
                                       locality=loc, bb_mean=bb,
                                       hot_fraction=hot)
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        # Slab storage: values packed by size class.
        self.slab_base = self.space.alloc(self.items * self.value_bytes,
                                          "heap", align=_LINE)
        self.table = SimHashMap(self.space, nbuckets=self.items // 4)
        rt0 = self.runtime(0)
        for key in range(self.items):
            self.table.put(rt0, key, self.slab_base + key * self.value_bytes)
        rt0.take()  # discard the load phase
        self.keys = ScrambledZipf(self.items, seed=self.seed)
        self.gets = self.sets = 0
        self._req_buf = self.space.alloc(2048, "heap", align=_LINE)

    def warm_ranges(self):
        # The Zipfian hot set stays resident, like any cache's.
        hot = []
        for rank in range(12_000):
            key = ScrambledZipf._fnv(rank) % self.items
            hot.append((self.slab_base + key * self.value_bytes,
                        self.value_bytes))
        return hot

    def serve(self, rt: Runtime) -> None:
        key = self.keys.next()
        self.kernel.recv(rt, 64, into_base=self._req_buf,
                         sock_id=rt.tid * 97 + self.gets % 32)
        with rt.frame(self.fns["libevent"]):
            rt.alu(n=40, chain=False)
        with rt.frame(self.fns["proto_parse"]):
            token = rt.load(self._req_buf)
            rt.alu((token,), n=25, chain=False)
        with rt.frame(self.fns["hash_lookup"]):
            value_addr = self.table.get(rt, key)
        if self.gets % 10 == 9:  # 90:10 get/set mix
            self._set(rt, key, value_addr)
        else:
            self._get(rt, value_addr)
        self.kernel.send(rt, self.value_bytes + 48,
                         sock_id=rt.tid * 97 + self.gets % 32)
        self.gets += 1

    def _get(self, rt: Runtime, value_addr) -> None:
        with rt.frame(self.fns["item_ops"]):
            token = 0
            for off in range(0, self.value_bytes, _LINE):
                token = rt.load(value_addr + off, (token,) if token else ())
            rt.alu((token,), n=20, chain=False)
        with rt.frame(self.fns["lru_maintain"]):
            rt.store(value_addr, (token,))  # LRU timestamp in the header
            rt.alu(n=10, chain=False)

    def _set(self, rt: Runtime, key, value_addr) -> None:
        self.sets += 1
        with rt.frame(self.fns["slab_alloc"]):
            rt.alu(n=15, chain=False)
        with rt.frame(self.fns["item_ops"]):
            for off in range(0, self.value_bytes, _LINE):
                rt.store(value_addr + off)


def characterize(app, label: str) -> None:
    params = MachineParams()
    hierarchy = MemoryHierarchy(params)
    app.warm(hierarchy, trace_uops=30_000)
    core = Core(params, hierarchy)
    result = core.run([app.trace(0, 80_000)])
    breakdown = compute_breakdown(result)
    util = (result.offchip_bytes / (result.cycles / params.freq_hz)
            / (params.peak_bandwidth_bytes_per_s / 4))
    print(f"{label:<16} IPC={analysis.ipc(result):.2f} "
          f"MLP={result.mlp:.2f} "
          f"stalled={breakdown.stalled:.0%} "
          f"memory={breakdown.memory:.0%} "
          f"L1I-MPKI={analysis.instruction_mpki(result):.1f} "
          f"bw={util:.1%}")


def main() -> None:
    print("characterizing a custom workload against a CloudSuite one:\n")
    characterize(MemcachedApp(seed=1), "memcached")
    from repro.core.workloads import build_app
    characterize(build_app("data-serving", seed=1), "data-serving")
    print("\nmemcached behaves like its scale-out siblings: mostly "
          "stalled on memory, modest IPC and MLP, large I-footprint.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Figure 4 on demand: LLC-capacity sensitivity for chosen workloads.

Sweeps the LLC from 4 to 11 MB and reports user-IPC normalized to the
12 MB baseline.  Demonstrates both methodologies: direct LLC resizing
(default) and the paper's cache-polluter threads (§3.1), which occupy
part of the 12 MB LLC with pseudo-random array walks.

Usage:
    python examples/llc_sweep.py [workload ...]
        default workloads: web-search specint-mcf
"""

import sys
from dataclasses import replace

from repro import RunConfig, analysis, run_workload
from repro.core.polluter import polluter_array_bytes, warm_polluter
from repro.trace.capture import TraceKey
from repro.trace.pipeline import materialize
from repro.trace.replay import ReplaySource
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy

SIZES_MB = (4, 6, 8, 10, 11, 12)


def resize_method(name: str, config: RunConfig) -> dict[int, float]:
    """Shrink the LLC directly (exact).

    `run_workload` captures the workload's trace on the first size and
    replays it for the other five — the capture-once/replay-many split
    of docs/methodology.md §9.
    """
    curve = {}
    for size in SIZES_MB:
        params = config.params.with_llc_mb(size)
        run = run_workload(name, replace(config, params=params))
        curve[size] = analysis.application_ipc(run.result)
    return curve


def polluter_method(name: str, config: RunConfig) -> dict[int, float]:
    """Occupy LLC capacity with the §3.1 polluter working set.

    A custom harness over the same pipeline: one captured trace,
    replayed into a hand-prepared hierarchy per polluter size.
    """
    captured, _app = materialize(TraceKey.from_config(name, config))
    curve = {}
    for size in SIZES_MB:
        source = ReplaySource(captured)
        hierarchy = MemoryHierarchy(config.params)
        array_bytes = polluter_array_bytes(config.params, size)
        if array_bytes:
            warm_polluter(hierarchy.llc, array_bytes)
        source.warm_into(hierarchy)
        # Re-assert the polluters' residency (they run continuously on
        # their own cores, §3.1, so their array never leaves the LLC).
        if array_bytes:
            warm_polluter(hierarchy.llc, array_bytes)
        core = Core(config.params, hierarchy)
        result = core.run(source.streams())
        curve[size] = analysis.application_ipc(result)
    return curve


def main() -> None:
    workloads = sys.argv[1:] or ["web-search", "specint-mcf"]
    config = RunConfig(window_uops=60_000, warm_uops=20_000)
    print(f"{'LLC (MB)':>8}", end="")
    curves = {}
    for name in workloads:
        print(f"  {name + ' (resize)':>24}  {name + ' (polluter)':>24}", end="")
        curves[name] = (resize_method(name, config),
                        polluter_method(name, config))
    print()
    for size in SIZES_MB:
        print(f"{size:>8}", end="")
        for name in workloads:
            resized, polluted = curves[name]
            base_r, base_p = resized[12], polluted[12]
            print(f"  {resized[size] / base_r:>24.3f}"
                  f"  {polluted[size] / base_p:>24.3f}", end="")
        print()
    print("\n(user-IPC, normalized to the 12 MB baseline; the two methods "
          "should agree — the paper could only use polluters)")


if __name__ == "__main__":
    main()

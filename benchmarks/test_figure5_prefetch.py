"""Figure 5: L2 hit ratios with prefetchers enabled/disabled."""

from benchmarks.conftest import emit
from repro.core.experiments import figure5


def test_figure5_prefetchers(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure5.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure5", table)

    # Desktop/parallel benchmarks degrade noticeably when the HW
    # (stream) prefetcher is disabled.
    for name in ("PARSEC (cpu)", "PARSEC (mem)", "SPECint (mem)"):
        row = table.row_for("Workload", name)
        baseline = float(row["Baseline (all enabled)"])
        disabled = float(row["HW prefetcher (disabled)"])
        assert baseline - disabled > 0.1, name

    # MapReduce is the one scale-out workload that clearly benefits.
    assert figure5.prefetcher_benefit(table, "MapReduce") > 0.04

    # The other scale-out workloads see only small changes (within a few
    # points of hit ratio either way).
    for name in ("Data Serving", "Web Search", "SAT Solver"):
        benefit = figure5.prefetcher_benefit(table, name)
        assert abs(benefit) < 0.12, (name, benefit)

    # All ratios are physical.
    for row in table.rows:
        for col in ("Baseline (all enabled)", "Adjacent-line (disabled)",
                    "HW prefetcher (disabled)"):
            assert 0.0 <= float(row[col]) <= 1.0

"""Replay-engine throughput: the columnar fast path earns its keep.

Times one captured workload through both replay engines — the columnar
loop (:func:`repro.uarch.fastpath.replay_columns`) and the general
decoded-stream loop (:meth:`repro.uarch.core.Core.run`) — on identical
warmed hierarchies, and reports uops/s for each.

The assertion floor is deliberately modest (the CI runners and the
development container both suffer heavy, unpredictable host
contention): the columnar engine must be at least **2×** the general
loop on the same machine at the same moment.  The headline speedup on
the Figure 4 sweep against the pre-columnar per-uop baseline (3.2×
paired, 4.6× best-observed) is recorded in EXPERIMENTS.md from
alternating paired runs; this benchmark only guards against the fast
path silently rotting back into per-uop territory.
"""

from __future__ import annotations

from time import perf_counter

from repro.trace.capture import TraceKey, capture
from repro.trace.columns import batch_for
from repro.trace.replay import ReplaySource
from repro.uarch.core import Core
from repro.uarch.fastpath import replay_columns
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams

WINDOW = 40_000
WARM = 15_000
ROUNDS = 3  # best-of-N: absorbs host-contention spikes


def _timed_replay(captured, params: MachineParams, engine: str):
    source = ReplaySource(captured)
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        hierarchy = MemoryHierarchy(params)
        source.warm_into(hierarchy)
        core = Core(params, hierarchy)
        started = perf_counter()
        if engine == "columnar":
            result = replay_columns(core, batch_for(captured.streams[0]))
        else:
            result = core.run(source.streams())
        best = min(best, perf_counter() - started)
    return result, WINDOW / best


def test_columnar_engine_outruns_general_loop(results_dir):
    key = TraceKey("mapreduce", window_uops=WINDOW, warm_uops=WARM)
    captured, _app = capture(key)
    params = MachineParams()

    fast_result, fast_rate = _timed_replay(captured, params, "columnar")
    slow_result, slow_rate = _timed_replay(captured, params, "general")

    lines = [
        "replay-engine throughput (mapreduce, "
        f"{WINDOW} uops, best of {ROUNDS})",
        f"  columnar : {fast_rate:>12,.0f} uops/s",
        f"  general  : {slow_rate:>12,.0f} uops/s",
        f"  speedup  : {fast_rate / slow_rate:>12.2f}x",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    (results_dir / "replay_throughput.txt").write_text(text + "\n")

    # Same machine, same instant, same warmed state: the engines must
    # agree exactly, and the columnar loop must clearly win.
    assert (dict(fast_result.to_counters().values)
            == dict(slow_result.to_counters().values))
    assert fast_rate >= 2.0 * slow_rate, (
        f"columnar engine only {fast_rate / slow_rate:.2f}x the general "
        "loop - the fast path has regressed toward per-uop dispatch")

"""Ablations: the design changes §4's Implications argue for."""

from benchmarks.conftest import emit
from repro.core.experiments import ablations


def test_narrow_cores_beat_smt_for_scale_out(benchmark, harness_config,
                                             results_dir):
    table = benchmark.pedantic(
        ablations.narrow_cores, args=(harness_config.scaled(0.75),),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_narrow_cores", table)
    # §4.2: two 2-wide cores achieve higher aggregate performance than
    # one 4-wide SMT core for scale-out workloads.
    # Aggregate throughput of the two small cores matches or beats the
    # big SMT core for most of the scale-out workloads, at far less area.
    competitive = [
        row for row in table.rows
        if float(row["2x 2-wide IPC"]) > 0.92 * float(row["4-wide SMT IPC"])
    ]
    assert len(competitive) >= 2, table.to_text()


def test_window_size_matters_little_for_scale_out(benchmark, harness_config,
                                                  results_dir):
    table = benchmark.pedantic(
        ablations.window_size, args=(harness_config.scaled(0.75),),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_window_size", table)
    gain = {row["Workload"]: float(row["128-entry gain over 32"])
            for row in table.rows}
    # Scale-out workloads derive little benefit from a 4x larger window...
    assert gain["data-serving"] < 0.3
    # ...while the cpu-intensive contrast benefits far more than either
    # server-class workload.
    assert gain["parsec-cpu"] > gain["data-serving"] + 0.3
    assert gain["parsec-cpu"] > gain["tpc-c"]


def test_smaller_faster_llc_helps_scale_out(benchmark, harness_config,
                                            results_dir):
    table = benchmark.pedantic(
        ablations.llc_latency, args=(harness_config.scaled(0.75),),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_llc_latency", table)
    speedup = {row["Workload"]: float(row["Speedup"]) for row in table.rows}
    # Scale-out workloads tolerate (or enjoy) the smaller, faster LLC.
    assert speedup["web-search"] > 0.9
    assert speedup["media-streaming"] > 0.9
    # mcf, whose working set the big LLC captured, pays for the cut.
    assert speedup["specint-mcf"] < min(speedup["web-search"],
                                        speedup["media-streaming"])


def test_instruction_fetch_provisioning(benchmark, harness_config,
                                        results_dir):
    table = benchmark.pedantic(
        ablations.instruction_fetch, args=(harness_config.scaled(0.75),),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_instruction_fetch", table)
    reduction = {row["Workload"]: float(row["Miss reduction 32->128"])
                 for row in table.rows}
    # Growing the L1-I 4x removes a large share of scale-out frontend
    # misses (§4.1: the working set is an order of magnitude too big)...
    assert reduction["data-serving"] > 0.3
    assert reduction["media-streaming"] > 0.3
    # ...and does nothing for desktop code that already fits.
    assert abs(reduction["parsec-cpu"]) < 0.05


def test_core_aggressiveness_sweet_spot(benchmark, harness_config,
                                        results_dir):
    table = benchmark.pedantic(
        ablations.core_aggressiveness, args=(harness_config.scaled(0.6),),
        rounds=1, iterations=1,
    )
    emit(results_dir, "ablation_core_aggressiveness", table)
    rows = {row["Workload"]: row for row in table.rows}
    # In-order cores "cannot leverage the available ILP and MLP" — even
    # scale-out workloads want *some* out-of-order execution (§4.2).
    for name in ("data-serving", "web-search"):
        assert float(rows[name]["OoO gain"]) > 1.15, name
    # The step from modest to aggressive OoO pays off far more for
    # cpu-intensive desktop code than for scale-out workloads.
    assert (float(rows["parsec-cpu"]["Aggressive gain"])
            > float(rows["data-serving"]["Aggressive gain"]))
    assert (float(rows["parsec-cpu"]["Aggressive gain"])
            > float(rows["web-search"]["Aggressive gain"]))

"""Figure 7: off-chip memory bandwidth utilization."""

from benchmarks.conftest import emit
from repro.core.experiments import figure7
from repro.core.workloads import SCALE_OUT


def test_figure7_bandwidth(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure7.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure7", table)

    scale_out_names = [spec.display_name for spec in SCALE_OUT]
    utils = {name: figure7.total_utilization(table, name)
             for name in scale_out_names}

    # Scale-out workloads use a small fraction of the available per-core
    # bandwidth; Media Streaming is the heaviest, around 15 % (§4.4).
    assert max(utils, key=utils.get) == "Media Streaming"
    assert utils["Media Streaming"] < 0.25
    for name, util in utils.items():
        if name != "Media Streaming":
            assert util < 0.18, (name, util)

    # Web Frontend barely touches memory bandwidth.
    assert utils["Web Frontend"] < 0.05

    # cpu-intensive desktop/parallel benchmarks are compute-bound.
    for name in ("PARSEC (cpu)", "SPECint (cpu)"):
        assert figure7.total_utilization(table, name) < 0.05, name

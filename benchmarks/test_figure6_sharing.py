"""Figure 6: read-write sharing (remote-dirty LLC references)."""

from benchmarks.conftest import emit
from repro.core.experiments import figure6


def test_figure6_sharing(benchmark, harness_config, results_dir):
    config = harness_config.scaled(1.5)  # sharing needs a longer window
    table = benchmark.pedantic(
        figure6.run, args=(config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure6", table)

    def total(name):
        return figure6.total_sharing(table, name)

    # Traditional OLTP shares actively; the most sharing-intensive OLTP
    # workload clearly exceeds every scale-out workload's app sharing.
    oltp_max = max(total(n) for n in ("TPC-C", "TPC-E", "Web Backend"))
    assert oltp_max > 0.03

    # Scale-out workloads show limited read-write sharing.
    for name in ("MapReduce", "SAT Solver", "Web Search", "Web Frontend"):
        assert total(name) < 0.04, name

    # One-process-per-core benchmarks share nothing.
    for name in ("PARSEC (cpu)", "SPECint (cpu)"):
        assert total(name) < 0.005, name

    # Where scale-out OS sharing exists it comes from the network stack;
    # SPECweb09's OS component dominates its (small) sharing.
    specweb = table.row_for("Workload", "SPECweb09")
    assert float(specweb["OS"]) >= float(specweb["Application"])

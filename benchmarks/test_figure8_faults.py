"""Figure 8 (extension): healthy vs. degraded-mode characterization."""

from benchmarks.conftest import emit
from repro.core.experiments import figure8_faults


def test_figure8_degraded_modes(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure8_faults.run,
        args=(harness_config,),
        kwargs={"manifest_path": results_dir / "figure8_manifest.json",
                "fresh": True},
        rounds=1, iterations=1,
    )
    emit(results_dir, "figure8", table)

    # Degraded operation executes real extra error-handling code: the
    # L1-I instruction-miss rate must rise for every serving workload
    # (the paper's Figure 2 footprint argument, extended to faults).
    for workload in ("Data Serving", "MapReduce", "Media Streaming",
                     "Web Search"):
        assert figure8_faults.mpki_delta(table, workload) > 0.0, workload

    # Clients ride through the faults: retries happen, yet goodput
    # loss stays bounded for every degraded row.
    degraded = [row for row in table.rows if row["Mode"] == "degraded"]
    assert all(float(row["Goodput"]) >= 0.9 for row in degraded)
    assert sum(float(row["Retry rate"]) for row in degraded) > 0.0
    assert all(int(row["Faults"]) > 0 for row in degraded)

"""Figure 3: application IPC and MLP, baseline vs SMT."""

from benchmarks.conftest import emit
from repro.core.experiments import figure3
from repro.core.workloads import SCALE_OUT


def test_figure3_ipc_mlp(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure3.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure3", table)

    scale_out_names = [spec.display_name for spec in SCALE_OUT]

    # Scale-out IPC is modest despite the 4-wide core.
    for name in scale_out_names:
        ipc = float(table.row_for("Workload", name)["IPC"])
        assert 0.15 < ipc < 1.3, name

    # Some cpu-intensive desktop/parallel benchmarks use wide cores well.
    cpu_max = max(
        float(table.row_for("Workload", n)["IPC max"])
        for n in ("PARSEC (cpu)", "SPECint (cpu)")
    )
    assert cpu_max > 1.5

    # Scale-out MLP sits in a low band; Web Frontend is the lowest.
    mlps = {n: float(table.row_for("Workload", n)["MLP"])
            for n in scale_out_names}
    assert all(mlp < 4.0 for mlp in mlps.values())
    assert min(mlps, key=mlps.get) == "Web Frontend"

    # Desktop/parallel range bars reach far higher MLP.
    assert max(
        float(table.row_for("Workload", n)["MLP max"])
        for n in ("PARSEC (mem)", "SPECint (mem)")
    ) > 3.5

    # SMT improves scale-out IPC substantially (paper: 39-69 %).
    for name in scale_out_names:
        gain = figure3.smt_ipc_gain(table, name)
        assert gain > 0.3, (name, gain)

    # SMT increases exploited MLP (direction always; magnitude varies
    # with how dependence-starved the single thread already is).
    for name in ("Media Streaming", "MapReduce", "Data Serving"):
        row = table.row_for("Workload", name)
        assert float(row["MLP (SMT)"]) > 1.1 * float(row["MLP"]), name

"""Figure 4: performance sensitivity to LLC capacity."""

from benchmarks.conftest import emit
from repro.core.experiments import figure4


def test_figure4_llc_sensitivity(benchmark, harness_config, results_dir):
    config = harness_config.scaled(0.6)  # 10 configurations per curve
    table = benchmark.pedantic(
        figure4.run, args=(config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure4", table)

    sizes = table.column("Cache size (MB)")
    scale_out = [float(v) for v in table.column("Scale-out")]
    server = [float(v) for v in table.column("Server")]
    mcf = [float(v) for v in table.column("SPECint (mcf)")]

    at = dict(zip(sizes, zip(scale_out, server, mcf)))

    # Scale-out and server workloads show minimal sensitivity above
    # 4-6 MB: within ~10 % of the 12 MB baseline from 6 MB up.
    for size in (6, 8, 10, 11):
        so, sv, _ = at[size]
        assert so > 0.88, (size, so)
        assert sv > 0.9, (size, sv)

    # mcf keeps improving with every megabyte (§4.3's contrast case);
    # allow per-point measurement wobble of a couple of percent.
    for previous, current in zip(mcf, mcf[1:]):
        assert current > previous - 0.03, "mcf must trend upward"
    mcf_span = mcf[-1] / mcf[0]
    scale_out_span_above_6 = at[11][0] / at[6][0]
    assert mcf_span > 1.12
    assert mcf_span > scale_out_span_above_6 + 0.05

"""Figure 9 (extension): fleet tail latency and resilience counters."""

from benchmarks.conftest import emit
from repro.core.experiments import figure9_cluster


def test_figure9_fleet_resilience(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure9_cluster.run,
        args=(harness_config,),
        rounds=1, iterations=1,
    )
    emit(results_dir, "figure9", table)

    # Durability is non-negotiable: with R = 2, no fault scenario in
    # the grid may lose a quorum-acknowledged write.
    assert all(int(row["Lost"]) == 0 for row in table.rows)

    # The healthy baseline serves everything; every fault column pays
    # a visible tail-latency premium over it at the same fleet size.
    for fleet in figure9_cluster.DEFAULT_FLEETS:
        rows = {row["Fault"]: row for row in table.rows
                if row["Fleet"] == fleet and row["Skew"] == "uniform"}
        assert float(rows["none"]["Goodput"]) == 1.0
        for fault in ("node-crash", "slow-node", "partition"):
            assert (int(rows[fault]["p999 (us)"])
                    > int(rows["none"]["p999 (us)"])), (fleet, fault)

    # Bigger fleets spread the same load: the hottest node's share of
    # busy time shrinks monotonically on the healthy uniform rows.
    shares = [float(row["Hot share"]) for row in table.rows
              if row["Fault"] == "none" and row["Skew"] == "uniform"]
    assert shares == sorted(shares, reverse=True)

    # Faults surface in the resilience counters, not just the tail.
    crashed = [row for row in table.rows if row["Fault"] == "node-crash"]
    assert all(int(row["Eject"]) >= 1 for row in crashed)
    assert sum(int(row["Retries"]) for row in crashed) > 0

"""Figure 2: L1-I and L2 instruction misses per kilo-instruction."""

from benchmarks.conftest import emit
from repro.core.experiments import figure2


def test_figure2_instruction_misses(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure2.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure2", table)

    def l1i(name):
        return figure2.total_l1i_mpki(table, name)

    # Scale-out instruction working sets exceed the L1-I by an order of
    # magnitude compared to desktop/parallel benchmarks.
    desktop_max = max(l1i("PARSEC (cpu)"), l1i("SPECint (cpu)"),
                      l1i("PARSEC (mem)"), l1i("SPECint (mem)"))
    for name in ("Data Serving", "Media Streaming", "Web Search"):
        assert l1i(name) > 10 * max(desktop_max, 0.3), name

    # Traditional server workloads resemble scale-out.
    assert l1i("TPC-C") > 20
    assert l1i("SPECweb09") > 20

    # The OS instruction working set of scale-out workloads is smaller
    # than traditional server workloads' (§4.1).
    specweb_os = float(table.row_for("Workload", "SPECweb09")["L1-I (OS)"])
    scale_out_os = max(
        float(table.row_for("Workload", name)["L1-I (OS)"])
        for name in ("Data Serving", "Media Streaming", "Web Search")
    )
    assert specweb_os > scale_out_os * 0.9

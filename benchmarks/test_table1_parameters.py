"""Table 1: architectural parameters (echo + simulator self-check)."""

from benchmarks.conftest import emit
from repro.core.experiments import table1


def test_table1_parameters(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        table1.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "table1", table)
    values = {row["Parameter"]: row["Value"] for row in table.rows}
    assert values["Core width"] == "4-wide issue and retire"
    assert values["Reorder buffer"] == "128 entries"
    assert "12MB" in values["LLC (L3 cache)"]
    assert any("self-check passed" in note for note in table.notes)

"""Figure 1: execution-time breakdown and memory cycles."""

from benchmarks.conftest import emit
from repro.core.experiments import figure1


def test_figure1_breakdown(benchmark, harness_config, results_dir):
    table = benchmark.pedantic(
        figure1.run, args=(harness_config,), rounds=1, iterations=1
    )
    emit(results_dir, "figure1", table)

    scale_out = [row for row in table.rows if row["Group"] == "scale-out"]
    assert len(scale_out) == 6

    # Scale-out workloads stall for most of their execution time...
    for row in scale_out:
        stalled = figure1.stalled_fraction(table, row["Workload"])
        assert stalled > 0.5, row["Workload"]

    # ...mostly on memory (the overlapped Memory bar tracks the stalls).
    # Web Frontend (interpreter frontend stalls) and SAT Solver (compute)
    # are the two softer cases, as in the paper's Figure 1.
    memory_heavy = [row for row in scale_out
                    if row["Memory"] > 0.5 * figure1.stalled_fraction(
                        table, row["Workload"])]
    assert len(memory_heavy) >= 4

    # cpu-intensive desktop/parallel benchmarks stall far less.
    for name in ("PARSEC (cpu)", "SPECint (cpu)"):
        assert figure1.stalled_fraction(table, name) < 0.6, name

    # TPC-C spends over 80% of its time stalled (§4).
    assert figure1.stalled_fraction(table, "TPC-C") > 0.8

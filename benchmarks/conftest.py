"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper at the harness
measurement window, prints it (run with ``-s`` to see the tables
inline), and writes it to ``benchmarks/results/``.  All benchmarks in
one session share the runner's measurement cache, so figures that read
the same configuration (e.g. Figures 1, 2, and 7) simulate it once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.runner import RunConfig, clear_cache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The harness window: large enough for stable steady-state counters.
HARNESS = RunConfig(window_uops=80_000, warm_uops=30_000)


@pytest.fixture(autouse=True, scope="session")
def fresh_measurement_cache():
    """Benchmark sessions start and finish with a cold measurement cache.

    This prevents cross-contamination from an embedding process (e.g.
    the unit suite or a REPL that already populated the cache) while
    preserving the intra-session sharing the harness depends on.
    """
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="session")
def harness_config() -> RunConfig:
    return HARNESS


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, table) -> None:
    text = table.to_text()
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")

"""The claims-as-code verdict over the whole evaluation.

Runs last in the harness (alphabetical collection): every figure it
needs at these configurations is already in the measurement cache, so
this bench mostly re-reads and re-checks.
"""

from benchmarks.conftest import emit
from repro.core.paper import verify


def test_paper_claims_verify(benchmark, harness_config, results_dir):
    def run_verification():
        # Each figure at the window its own bench used, so the
        # measurement cache serves every run.
        main = verify(harness_config,
                      figures=["figure1", "figure2", "figure3",
                               "figure5", "figure7"])
        sharing = verify(harness_config.scaled(1.5), figures=["figure6"])
        llc = verify(harness_config.scaled(0.6), figures=["figure4"])
        for extra in (sharing, llc):
            for row in extra.rows:
                main.add_row(**row)
        return main

    report = benchmark.pedantic(run_verification, rounds=1, iterations=1)
    emit(results_dir, "verification", report)
    bad = [row for row in report.rows if row["OK"] != "yes"]
    assert not bad, report.to_text()
    # The two documented deviations must be reported as such, honestly.
    deviations = [row for row in report.rows if row["Verdict"] == "deviates"]
    assert len(deviations) == 2

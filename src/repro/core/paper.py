"""The paper's claims, as code.

Each qualitative claim of §4 is encoded as a :class:`Claim` with a
predicate over the regenerated tables.  ``verify()`` reproduces every
figure once and reports claim-by-claim verdicts — EXPERIMENTS.md,
regenerated programmatically (``python -m repro verify``).

Two claims are marked ``expected="partial"``: the Figure 5 pollution
sign flip and the Figure 3 SMT-MLP doubling, the documented deviations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig
from repro.core.workloads import SCALE_OUT

_SCALE_OUT = [spec.display_name for spec in SCALE_OUT]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper's evaluation."""

    figure: str
    text: str
    check: Callable[[dict[str, ExperimentTable]], bool]
    expected: str = "holds"  # or "partial" for documented deviations


def _fig1_scale_out_stalled(tables) -> bool:
    table = tables["figure1"]
    return all(figure1.stalled_fraction(table, name) > 0.5
               for name in _SCALE_OUT)


def _fig1_memory_dominates(tables) -> bool:
    table = tables["figure1"]
    heavy = sum(
        1 for name in _SCALE_OUT
        if float(table.row_for("Workload", name)["Memory"])
        > 0.5 * figure1.stalled_fraction(table, name)
    )
    return heavy >= 4


def _fig1_cpu_groups_stall_less(tables) -> bool:
    table = tables["figure1"]
    return all(figure1.stalled_fraction(table, name) < 0.6
               for name in ("PARSEC (cpu)", "SPECint (cpu)"))


def _fig1_tpcc_over_80(tables) -> bool:
    return figure1.stalled_fraction(tables["figure1"], "TPC-C") > 0.8


def _fig2_order_of_magnitude(tables) -> bool:
    table = tables["figure2"]
    desktop = max(figure2.total_l1i_mpki(table, n)
                  for n in ("PARSEC (cpu)", "SPECint (cpu)"))
    return all(
        figure2.total_l1i_mpki(table, name) > 10 * max(desktop, 0.2)
        for name in ("Data Serving", "Media Streaming", "Web Search")
    )


def _fig2_os_smaller_than_server(tables) -> bool:
    table = tables["figure2"]
    specweb_os = float(table.row_for("Workload", "SPECweb09")["L1-I (OS)"])
    scale_out_os = max(
        float(table.row_for("Workload", n)["L1-I (OS)"])
        for n in ("Data Serving", "Media Streaming", "Web Search")
    )
    return specweb_os > 0.9 * scale_out_os


def _fig3_modest_ipc(tables) -> bool:
    table = tables["figure3"]
    return all(
        0.15 < float(table.row_for("Workload", n)["IPC"]) < 1.3
        for n in _SCALE_OUT
    )


def _fig3_low_mlp_wf_lowest(tables) -> bool:
    table = tables["figure3"]
    mlps = {n: float(table.row_for("Workload", n)["MLP"]) for n in _SCALE_OUT}
    return max(mlps.values()) < 4.0 and min(mlps, key=mlps.get) == "Web Frontend"


def _fig3_smt_gains(tables) -> bool:
    table = tables["figure3"]
    return all(figure3.smt_ipc_gain(table, n) > 0.3 for n in _SCALE_OUT)


def _fig3_smt_doubles_mlp(tables) -> bool:
    table = tables["figure3"]
    return all(
        float(table.row_for("Workload", n)["MLP (SMT)"])
        > 1.7 * float(table.row_for("Workload", n)["MLP"])
        for n in _SCALE_OUT
    )


def _fig4_flat_above_6mb(tables) -> bool:
    table = tables["figure4"]
    return all(
        float(table.row_for("Cache size (MB)", size)["Scale-out"]) > 0.88
        for size in (6, 8, 10, 11)
        if any(row["Cache size (MB)"] == size for row in table.rows)
    )


def _fig4_mcf_scales(tables) -> bool:
    table = tables["figure4"]
    mcf = [float(v) for v in table.column("SPECint (mcf)")]
    return mcf[-1] / mcf[0] > 1.12


def _fig5_desktop_needs_prefetchers(tables) -> bool:
    table = tables["figure5"]
    return all(
        float(table.row_for("Workload", n)["Baseline (all enabled)"])
        - float(table.row_for("Workload", n)["HW prefetcher (disabled)"])
        > 0.1
        for n in ("PARSEC (mem)", "SPECint (mem)")
    )


def _fig5_mapreduce_benefits(tables) -> bool:
    return figure5.prefetcher_benefit(tables["figure5"], "MapReduce") > 0.04


def _fig5_pollution_flip(tables) -> bool:
    table = tables["figure5"]
    return all(
        figure5.prefetcher_benefit(table, n) < 0.0
        for n in ("Media Streaming", "SAT Solver")
    )


def _fig6_scale_out_minimal(tables) -> bool:
    table = tables["figure6"]
    return all(
        figure6.total_sharing(table, n) < 0.04
        for n in ("MapReduce", "SAT Solver", "Web Search", "Web Frontend")
    )


def _fig6_oltp_highest(tables) -> bool:
    table = tables["figure6"]
    oltp = max(figure6.total_sharing(table, n)
               for n in ("TPC-C", "TPC-E", "Web Backend"))
    scale_out = max(figure6.total_sharing(table, n) for n in _SCALE_OUT)
    return oltp > 0.03 and oltp > scale_out


def _fig7_scale_out_low(tables) -> bool:
    table = tables["figure7"]
    return all(figure7.total_utilization(table, n) < 0.3 for n in _SCALE_OUT)


def _fig7_media_max(tables) -> bool:
    table = tables["figure7"]
    utils = {n: figure7.total_utilization(table, n) for n in _SCALE_OUT}
    return max(utils, key=utils.get) == "Media Streaming"


CLAIMS: list[Claim] = [
    Claim("figure1", "Scale-out workloads stall for most of their cycles",
          _fig1_scale_out_stalled),
    Claim("figure1", "Those stalls are predominantly memory stalls",
          _fig1_memory_dominates),
    Claim("figure1", "cpu-intensive desktop/parallel stall well under the "
          "scale-out level", _fig1_cpu_groups_stall_less),
    Claim("figure1", "TPC-C is stalled over 80% of the time",
          _fig1_tpcc_over_80),
    Claim("figure2", "Scale-out instruction MPKI is an order of magnitude "
          "above desktop/parallel", _fig2_order_of_magnitude),
    Claim("figure2", "Scale-out OS instruction working sets are smaller "
          "than traditional server ones", _fig2_os_smaller_than_server),
    Claim("figure3", "Scale-out IPC is modest despite the 4-wide core",
          _fig3_modest_ipc),
    Claim("figure3", "Scale-out MLP is low, with Web Frontend the lowest",
          _fig3_low_mlp_wf_lowest),
    Claim("figure3", "SMT improves scale-out IPC substantially (39-69%)",
          _fig3_smt_gains),
    Claim("figure3", "SMT nearly doubles exploited MLP",
          _fig3_smt_doubles_mlp, expected="partial"),
    Claim("figure4", "Scale-out performance is flat above 4-6 MB of LLC",
          _fig4_flat_above_6mb),
    Claim("figure4", "mcf keeps improving with LLC capacity",
          _fig4_mcf_scales),
    Claim("figure5", "Disabling prefetchers hurts desktop/parallel "
          "benchmarks badly", _fig5_desktop_needs_prefetchers),
    Claim("figure5", "MapReduce is the one scale-out workload that clearly "
          "benefits from prefetching", _fig5_mapreduce_benefits),
    Claim("figure5", "Media Streaming and SAT Solver improve when "
          "prefetching is disabled", _fig5_pollution_flip,
          expected="partial"),
    Claim("figure6", "Scale-out read-write sharing is minimal",
          _fig6_scale_out_minimal),
    Claim("figure6", "Traditional OLTP shares the most",
          _fig6_oltp_highest),
    Claim("figure7", "Scale-out workloads use a small fraction of off-chip "
          "bandwidth", _fig7_scale_out_low),
    Claim("figure7", "Media Streaming is the scale-out bandwidth maximum",
          _fig7_media_max),
]

_FIGURE_RUNNERS = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
}


def verify(config: RunConfig | None = None,
           figures: list[str] | None = None) -> ExperimentTable:
    """Regenerate the needed figures and check every claim against them.

    Returns a table with one row per claim: its verdict (``holds`` /
    ``deviates``) against what the reproduction expects (documented
    deviations are expected to deviate)."""
    config = config or RunConfig()
    wanted = set(figures) if figures else set(_FIGURE_RUNNERS)
    tables: dict[str, ExperimentTable] = {
        name: _FIGURE_RUNNERS[name](config) for name in sorted(wanted)
    }
    report = ExperimentTable(
        title="Verification: the paper's claims vs this reproduction.",
        columns=["Figure", "Claim", "Verdict", "Expected", "OK"],
    )
    for claim in CLAIMS:
        if claim.figure not in wanted:
            continue
        holds = bool(claim.check(tables))
        verdict = "holds" if holds else "deviates"
        expected_verdict = "holds" if claim.expected == "holds" else "deviates"
        report.add_row(
            Figure=claim.figure,
            Claim=claim.text,
            Verdict=verdict,
            Expected=claim.expected,
            OK="yes" if verdict == expected_verdict else "NO",
        )
    return report

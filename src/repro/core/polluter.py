"""LLC-capacity sensitivity methodology (Figure 4, §3.1).

The paper cannot resize its hardware LLC, so it dedicates two cores to
*cache-polluting threads* — pseudo-random walks over arrays sized so
that all accesses miss the upper caches and hit (and thereby occupy)
the LLC, shrinking the capacity left to the workload.

The simulator can do both: run the actual polluter threads on a shared
chip (``method="polluter"``, faithful to the paper) or resize the LLC
directly (``method="resize"``, exact and cheaper — the default for the
benchmark harness).  A test asserts the two methods agree.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.uarch.cache import Cache
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp, OpKind

_LINE = 64
_POLLUTER_BASE = 0x70_0000_0000  # far away from any workload region
_POLLUTER_CODE = 0x0030_0000


def polluter_trace(
    array_bytes: int,
    num_uops: int,
    seed: int = 0,
    tid: int = 0,
) -> Iterator[MicroOp]:
    """The §3.1 polluter thread: a pseudo-random array walk.

    Every access targets a distinct line of the array in a shuffled
    order, so upper-level caches miss and the LLC retains the whole
    array (the paper verifies ~100 % LLC hit ratio for the polluters).
    """
    lines = max(1, array_bytes // _LINE)
    rng = random.Random(seed)
    order = list(range(lines))
    rng.shuffle(order)
    seq = 0
    position = 0
    emitted = 0
    while emitted < num_uops:
        line = order[position % lines]
        position += 1
        seq += 1
        emitted += 1
        yield MicroOp(
            OpKind.LOAD,
            _POLLUTER_CODE + (seq % 1024) * 4,
            _POLLUTER_BASE + line * _LINE,
            (),
            seq,
            tid=tid,
        )
        if emitted < num_uops:
            seq += 1
            emitted += 1
            yield MicroOp(OpKind.ALU, _POLLUTER_CODE + (seq % 1024) * 4,
                          0, (), seq, tid=tid)


def warm_polluter(llc: Cache, array_bytes: int) -> None:
    """Pre-install the polluter array in the LLC (its steady state)."""
    for offset in range(0, array_bytes, _LINE):
        llc.fill(_POLLUTER_BASE + offset)


def polluted_params(params: MachineParams, effective_mb: float) -> MachineParams:
    """The 'resize' method: an LLC of ``effective_mb`` megabytes."""
    return params.with_llc_mb(effective_mb)


def polluter_array_bytes(params: MachineParams, effective_mb: float) -> int:
    """How much LLC the polluters must occupy to leave ``effective_mb``."""
    total = params.llc.size_bytes
    target = int(effective_mb * (1 << 20))
    if target > total:
        raise ValueError(
            f"effective capacity {effective_mb} MB exceeds the "
            f"{total // (1 << 20)} MB LLC"
        )
    return total - target

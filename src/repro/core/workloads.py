"""The workload registry: CloudSuite (§3.2) + traditional (§3.3).

Names, display order, and grouping follow the paper's figures: the six
scale-out workloads on the left, the traditional benchmarks on the
right.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.base import ServerApp
from repro.apps.kvstore import DataServingApp
from repro.apps.mapreduce import MapReduceApp
from repro.apps.oltp import TpccApp, TpceApp
from repro.apps.satsolver import SatSolverApp
from repro.apps.specweb import SpecWebApp
from repro.apps.streaming import MediaStreamingApp
from repro.apps.synth import (
    McfApp,
    ParsecCpuApp,
    ParsecMemApp,
    SpecIntCpuApp,
    SpecIntMemApp,
)
from repro.apps.webbackend import WebBackendApp
from repro.apps.websearch import WebSearchApp
from repro.apps.webstack import WebFrontendApp


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark configuration."""

    name: str
    display_name: str
    factory: Callable[[int], ServerApp]
    group: str  # 'scale-out', 'desktop', 'parallel', 'web', 'oltp'
    multithreaded: bool = True  # server apps share one instance per chip


def _spec(name, display, cls, group, multithreaded=True) -> WorkloadSpec:
    return WorkloadSpec(name, display, lambda seed=0: cls(seed=seed), group,
                        multithreaded)


SCALE_OUT: list[WorkloadSpec] = [
    _spec("data-serving", "Data Serving", DataServingApp, "scale-out"),
    _spec("mapreduce", "MapReduce", MapReduceApp, "scale-out"),
    _spec("media-streaming", "Media Streaming", MediaStreamingApp, "scale-out"),
    _spec("sat-solver", "SAT Solver", SatSolverApp, "scale-out", multithreaded=False),
    _spec("web-frontend", "Web Frontend", WebFrontendApp, "scale-out"),
    _spec("web-search", "Web Search", WebSearchApp, "scale-out"),
]

TRADITIONAL: list[WorkloadSpec] = [
    _spec("parsec-cpu", "PARSEC (cpu)", ParsecCpuApp, "parallel", multithreaded=False),
    _spec("parsec-mem", "PARSEC (mem)", ParsecMemApp, "parallel", multithreaded=False),
    _spec("specint-cpu", "SPECint (cpu)", SpecIntCpuApp, "desktop", multithreaded=False),
    _spec("specint-mem", "SPECint (mem)", SpecIntMemApp, "desktop", multithreaded=False),
    _spec("specweb09", "SPECweb09", SpecWebApp, "web"),
    _spec("tpc-c", "TPC-C", TpccApp, "oltp"),
    _spec("tpc-e", "TPC-E", TpceApp, "oltp"),
    _spec("web-backend", "Web Backend", WebBackendApp, "oltp"),
]

#: The mcf reference used by Figure 4 (not part of the 14 suite bars).
MCF = _spec("specint-mcf", "SPECint (mcf)", McfApp, "desktop", multithreaded=False)

ALL_WORKLOADS: list[WorkloadSpec] = SCALE_OUT + TRADITIONAL

REGISTRY: dict[str, WorkloadSpec] = {
    spec.name: spec for spec in ALL_WORKLOADS + [MCF]
}

#: The workloads the paper averages as "Server" in Figure 4.
SERVER_GROUP = ["tpc-c", "tpc-e", "web-backend"]


def build_app(name: str, seed: int = 0) -> ServerApp:
    """Instantiate a registered workload application."""
    spec = REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
    return spec.factory(seed)


def workload_names(include_mcf: bool = False) -> list[str]:
    """The registered workload names in the figures' display order."""
    names = [spec.name for spec in ALL_WORKLOADS]
    if include_mcf:
        names.append(MCF.name)
    return names

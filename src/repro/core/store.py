"""Persistent on-disk result store: one JSON document per fingerprint.

Measurements are deterministic given their configuration, so a result
keyed by :func:`~repro.core.sweep.config_fingerprint` never goes stale
— repeated figure regeneration can skip every cell it has already run,
across process invocations.  Layout::

    ~/.cache/repro/results-v<SCHEMA>/<fingerprint>.json

``REPRO_CACHE_DIR`` overrides the root (tests point it at a tmpdir);
otherwise ``XDG_CACHE_HOME``/``~/.cache`` conventions apply.  The
schema version sits in the directory name *and* in every document, so
a result written by an incompatible build is a miss, never a wrong
answer.  Writes reuse the manifest's atomic temp-file + ``os.replace``
discipline — a kill mid-write leaves the store consistent.

Documents are intentionally minimal: the run's name, its full
configuration (round-tripped through the same dataclasses), and the
``CoreResult`` counters.  Live app state never touches disk; a run
restored from the store has ``app=None``, which is all the figure
modules need.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

from repro.core.runner import RunConfig, WorkloadRun
from repro.faults.manifest import atomic_write_json
from repro.faults.plan import FaultEvent, FaultPlan
from repro.uarch.core import CoreResult
from repro.uarch.params import CacheParams, MachineParams, PrefetcherParams

__all__ = [
    "SCHEMA_VERSION",
    "ResultStore",
    "default_cache_dir",
    "run_to_dict",
    "run_from_dict",
]

#: Bump whenever the stored document shape or the semantics of the
#: counters change; old directories are simply ignored (and reported
#: as stale by ``python -m repro cache``).
SCHEMA_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    """The store root: ``$REPRO_CACHE_DIR``, else XDG, else ~/.cache."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def _config_to_dict(config: RunConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_dict(data: dict) -> RunConfig:
    params_data = dict(data["params"])
    for cache_field in ("l1i", "l1d", "l2", "llc"):
        params_data[cache_field] = CacheParams(**params_data[cache_field])
    params_data["prefetch"] = PrefetcherParams(**params_data["prefetch"])
    params = MachineParams(**params_data)
    plan_data = data.get("fault_plan")
    plan = None
    if plan_data is not None:
        plan = FaultPlan(
            events=tuple(FaultEvent(**event) for event in plan_data["events"]),
            seed=plan_data["seed"],
        )
    return RunConfig(
        params=params,
        window_uops=data["window_uops"],
        warm_uops=data["warm_uops"],
        seed=data["seed"],
        fault_plan=plan,
    )


def run_to_dict(run: WorkloadRun) -> dict:
    """A JSON-safe payload for one run (also the pool-worker wire form)."""
    return {
        "name": run.name,
        "config": _config_to_dict(run.config),
        "result": dataclasses.asdict(run.result),
    }


def run_from_dict(data: dict) -> WorkloadRun:
    """Rebuild a run from :func:`run_to_dict` output (``app`` is None)."""
    return WorkloadRun(
        name=data["name"],
        config=_config_from_dict(data["config"]),
        result=CoreResult(**data["result"]),
        app=None,
    )


class ResultStore:
    """A directory of fingerprint-keyed result documents."""

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.directory = self.root / f"results-v{SCHEMA_VERSION}"

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> list[WorkloadRun] | None:
        """The stored runs for ``fingerprint``, or None on any defect."""
        try:
            raw = json.loads(self.path_for(fingerprint).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        if not isinstance(raw, dict):
            return None
        if raw.get("schema") != SCHEMA_VERSION:
            return None
        if raw.get("fingerprint") != fingerprint:
            return None  # renamed/copied file: don't trust it
        try:
            return [run_from_dict(entry) for entry in raw["runs"]]
        except (KeyError, TypeError, ValueError):
            return None  # torn or hand-edited document: recompute

    def put(self, fingerprint: str, runs: list[WorkloadRun]) -> None:
        """Persist ``runs`` under ``fingerprint`` atomically."""
        document = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "runs": [run_to_dict(run) for run in runs],
        }
        atomic_write_json(self.path_for(fingerprint), document)

    def stats(self) -> dict:
        """Entry count, total bytes, and stale-version leftovers."""
        entries = 0
        nbytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                entries += 1
                nbytes += path.stat().st_size
        stale = [
            p.name for p in self.root.glob("results-v*")
            if p.is_dir() and p != self.directory
        ] if self.root.is_dir() else []
        return {
            "path": str(self.directory),
            "entries": entries,
            "bytes": nbytes,
            "stale_versions": sorted(stale),
        }

    def clear(self) -> int:
        """Remove every current-version entry; returns how many."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

"""Persistent on-disk result store: one JSON document per fingerprint.

Measurements are deterministic given their configuration, so a result
keyed by :func:`~repro.core.sweep.config_fingerprint` never goes stale
— repeated figure regeneration can skip every cell it has already run,
across process invocations.  Layout::

    ~/.cache/repro/results-v<SCHEMA>/<fingerprint>.json

``REPRO_CACHE_DIR`` overrides the root (tests point it at a tmpdir);
otherwise ``XDG_CACHE_HOME``/``~/.cache`` conventions apply.  The
schema version sits in the directory name *and* in every document, so
a result written by an incompatible build is a miss, never a wrong
answer.  Writes reuse the manifest's atomic temp-file + ``os.replace``
discipline — a kill mid-write leaves the store consistent.

Documents are intentionally minimal: the run's name, its full
configuration (round-tripped through the same dataclasses), and the
``CoreResult`` counters.  Live app state never touches disk; a run
restored from the store has ``app=None``, which is all the figure
modules need.

Defective documents are never silently recomputed-over: a document
that fails to parse, carries the wrong fingerprint (renamed/copied
file), or violates the physical invariants in
:mod:`repro.core.validate` is **quarantined** into ``corrupt/`` next to
the results directory, with a ``.reason`` sidecar recording the
diagnosis — the evidence survives for ``python -m repro doctor``
instead of being destroyed by the next ``put``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib

from repro.core.runner import RunConfig, WorkloadRun
from repro.core.validate import (check_cluster_summary, check_cost_model,
                                 check_result, validate_cluster_summaries,
                                 validate_cost_model, validate_runs)
from repro.faults.manifest import atomic_write_json
from repro.faults.plan import FaultEvent, FaultPlan
from repro.uarch.core import CoreResult
from repro.uarch.params import CacheParams, MachineParams, PrefetcherParams

__all__ = [
    "SCHEMA_VERSION",
    "ResultStore",
    "default_cache_dir",
    "run_to_dict",
    "run_from_dict",
]

#: Bump whenever the stored document shape or the semantics of the
#: counters change; old directories are simply ignored (and reported
#: as stale by ``python -m repro cache``).
SCHEMA_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    # repro-lint: sanitizer -- environment chooses where results live, never what they contain
    """The store root: ``$REPRO_CACHE_DIR``, else XDG, else ~/.cache."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


def _config_to_dict(config: RunConfig) -> dict:
    return dataclasses.asdict(config)


def _config_from_dict(data: dict) -> RunConfig:
    params_data = dict(data["params"])
    for cache_field in ("l1i", "l1d", "l2", "llc"):
        params_data[cache_field] = CacheParams(**params_data[cache_field])
    params_data["prefetch"] = PrefetcherParams(**params_data["prefetch"])
    params = MachineParams(**params_data)
    plan_data = data.get("fault_plan")
    plan = None
    if plan_data is not None:
        plan = FaultPlan(
            events=tuple(FaultEvent(**event) for event in plan_data["events"]),
            seed=plan_data["seed"],
        )
    return RunConfig(
        params=params,
        window_uops=data["window_uops"],
        warm_uops=data["warm_uops"],
        seed=data["seed"],
        fault_plan=plan,
    )


def run_to_dict(run: WorkloadRun) -> dict:
    """A JSON-safe payload for one run (also the pool-worker wire form)."""
    return {
        "name": run.name,
        "config": _config_to_dict(run.config),
        "result": dataclasses.asdict(run.result),
    }


def run_from_dict(data: dict) -> WorkloadRun:
    """Rebuild a run from :func:`run_to_dict` output (``app`` is None)."""
    return WorkloadRun(
        name=data["name"],
        config=_config_from_dict(data["config"]),
        result=CoreResult(**data["result"]),
        app=None,
    )


class ResultStore:
    """A directory of fingerprint-keyed result documents."""

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.directory = self.root / f"results-v{SCHEMA_VERSION}"
        self.corrupt_directory = self.root / "corrupt"

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.json"

    def _decode(self, path: pathlib.Path,
                fingerprint: str) -> tuple[dict | None, str | None]:
        """``(payload, None)`` for a healthy document — ``{"runs":
        [WorkloadRun, ...]}`` for microarchitectural results or
        ``{"cluster": [summary, ...]}`` for fleet results —
        ``(None, reason)`` for a defective one, ``(None, None)`` for a
        plain miss."""
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None, None
        except OSError as exc:
            return None, f"unreadable: {exc}"
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            return None, f"not valid JSON ({exc})"
        if not isinstance(raw, dict):
            return None, "document is not a JSON object"
        if raw.get("schema") != SCHEMA_VERSION:
            return None, (f"schema {raw.get('schema')!r} inside the "
                          f"v{SCHEMA_VERSION} directory")
        if raw.get("fingerprint") != fingerprint:
            return None, (f"fingerprint field {raw.get('fingerprint')!r} "
                          "does not match the filename (renamed or copied "
                          "document)")
        if "calibration" in raw:
            model = raw["calibration"]
            violations = check_cost_model(model)
            if violations:
                return None, "; ".join(violations)
            return {"calibration": model}, None
        if "cluster" in raw:
            summaries = raw["cluster"]
            if not isinstance(summaries, list):
                return None, "cluster payload is not a list of summaries"
            violations = [
                f"summary {index}: {violation}"
                for index, summary in enumerate(summaries)
                for violation in check_cluster_summary(summary)
            ]
            if violations:
                return None, "; ".join(violations)
            return {"cluster": summaries}, None
        try:
            runs = [run_from_dict(entry) for entry in raw["runs"]]
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"undecodable runs ({type(exc).__name__}: {exc})"
        violations = [
            f"run {run.name!r}: {violation}"
            for run in runs
            for violation in check_result(run.result, run.config.params)
        ]
        if violations:
            return None, "; ".join(violations)
        return {"runs": runs}, None

    def get(self, fingerprint: str) -> list[WorkloadRun] | None:
        """The stored runs for ``fingerprint``, or None on a miss.

        A *defective* document (torn, renamed, or physically
        implausible) is also a miss, but it is quarantined into
        ``corrupt/`` first so the evidence survives recomputation.  A
        healthy *cluster* document under this fingerprint is a miss
        too (fingerprints embed the cell kind, so this only happens if
        a caller mixes keys).
        """
        payload, defect = self._decode(self.path_for(fingerprint), fingerprint)
        if defect is not None:
            self.quarantine(fingerprint, defect)
            return None
        if payload is None:
            return None
        return payload.get("runs")

    def get_cluster(self, fingerprint: str) -> list[dict] | None:
        """The stored fleet summaries for ``fingerprint``, or None.

        Defective documents quarantine exactly as in :meth:`get`.
        """
        payload, defect = self._decode(self.path_for(fingerprint), fingerprint)
        if defect is not None:
            self.quarantine(fingerprint, defect)
            return None
        if payload is None:
            return None
        return payload.get("cluster")

    def get_calibration(self, fingerprint: str) -> dict | None:
        """The stored service-cost-model document, or None.

        Defective documents quarantine exactly as in :meth:`get`.
        """
        payload, defect = self._decode(self.path_for(fingerprint), fingerprint)
        if defect is not None:
            self.quarantine(fingerprint, defect)
            return None
        if payload is None:
            return None
        return payload.get("calibration")

    def put_calibration(self, fingerprint: str, model: dict,
                        validate: bool = True) -> None:
        """Persist one service-cost-model document under ``fingerprint``."""
        if validate:
            validate_cost_model(
                model, context=f"store put {fingerprint[:12]}")
        document = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "calibration": model,
        }
        atomic_write_json(self.path_for(fingerprint), document)

    def put_cluster(self, fingerprint: str, summaries: list[dict],
                    validate: bool = True) -> None:
        """Persist fleet-cell ``summaries`` under ``fingerprint``."""
        if validate:
            validate_cluster_summaries(
                summaries, context=f"store put {fingerprint[:12]}")
        document = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "cluster": summaries,
        }
        atomic_write_json(self.path_for(fingerprint), document)

    def put(self, fingerprint: str, runs: list[WorkloadRun],
            validate: bool = True) -> None:
        """Persist ``runs`` under ``fingerprint`` atomically.

        By default the runs are validated first — a miscomputed result
        raises :class:`~repro.core.validate.ValidationError` instead of
        poisoning the store.  Callers that already validated (the sweep
        engine) pass ``validate=False``.
        """
        if validate:
            validate_runs(runs, context=f"store put {fingerprint[:12]}")
        document = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "runs": [run_to_dict(run) for run in runs],
        }
        atomic_write_json(self.path_for(fingerprint), document)

    def quarantine(self, fingerprint: str, reason: str) -> pathlib.Path | None:
        """Move a defective document into ``corrupt/``, keeping evidence.

        A ``.reason`` sidecar records the diagnosis.  Returns the new
        path, or None if the document vanished concurrently.
        """
        source = self.path_for(fingerprint)
        target = self.corrupt_directory / source.name
        self.corrupt_directory.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(source, target)
        except OSError:
            return None  # vanished (or unmovable) concurrently
        atomic_write_json(target.with_suffix(".reason"),
                          {"fingerprint": fingerprint, "reason": reason})
        return target

    def doctor(self, repair: bool = True) -> dict:
        """Scan every document; quarantine (or just report) defects.

        Returns a report dictionary: how many documents were scanned
        and healthy, the ``(fingerprint, reason)`` defect list, whether
        they were quarantined, plus the pre-existing ``corrupt/``
        population and stale schema directories.
        """
        scanned = 0
        healthy = 0
        defects: list[tuple[str, str]] = []
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                payload, defect = self._decode(path, path.stem)
                if payload is None and defect is None:
                    continue  # removed while we scanned
                scanned += 1
                if defect is None:
                    healthy += 1
                    continue
                defects.append((path.stem, defect))
                if repair:
                    self.quarantine(path.stem, defect)
        corrupt = len(list(self.corrupt_directory.glob("*.json"))) \
            if self.corrupt_directory.is_dir() else 0
        return {
            "path": str(self.directory),
            "scanned": scanned,
            "healthy": healthy,
            "defects": defects,
            "repaired": repair,
            "corrupt_entries": corrupt,
            "stale_versions": self._stale_versions(),
        }

    def _stale_versions(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.glob("results-v*")
            if p.is_dir() and p != self.directory
        )

    def stats(self) -> dict:
        """Entry count, total bytes, and stale-version leftovers."""
        entries = 0
        nbytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    nbytes += path.stat().st_size
                except FileNotFoundError:
                    continue  # unlinked by a concurrent clear()
                entries += 1
        corrupt = len(list(self.corrupt_directory.glob("*.json"))) \
            if self.corrupt_directory.is_dir() else 0
        return {
            "path": str(self.directory),
            "entries": entries,
            "bytes": nbytes,
            "corrupt_entries": corrupt,
            "stale_versions": self._stale_versions(),
        }

    def clear(self) -> int:
        """Remove every current-version entry; returns how many."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

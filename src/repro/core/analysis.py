"""Derived metrics over measurement results (the figures' y-axes)."""

from __future__ import annotations

from repro.uarch.core import CoreResult
from repro.uarch.dram import per_core_utilization


def ipc(result: CoreResult) -> float:
    """Aggregate committed instructions per cycle."""
    return result.instructions / result.cycles if result.cycles else 0.0


def application_ipc(result: CoreResult) -> float:
    """Application (non-OS) instructions per total cycle — the Figure 3
    "Application IPC" and Figure 4 "User IPC" metric; user-IPC is
    proportional to application throughput (§4.3, footnote 3)."""
    if not result.cycles:
        return 0.0
    return (result.instructions - result.os_instructions) / result.cycles


def mlp(result: CoreResult) -> float:
    """Average outstanding off-core (L2-miss) requests over the cycles
    with at least one outstanding (§3.1's MSHR-occupancy method)."""
    return result.mlp


def instruction_mpki(result: CoreResult, level: str = "l1i",
                     os_only: bool = False) -> float:
    """Instruction misses per kilo-instruction at L1-I or L2 (Figure 2)."""
    if not result.instructions:
        return 0.0
    if level == "l1i":
        misses = result.l1i_misses_os if os_only else result.l1i_misses
    elif level == "l2":
        misses = result.l2i_misses_os if os_only else result.l2i_misses
    else:
        raise ValueError(f"unknown level {level!r}")
    return 1000.0 * misses / result.instructions


def l2_hit_ratio(result: CoreResult) -> float:
    """Demand L2 hit ratio (Figure 5)."""
    if not result.l2_demand_accesses:
        return 0.0
    return result.l2_demand_hits / result.l2_demand_accesses


def remote_dirty_fraction(result: CoreResult, os_only: bool = False) -> float:
    """LLC data references hitting blocks last written by a remote core,
    normalized to all LLC data references (Figure 6)."""
    if not result.llc_data_refs:
        return 0.0
    hits = result.remote_dirty_hits_os if os_only else result.remote_dirty_hits
    return hits / result.llc_data_refs


def bandwidth_utilization(result: CoreResult, freq_hz: float,
                          peak_bytes_per_s: float, active_cores: int = 4,
                          os_only: bool = False) -> float:
    """Per-core off-chip bandwidth utilization (Figure 7)."""
    nbytes = result.offchip_bytes_os if os_only else result.offchip_bytes
    return per_core_utilization(nbytes, result.cycles, freq_hz,
                                peak_bytes_per_s, active_cores)


def branch_mispredict_rate(result: CoreResult) -> float:
    """Mispredicted branches as a fraction of executed branches."""
    return result.branch_mispredicts / result.branches if result.branches else 0.0


def os_instruction_fraction(result: CoreResult) -> float:
    """Share of committed instructions executed in kernel mode."""
    if not result.instructions:
        return 0.0
    return result.os_instructions / result.instructions

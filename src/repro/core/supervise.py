"""Supervised execution for the sweep engine: crash isolation, per-cell
deadlines, retries, and resumable checkpoints.

``SweepEngine`` used to push every pending cell through one
``pool.map`` call: a single crashed, OOM-killed, or wedged worker
aborted the whole sweep and discarded every completed cell.  At fleet
scale the harness, not the simulator, becomes the reliability
bottleneck, so this module supervises execution instead:

* each cell is an **independently submitted future** with its own
  wall-clock deadline (``policy.timeout`` seconds; a pool cannot cancel
  a running worker, so an overdue cell's workers are killed and the
  pool respawned — innocent in-flight cells are re-queued uncharged);
* a failed or timed-out cell is **retried** on the shared
  :class:`~repro.faults.retry.RetryPolicy` backoff schedule, jittered
  deterministically per cell fingerprint;
* a dead worker (``BrokenProcessPool`` — SIGKILL, OOM, segfault)
  poisons only the cells in flight: the **pool is respawned** and those
  cells re-queued.  The pool cannot attribute the death to one cell, so
  every in-flight cell is charged an attempt — a crash-looping cell
  exhausts its retries instead of wedging the sweep forever;
* every completed cell is **journaled** to a :class:`SweepCheckpoint`
  (atomic temp-file + ``os.replace`` writes, the same discipline as the
  faults manifest), so a sweep interrupted by Ctrl-C, SIGKILL, or power
  loss resumes by rerunning only the cells absent from the journal.

Cells that exhaust their retries are reported together in a
:class:`SweepCellError` *after* the rest of the sweep completes —
finished work is persisted, never discarded.
"""

from __future__ import annotations

import hashlib
import pathlib
import random
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.core.validate import ValidationError
from repro.faults.manifest import SweepManifest
from repro.faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.sweep import Cell

__all__ = [
    "SweepCellError",
    "SweepCheckpoint",
    "SweepSupervisor",
    "run_serial",
    "sweep_digest",
]

class SweepCellError(RuntimeError):
    """One or more cells failed permanently (retries exhausted).

    Raised *after* every other cell has completed and been persisted,
    so rerunning the sweep (``--resume``) only re-executes the failed
    cells.  ``failures`` holds one record per dead cell with the full
    attempt-by-attempt diagnostics.
    """

    def __init__(self, failures: list[dict]) -> None:
        self.failures = failures
        lines = []
        for failure in failures:
            cell = failure["cell"]
            causes = "; ".join(failure["errors"])
            lines.append(f"  {cell.kind}:{cell.name} "
                         f"(after {failure['attempts']} attempt(s)): {causes}")
        super().__init__(
            f"{len(failures)} sweep cell(s) failed permanently "
            f"(completed cells were persisted):\n" + "\n".join(lines))


def sweep_digest(fingerprints: Sequence[str]) -> str:
    """A stable identity for one sweep: the set of its cell prints."""
    text = ",".join(sorted(set(fingerprints)))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SweepCheckpoint:
    """On-disk journal of completed cells for one sweep.

    Keyed by :func:`sweep_digest` over the sweep's cell fingerprints,
    so a journal can never be replayed into a *different* sweep; the
    store schema version rides in the meta too, so a journal written by
    an incompatible build is discarded rather than decoded.  Payloads
    are ``run_to_dict`` documents — exactly what the result store
    holds — which keeps a resumed sweep byte-identical to an
    uninterrupted one.
    """

    def __init__(self, directory: str | pathlib.Path,
                 fingerprints: Sequence[str], resume: bool = False) -> None:
        from repro.core.store import SCHEMA_VERSION

        digest = sweep_digest(fingerprints)
        self.path = pathlib.Path(directory) / f"sweep-{digest[:24]}.json"
        self._manifest = SweepManifest(
            self.path, meta={"sweep": digest, "store_schema": SCHEMA_VERSION})
        if not resume:
            self._manifest.discard()

    def __len__(self) -> int:
        return len(self._manifest)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._manifest

    def get(self, fingerprint: str) -> list[dict] | None:
        """The journaled run payloads for one cell, or None."""
        payload = self._manifest.get(fingerprint)
        if payload is None:
            return None
        runs = payload.get("runs")
        return runs if isinstance(runs, list) else None

    def put(self, fingerprint: str, run_payloads: list[dict]) -> None:
        """Journal one completed cell atomically."""
        self._manifest.put(fingerprint, {"runs": run_payloads})

    def complete(self) -> None:
        """The sweep finished whole: the journal has served its purpose."""
        self._manifest.discard()


def _now() -> float:
    # repro-lint: sanitizer -- retry/deadline bookkeeping only; results never derive from it
    """Monotonic clock for supervisor scheduling decisions."""
    return time.monotonic()


def _task_rng(fingerprint: str) -> random.Random:
    # repro-lint: sanitizer -- seeded from the cell fingerprint, not the OS
    """Deterministic per-cell jitter source (no wall-clock, no PID)."""
    return random.Random(int(fingerprint[:16], 16))


class _Task:
    """Supervisor-side state of one pending cell."""

    __slots__ = ("index", "cell", "fingerprint", "attempts", "errors",
                 "not_before", "started", "schedule")

    def __init__(self, index: int, cell: "Cell", fingerprint: str,
                 policy: RetryPolicy) -> None:
        self.index = index
        self.cell = cell
        self.fingerprint = fingerprint
        self.attempts = 0
        self.errors: list[str] = []
        self.not_before = 0.0
        self.started = 0.0
        self.schedule = policy.schedule(_task_rng(fingerprint))

    def failure_record(self) -> dict:
        return {"cell": self.cell, "fingerprint": self.fingerprint,
                "attempts": self.attempts, "errors": list(self.errors)}


class SweepSupervisor:
    """Drives pending cells through a process pool, surviving workers.

    ``worker`` is the picklable pool entry point (by default the sweep
    module's ``_cell_worker``; tests inject misbehaving wrappers);
    ``on_complete(index, cell, fingerprint, payload)`` is invoked in
    the supervising process as each cell finishes, in *completion*
    order — a :class:`~repro.core.validate.ValidationError` it raises
    counts as a cell failure and triggers a retry, so a torn or
    miscomputed worker payload is recomputed rather than trusted.
    """

    def __init__(self, worker: Callable, jobs: int, policy: RetryPolicy,
                 use_cache: bool = True) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.worker = worker
        self.jobs = jobs
        self.policy = policy
        self.use_cache = use_cache

    def run(self, pending: Sequence[tuple], on_complete: Callable) -> list[dict]:
        """Execute every pending cell; returns permanent-failure records."""
        waiting = [_Task(index, cell, fingerprint, self.policy)
                   for index, cell, fingerprint in pending]
        failed: list[_Task] = []
        in_flight: dict = {}
        workers = min(self.jobs, max(1, len(waiting)))
        pool: ProcessPoolExecutor | None = None
        try:
            while waiting or in_flight:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)
                if not self._submit_ready(pool, waiting, in_flight, workers):
                    # The pool broke while (or before) accepting work.
                    pool = self._respawn(pool, in_flight, waiting, failed)
                    continue
                if not in_flight:
                    # Everything is backing off: sleep to the earliest wakeup.
                    wake = min(task.not_before for task in waiting)
                    time.sleep(max(0.0, wake - _now()))
                    continue
                done, _ = wait(list(in_flight),
                               timeout=self._wait_budget(in_flight, waiting),
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    task = in_flight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._fail(task, "worker process died mid-cell "
                                   "(killed, OOM, or crashed)",
                                   waiting, failed)
                    except Exception as exc:  # worker raised: retry the cell
                        self._fail(task, f"{type(exc).__name__}: {exc}",
                                   waiting, failed)
                    else:
                        try:
                            on_complete(task.index, task.cell,
                                        task.fingerprint, payload)
                        except ValidationError as exc:
                            self._fail(task, str(exc), waiting, failed)
                if broken:
                    pool = self._respawn(pool, in_flight, waiting, failed)
                    continue
                pool = self._enforce_deadlines(pool, in_flight, waiting,
                                               failed)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return [task.failure_record() for task in failed]

    # ------------------------------------------------------------------
    def _submit_ready(self, pool, waiting, in_flight, workers) -> bool:
        """Submit due tasks up to capacity; False if the pool is broken."""
        now = _now()
        ready = [task for task in waiting if task.not_before <= now]
        for task in ready:
            if len(in_flight) >= workers:
                break
            waiting.remove(task)
            try:
                future = pool.submit(self.worker, (task.cell, self.use_cache))
            except BrokenProcessPool:
                task.not_before = 0.0
                waiting.append(task)
                return False
            task.started = _now()
            in_flight[future] = task
        return True

    def _wait_budget(self, in_flight, waiting) -> float | None:
        """How long ``wait`` may block before the loop must act again."""
        now = _now()
        budgets = []
        if self.policy.timeout is not None:
            budgets.extend(task.started + self.policy.timeout - now
                           for task in in_flight.values())
        if waiting:  # a backoff may expire while capacity is free
            budgets.extend(task.not_before - now for task in waiting)
        if not budgets:
            return None  # only completion (or a pool break) can wake us
        # A hair past the earliest event so deadlines are strictly overdue.
        return max(0.0, min(budgets)) + 0.01

    def _fail(self, task, reason: str, waiting, failed) -> None:
        task.errors.append(reason)
        task.attempts += 1
        if task.attempts > self.policy.max_retries:
            failed.append(task)
            return
        delay = task.schedule[task.attempts - 1] if task.schedule else 0.0
        task.not_before = _now() + delay
        waiting.append(task)

    def _respawn(self, pool, in_flight, waiting, failed):
        """The pool broke: charge every in-flight cell and start over.

        The executor cannot attribute a worker death to one cell, so
        each cell that was in flight is charged one attempt; innocents
        retry and complete, while a crash-looping cell runs out of
        retries instead of breaking pools forever.
        """
        for task in in_flight.values():
            self._fail(task, "in flight when the worker pool broke",
                       waiting, failed)
        in_flight.clear()
        self._kill(pool)
        return None

    def _enforce_deadlines(self, pool, in_flight, waiting, failed):
        """Kill the pool when a cell is overdue; re-queue the innocent."""
        deadline = self.policy.timeout
        if deadline is None or not in_flight:
            return pool
        now = _now()
        overdue = [task for task in in_flight.values()
                   if now - task.started > deadline]
        if not overdue:
            return pool
        for task in overdue:
            self._fail(task, f"cell exceeded its {deadline:g}s deadline",
                       waiting, failed)
        for task in in_flight.values():
            if task not in overdue:  # innocent: re-queued uncharged
                task.not_before = 0.0
                waiting.append(task)
        in_flight.clear()
        self._kill(pool)
        return None

    @staticmethod
    def _kill(pool) -> None:
        """Terminate the pool's workers; running cells cannot be
        cancelled politely (``shutdown`` would wait on the wedged one)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)


def run_serial(pending: Sequence[tuple], execute: Callable,
               policy: RetryPolicy, on_complete: Callable) -> list[dict]:
    """The supervisor's single-process counterpart.

    Worker-crash isolation and deadlines need a process boundary, but
    retries-with-backoff and incremental checkpointing apply equally to
    serial sweeps; a transient failure (or an invalid result caught by
    ``on_complete``) is re-executed on the same policy schedule.
    """
    failed: list[dict] = []
    for index, cell, fingerprint in pending:
        task = _Task(index, cell, fingerprint, policy)
        while True:
            try:
                on_complete(index, cell, fingerprint, execute(cell))
                break
            except ValidationError as exc:
                reason = str(exc)
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
            task.errors.append(reason)
            task.attempts += 1
            if task.attempts > policy.max_retries:
                failed.append(task.failure_record())
                break
            delay = task.schedule[task.attempts - 1] if task.schedule else 0.0
            time.sleep(delay)
    return failed

"""Ablation experiments for the paper's *implications* (§4).

The paper does not just characterize — it argues for specific design
changes.  These experiments test those arguments on the simulator:

* **Narrow cores** (§4.2 Implications): "rather than implementing SMT
  on a 4-way core, two independent 2-way cores would consume fewer
  resources while achieving higher aggregate performance."  We compare
  the aggregate throughput of one 4-wide SMT core against two 2-wide
  cores running the same two threads.
* **Window size** (§4.2): scale-out workloads cannot use a 128-entry
  reorder window; shrinking it should barely hurt them while clearly
  hurting cpu-intensive benchmarks.
* **LLC latency** (§4.3): "increases in the LLC capacity that do not
  capture a working set lead to an overall performance degradation" —
  a smaller LLC with proportionally lower latency should *help*
  scale-out workloads.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import (
    RunConfig,
    guarded_trace,
    run_workload,
    run_workload_smt,
)
from repro.core.workloads import build_app
from repro.uarch.core import Core
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import CacheParams


def narrow_cores(config: RunConfig | None = None,
                 workloads: list[str] | None = None) -> ExperimentTable:
    """One 4-wide SMT core vs two independent 2-wide cores."""
    config = config or RunConfig()
    workloads = workloads or ["data-serving", "web-search", "media-streaming"]
    table = ExperimentTable(
        title=("Ablation (§4.2): aggregate throughput of one 4-wide SMT "
               "core vs two independent 2-wide cores."),
        columns=["Workload", "4-wide SMT IPC", "2x 2-wide IPC", "Narrow wins"],
    )
    narrow_params = replace(config.params, width=2, rob_entries=64,
                            reservation_stations=24)
    for name in workloads:
        smt = run_workload_smt(name, config)
        smt_ipc = analysis.ipc(smt.result)
        # Two independent 2-wide cores, each running one thread of the
        # same app (private L1/L2, both warmed; aggregate = sum of IPCs).
        app = build_app(name, seed=config.seed)
        aggregate = 0.0
        for tid in range(2):
            hierarchy = MemoryHierarchy(narrow_params, core_id=tid)
            app.warm(hierarchy, trace_uops=config.warm_uops // 2)
            core = Core(narrow_params, hierarchy, core_id=tid)
            result = core.run([guarded_trace(app, tid, config.window_uops // 2,
                                             f"{name}[narrow:{tid}]")])
            aggregate += analysis.ipc(result)
        table.add_row(
            Workload=name,
            **{"4-wide SMT IPC": smt_ipc,
               "2x 2-wide IPC": aggregate,
               "Narrow wins": "yes" if aggregate > smt_ipc else "no"},
        )
    table.notes.append(
        "each 2-wide core also drops to a 64-entry window and 24 RS — "
        "far less area than the 4-wide core they replace"
    )
    return table


def window_size(config: RunConfig | None = None,
                rob_sizes: tuple[int, ...] = (32, 64, 128),
                workloads: list[str] | None = None) -> ExperimentTable:
    """IPC as a function of reorder-window size."""
    config = config or RunConfig()
    workloads = workloads or ["data-serving", "tpc-c", "parsec-cpu"]
    table = ExperimentTable(
        title="Ablation (§4.2): IPC sensitivity to the reorder-window size.",
        columns=["Workload"] + [f"ROB {size}" for size in rob_sizes]
                + ["128-entry gain over 32"],
    )
    for name in workloads:
        row: dict[str, object] = {"Workload": name}
        ipcs = []
        for size in rob_sizes:
            params = replace(
                config.params,
                rob_entries=size,
                reservation_stations=min(36, max(8, size // 3)),
            )
            run = run_workload(name, replace(config, params=params))
            ipc = analysis.ipc(run.result)
            ipcs.append(ipc)
            row[f"ROB {size}"] = ipc
        row["128-entry gain over 32"] = ipcs[-1] / ipcs[0] - 1.0
        table.add_row(**row)
    return table


def llc_latency(config: RunConfig | None = None,
                workloads: list[str] | None = None) -> ExperimentTable:
    """A 6 MB LLC at 21 cycles vs the 12 MB LLC at 29 cycles (§4.3)."""
    config = config or RunConfig()
    workloads = workloads or ["web-search", "media-streaming", "specint-mcf"]
    table = ExperimentTable(
        title=("Ablation (§4.3): a smaller, faster LLC (6 MB / 21 cycles) "
               "vs the baseline (12 MB / 29 cycles)."),
        columns=["Workload", "Baseline IPC", "Small-fast IPC", "Speedup"],
    )
    small_fast = replace(
        config.params, llc=CacheParams(6 * 1024 * 1024, 16, 21)
    )
    for name in workloads:
        base = analysis.ipc(run_workload(name, config).result)
        fast = analysis.ipc(
            run_workload(name, replace(config, params=small_fast)).result
        )
        table.add_row(
            Workload=name,
            **{"Baseline IPC": base, "Small-fast IPC": fast,
               "Speedup": fast / base if base else 0.0},
        )
    table.notes.append(
        "scale-out workloads keep (or gain) performance; workloads with "
        "LLC-sized working sets (mcf) lose — §4.3's trade-off"
    )
    return table


def instruction_fetch(config: RunConfig | None = None,
                      l1i_kb: tuple[int, ...] = (32, 64, 128),
                      workloads: list[str] | None = None) -> ExperimentTable:
    """L1-I capacity provisioning (§4.1 Implications / §6).

    The paper calls for "optimizing the instruction-fetch path for
    multi-megabyte instruction working sets".  The simplest probe:
    grow the L1-I and watch scale-out frontend misses collapse while
    desktop benchmarks (whose working sets already fit) see nothing.
    """
    config = config or RunConfig()
    workloads = workloads or ["data-serving", "media-streaming", "parsec-cpu"]
    table = ExperimentTable(
        title=("Ablation (§4.1): L1-I misses per k-instruction as the "
               "instruction cache grows."),
        columns=["Workload"] + [f"L1-I {kb}KB" for kb in l1i_kb]
                + ["Miss reduction 32->128"],
    )
    for name in workloads:
        row: dict[str, object] = {"Workload": name}
        mpkis = []
        for kb in l1i_kb:
            params = replace(
                config.params,
                l1i=CacheParams(kb * 1024, 4 if kb == 32 else 8,
                                config.params.l1i.latency),
            )
            run = run_workload(name, replace(config, params=params))
            mpki = analysis.instruction_mpki(run.result)
            mpkis.append(mpki)
            row[f"L1-I {kb}KB"] = mpki
        row["Miss reduction 32->128"] = (
            1.0 - mpkis[-1] / mpkis[0] if mpkis[0] else 0.0
        )
        table.add_row(**row)
    table.notes.append(
        "the paper's preferred fix is shared partitioned instruction "
        "caches rather than bigger L1-Is (latency constraints); this "
        "probe only shows where the misses live"
    )
    return table


def core_aggressiveness(config: RunConfig | None = None,
                        workloads: list[str] | None = None) -> ExperimentTable:
    """In-order vs modest OoO vs aggressive OoO (§4.2 Implications).

    The paper's sweet spot is "a modest degree of superscalar out-of-
    order execution": in-order niche cores leave the available ILP/MLP
    on the table, while the aggressive 4-wide/128-entry core wastes area
    on parallelism scale-out workloads do not have.
    """
    from repro.uarch.inorder import InOrderCore

    config = config or RunConfig()
    workloads = workloads or ["data-serving", "web-search", "parsec-cpu"]
    table = ExperimentTable(
        title=("Ablation (§4.2): in-order vs modest OoO vs aggressive "
               "OoO cores."),
        columns=["Workload", "In-order IPC", "2-wide OoO IPC",
                 "4-wide OoO IPC", "OoO gain", "Aggressive gain"],
    )
    modest = replace(config.params, width=2, rob_entries=64,
                     reservation_stations=24)
    for name in workloads:
        app = build_app(name, seed=config.seed)
        hierarchy = MemoryHierarchy(config.params)
        app.warm(hierarchy, trace_uops=config.warm_uops)
        inorder = InOrderCore(config.params, hierarchy)
        in_res = inorder.run([guarded_trace(app, 0, config.window_uops // 2,
                                            f"{name}[in-order]")])
        in_ipc = analysis.ipc(in_res)

        modest_ipc = analysis.ipc(
            run_workload(name, replace(config, params=modest)).result
        )
        aggressive_ipc = analysis.ipc(run_workload(name, config).result)
        table.add_row(
            Workload=name,
            **{
                "In-order IPC": in_ipc,
                "2-wide OoO IPC": modest_ipc,
                "4-wide OoO IPC": aggressive_ipc,
                "OoO gain": modest_ipc / in_ipc if in_ipc else 0.0,
                "Aggressive gain": (aggressive_ipc / modest_ipc
                                    if modest_ipc else 0.0),
            },
        )
    table.notes.append(
        "OoO gain = modest OoO over in-order (large even for scale-out); "
        "Aggressive gain = 4-wide/128-entry over 2-wide/64-entry (small "
        "for scale-out, large for cpu-intensive desktop code)"
    )
    return table

"""Figure 5: L2 hit ratios with prefetchers enabled and disabled.

Desktop/parallel benchmarks lose substantial L2 hit ratio when the
adjacent-line and HW (stream) prefetchers are disabled; among scale-out
workloads only MapReduce meaningfully benefits.  In the paper, Media
Streaming and SAT Solver (like TPC-C) *gain* hit ratio with prefetching
off because prefetches pollute their caches; in this reproduction those
two land at small losses instead of small gains (our prefetch-pollution
model is weaker than the real machine's) — the near-zero sensitivity
band is reproduced, the sign flip is not.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, metric_mean, run_workload_members
from repro.core.workloads import ALL_WORKLOADS
from repro.uarch.params import PrefetcherParams


def _hit_ratio(name: str, config: RunConfig, prefetch: PrefetcherParams) -> float:
    cfg = replace(config, params=config.params.with_prefetchers(prefetch))
    runs = run_workload_members(name, cfg)
    return metric_mean(runs, analysis.l2_hit_ratio)


def run(config: RunConfig | None = None) -> ExperimentTable:
    """Toggle prefetchers and build the Figure 5 hit-ratio table."""
    config = config or RunConfig()
    base_pf = config.params.prefetch
    no_adjacent = replace(base_pf, adjacent_line=False)
    no_hw = replace(base_pf, hw_prefetcher=False)
    table = ExperimentTable(
        title=(
            "Figure 5. L2 hit ratios of a system with enabled and "
            "disabled adjacent-line and HW prefetchers."
        ),
        columns=[
            "Workload",
            "Group",
            "Baseline (all enabled)",
            "Adjacent-line (disabled)",
            "HW prefetcher (disabled)",
        ],
    )
    for spec in ALL_WORKLOADS:
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            **{
                "Baseline (all enabled)": _hit_ratio(spec.name, config, base_pf),
                "Adjacent-line (disabled)": _hit_ratio(spec.name, config, no_adjacent),
                "HW prefetcher (disabled)": _hit_ratio(spec.name, config, no_hw),
            },
        )
    return table


def prefetcher_benefit(table: ExperimentTable, workload: str) -> float:
    """Baseline hit ratio minus the worst disabled configuration
    (positive = the prefetchers help this workload)."""
    row = table.row_for("Workload", workload)
    return float(row["Baseline (all enabled)"]) - min(
        float(row["Adjacent-line (disabled)"]),
        float(row["HW prefetcher (disabled)"]),
    )

"""Figure 5: L2 hit ratios with prefetchers enabled and disabled.

Desktop/parallel benchmarks lose substantial L2 hit ratio when the
adjacent-line and HW (stream) prefetchers are disabled; among scale-out
workloads only MapReduce meaningfully benefits.  In the paper, Media
Streaming and SAT Solver (like TPC-C) *gain* hit ratio with prefetching
off because prefetches pollute their caches; in this reproduction those
two land at small losses instead of small gains (our prefetch-pollution
model is weaker than the real machine's) — the near-zero sensitivity
band is reproduced, the sign flip is not.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, metric_mean
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def _variants(config: RunConfig) -> list[RunConfig]:
    """Baseline, adjacent-line disabled, HW prefetcher disabled."""
    base_pf = config.params.prefetch
    return [
        replace(config, params=config.params.with_prefetchers(pf))
        for pf in (base_pf,
                   replace(base_pf, adjacent_line=False),
                   replace(base_pf, hw_prefetcher=False))
    ]


def cells(config: RunConfig) -> list[Cell]:
    """Three prefetcher variants per workload, workload-major order."""
    return [
        Cell("members", spec.name, variant)
        for spec in ALL_WORKLOADS
        for variant in _variants(config)
    ]


def run(config: RunConfig | None = None,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Toggle prefetchers and build the Figure 5 hit-ratio table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run(cells(config))
    table = ExperimentTable(
        title=(
            "Figure 5. L2 hit ratios of a system with enabled and "
            "disabled adjacent-line and HW prefetchers."
        ),
        columns=[
            "Workload",
            "Group",
            "Baseline (all enabled)",
            "Adjacent-line (disabled)",
            "HW prefetcher (disabled)",
        ],
    )
    for index, spec in enumerate(ALL_WORKLOADS):
        base, no_adjacent, no_hw = (
            metric_mean(results[3 * index + offset], analysis.l2_hit_ratio)
            for offset in range(3)
        )
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            **{
                "Baseline (all enabled)": base,
                "Adjacent-line (disabled)": no_adjacent,
                "HW prefetcher (disabled)": no_hw,
            },
        )
    return table


def prefetcher_benefit(table: ExperimentTable, workload: str) -> float:
    """Baseline hit ratio minus the worst disabled configuration
    (positive = the prefetchers help this workload)."""
    row = table.row_for("Workload", workload)
    return float(row["Baseline (all enabled)"]) - min(
        float(row["Adjacent-line (disabled)"]),
        float(row["HW prefetcher (disabled)"]),
    )

"""Figure 8 (extension): healthy vs. degraded-mode characterization.

The paper measures the suite in healthy steady state only.  This
experiment re-measures the scale-out workloads under the canonical
degraded-mode fault plan (replica crashes, stragglers, request drops,
GC storms, memory pressure — see ``docs/resilience.md``) and reports,
side by side per workload:

* the microarchitectural story — IPC and the L1-I/L2 instruction miss
  rates whose growth under fault handling extends Figure 2's
  instruction-footprint argument, plus the registered code footprint;
* the service-level story — goodput, retry rate, and the simulated
  p99 latency the clients observe.

The sweep checkpoints each completed cell into a crash-safe JSON
manifest under ``benchmarks/results/``, so an interrupted run resumes
where it stopped and re-invocations skip completed cells.
"""

from __future__ import annotations

import pathlib
from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, run_workload
from repro.core.sweep import config_fingerprint
from repro.core.workloads import REGISTRY
from repro.faults.manifest import SweepManifest
from repro.faults.plan import FaultPlan

#: The workloads the degraded-mode table characterizes by default.
DEFAULT_WORKLOADS = [
    "data-serving",
    "mapreduce",
    "media-streaming",
    "web-search",
]

#: Where the sweep checkpoints by default.
DEFAULT_MANIFEST = (
    pathlib.Path(__file__).resolve().parents[4]
    / "benchmarks" / "results" / "figure8_manifest.json"
)

_COLUMNS = [
    "Workload",
    "Mode",
    "IPC",
    "L1-I MPKI",
    "L2-I MPKI",
    "Code KB",
    "Goodput",
    "Retry rate",
    "p99 (uops)",
    "Faults",
]


def degraded_plan(seed: int = 7, intensity: float = 1.0) -> FaultPlan:
    """The canonical fault schedule for the degraded columns."""
    return FaultPlan.degraded(seed=seed, intensity=intensity)


def _measure_cell(name: str, config: RunConfig) -> dict:
    """Run one (workload, mode) cell and distill its row payload.

    ``require_app=True``: the row reads service metrics and fault
    counters off the live app, which a trace-store hit (``app=None``)
    cannot supply.
    """
    run = run_workload(name, config, require_app=True)
    r = run.result
    app = run.app
    service = app.service.summary()
    injector = app.faults
    return {
        "ipc": analysis.ipc(r),
        "l1i_mpki": analysis.instruction_mpki(r),
        "l2i_mpki": analysis.instruction_mpki(r, "l2"),
        "code_kb": app.layout.app_code_bytes() / 1024.0,
        "goodput": service["goodput"],
        "retry_rate": service["retry_rate"],
        "p99": service["p99"],
        "faults_fired": injector.total_fired() if injector else 0,
    }


def run(config: RunConfig | None = None,
        workloads: list[str] | None = None,
        manifest_path: str | pathlib.Path | None = DEFAULT_MANIFEST,
        fresh: bool = False,
        intensity: float = 1.0) -> ExperimentTable:
    """Build the healthy-vs-degraded table.

    ``manifest_path=None`` disables checkpointing; ``fresh=True``
    discards any existing manifest first.  Completed cells found in the
    manifest are *not* recomputed — this is what lets a killed sweep
    resume mid-run.
    """
    config = config or RunConfig()
    names = workloads or DEFAULT_WORKLOADS
    for name in names:
        if name not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise KeyError(f"unknown workload {name!r}; known: {known}")
    plan = degraded_plan(seed=config.seed, intensity=intensity)
    degraded_config = replace(config, fault_plan=plan)
    manifest = None
    if manifest_path is not None:
        # Key the manifest on the *full* configuration fingerprint (not
        # just window/seed): a sweep rerun with different machine
        # parameters must discard the stale manifest, never mix in its
        # cells.
        meta = {
            "experiment": "figure8",
            "window_uops": config.window_uops,
            "warm_uops": config.warm_uops,
            "seed": config.seed,
            "intensity": intensity,
            "plan_events": len(plan.events),
            "healthy_config": config_fingerprint("single", "figure8", config),
            "degraded_config": config_fingerprint("single", "figure8",
                                                  degraded_config),
        }
        manifest = SweepManifest(manifest_path, meta)
        if fresh:
            manifest.discard()
    table = ExperimentTable(
        title=(
            "Figure 8. Healthy vs. degraded-mode characterization "
            "(deterministic fault injection)."
        ),
        columns=list(_COLUMNS),
    )
    modes = [("healthy", config), ("degraded", degraded_config)]
    for name in names:
        for mode, cell_config in modes:
            key = f"{name}|{mode}"
            payload = manifest.get(key) if manifest is not None else None
            if payload is None:
                payload = _measure_cell(name, cell_config)
                if manifest is not None:
                    manifest.put(key, payload)
            table.add_row(
                Workload=REGISTRY[name].display_name,
                Mode=mode,
                **{
                    "IPC": float(payload["ipc"]),
                    "L1-I MPKI": float(payload["l1i_mpki"]),
                    "L2-I MPKI": float(payload["l2i_mpki"]),
                    "Code KB": float(payload["code_kb"]),
                    "Goodput": float(payload["goodput"]),
                    "Retry rate": float(payload["retry_rate"]),
                    "p99 (uops)": int(payload["p99"]),
                    "Faults": int(payload["faults_fired"]),
                },
            )
    table.notes.append(
        "Degraded runs execute the canonical fault plan "
        f"({len(plan.events)} recurring events, seed {config.seed}); "
        "identical seeds reproduce identical tables."
    )
    return table


def mpki_delta(table: ExperimentTable, workload: str) -> float:
    """Degraded-minus-healthy L1-I MPKI for one workload's row pair."""
    healthy = degraded = None
    for row in table.rows:
        if row["Workload"] == workload:
            if row["Mode"] == "healthy":
                healthy = float(row["L1-I MPKI"])
            elif row["Mode"] == "degraded":
                degraded = float(row["L1-I MPKI"])
    if healthy is None or degraded is None:
        raise KeyError(f"no healthy/degraded row pair for {workload!r}")
    return degraded - healthy

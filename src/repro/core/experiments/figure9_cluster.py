"""Figure 9 (extension): fleet tail latency under faults.

The paper characterizes one scale-out blade in isolation; production
deploys those blades as replicated, load-balanced fleets whose
*service-level* behaviour — tail latency under skew and faults, goodput
through crashes, durability of acknowledged writes — is what the
scale-out architecture actually promises.  This experiment sweeps the
simulated fleet (:mod:`repro.cluster`) over fleet size × key skew ×
fault scenario and reports, per cell:

* coordinated-omission-safe p50/p99/p999 against *intended* open-loop
  arrival times;
* resilience counters: retries, hedged requests, ejections and
  readmissions, hinted handoffs, read repairs;
* the durability audit — acknowledged writes a quorum confirmed that
  no replica (nor hint log) can produce anymore (must be zero with
  R >= 2);
* load concentration — the hottest node's share of total busy time
  (skew makes this climb; replication and the balancer push back).

Cells run under the same supervised sweep machinery as the
microarchitectural figures: crash-isolated parallel workers, per-cell
deadlines/retries, resumable checkpoints, validation gating every
summary, and cell-order merging so ``--jobs N`` is byte-identical to a
serial run at the same seed.
"""

from __future__ import annotations

from repro.cluster.backend import build_backend
from repro.cluster.faults import ClusterFaultEvent, ClusterFaultPlan
from repro.cluster.service import ClusterConfig
from repro.cluster.sweep import ClusterCell, ClusterSweepEngine
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig

#: Fleet sizes swept by default (replication fixed at 2).
DEFAULT_FLEETS = [2, 4, 8]

#: Key-popularity shapes: uniform vs. the YCSB Zipfian constant.
SKEWS = [("uniform", 0.0), ("zipf", 0.99)]

#: Fault scenarios, in column order.
FAULTS = ["none", "node-crash", "slow-node", "partition"]

#: Open-loop mean inter-arrival gap (simulated microseconds).
MEAN_GAP_US = 150

_COLUMNS = [
    "Cell",
    "Fleet",
    "Skew",
    "Fault",
    "Goodput",
    "p50 (us)",
    "p99 (us)",
    "p999 (us)",
    "Retries",
    "Hedges",
    "Eject",
    "Hints",
    "Repairs",
    "Lost",
    "Hot share",
]


def cluster_requests(config: RunConfig) -> int:
    """How many open-loop requests one fleet cell plays.

    Scaled from the measurement window like every other figure, floored
    so percentile ranks stay meaningful on tiny test windows.
    """
    return max(300, config.window_uops // 50)


def _fault_plan(fault: str, requests: int) -> ClusterFaultPlan:
    """The named scenario, timed to land mid-run at any request count.

    The fault window opens a quarter of the way into the load and heals
    before the load ends, so ejection, failover, hinted handoff *and*
    readmission/hint replay all happen while requests still flow.
    """
    load_us = requests * MEAN_GAP_US
    at_us = max(1, load_us // 4)
    duration_us = max(1, load_us // 3)
    if fault == "none":
        return ClusterFaultPlan.none()
    if fault == "node-crash":
        return ClusterFaultPlan.node_crash(at_us=at_us,
                                           duration_us=duration_us)
    if fault == "slow-node":
        return ClusterFaultPlan.slow_node(at_us=at_us,
                                          duration_us=duration_us)
    if fault == "partition":
        return ClusterFaultPlan(name="partition", events=(
            ClusterFaultEvent("partition", target=0, at_us=at_us,
                              duration_us=max(1, load_us // 4)),))
    raise KeyError(f"unknown fault scenario {fault!r}; "
                   f"known: {', '.join(FAULTS)}")


def build_cells(config: RunConfig, workload: str = "data-serving",
                fleets: list[int] | None = None,
                replication: int = 2,
                costs: str = "static",
                cost_model=None) -> list[ClusterCell]:
    """The figure's cell grid: fleet size × key skew × fault plan.

    Under ``costs="measured"`` every cell embeds the calibrated
    ``cost_model`` in its configuration, so the cell fingerprint folds
    in the model's quantiles *and* its uarch digest — changing a
    machine parameter invalidates every cached measured-cost cell.
    """
    build_backend(workload)  # unknown workload: fail here, not per cell
    requests = cluster_requests(config)
    cells = []
    for fleet in (fleets or DEFAULT_FLEETS):
        for skew, theta in SKEWS:
            for fault in FAULTS:
                cluster = ClusterConfig(
                    workload=workload,
                    fleet=fleet,
                    replication=min(replication, fleet),
                    requests=requests,
                    mean_gap_us=MEAN_GAP_US,
                    theta=theta,
                    seed=config.seed,
                    fault_plan=_fault_plan(fault, requests),
                    costs=costs,
                    cost_model=cost_model,
                )
                cells.append(ClusterCell(
                    name=f"{workload}-f{fleet}-{skew}-{fault}",
                    config=cluster))
    return cells


def calibrate_for(config: RunConfig, workload: str, engine=None):
    """The measured cost model for one figure run's configuration.

    Calibrated once, in the coordinating process, then embedded in
    every cell's configuration — workers never recalibrate, which is
    what keeps serial, ``--jobs N``, and ``--resume`` runs
    byte-identical.
    """
    from repro.cluster.calibrate import CalibrationConfig, calibrate

    use_store = engine.use_cache if engine is not None else True
    return calibrate(
        CalibrationConfig(
            workload=workload,
            params=config.params,
            window_uops=config.window_uops,
            warm_uops=config.warm_uops,
            seed=config.seed,
        ),
        use_store=use_store)


def _cluster_engine(engine) -> ClusterSweepEngine:
    """A fleet engine sharing a figure engine's supervision knobs.

    ``python -m repro all`` hands every figure one
    :class:`~repro.core.sweep.SweepEngine`; fleet cells need the
    cluster variant, so its jobs/cache/store/retry/checkpoint settings
    are adopted rather than the engine itself.
    """
    if engine is None:
        return ClusterSweepEngine()
    if isinstance(engine, ClusterSweepEngine):
        return engine
    return ClusterSweepEngine(
        jobs=engine.jobs, use_cache=engine.use_cache, store=engine.store,
        retry=engine.retry, checkpoint_dir=engine.checkpoint_dir,
        resume=engine.resume)


def run(config: RunConfig | None = None, engine=None,
        workload: str = "data-serving",
        fleets: list[int] | None = None,
        replication: int = 2,
        costs: str = "static") -> ExperimentTable:
    """Build the fleet tail-latency table.

    ``costs="measured"`` calibrates a service-cost model from uarch
    replay first (capture → columnar replay → quantile tables) and
    prices every request from it; the default keeps the hand-written
    static tables, explicitly labeled as such in the notes.
    """
    config = config or RunConfig()
    cost_model = None
    if costs == "measured":
        cost_model = calibrate_for(config, workload, engine=engine)
    cells = build_cells(config, workload=workload, fleets=fleets,
                        replication=replication, costs=costs,
                        cost_model=cost_model)
    results = _cluster_engine(engine).run(cells)
    table = ExperimentTable(
        title=("Figure 9. Fleet tail latency and resilience counters "
               "(replicated sharding, health-checked balancing, hedged "
               "requests; coordinated-omission-safe percentiles)."),
        columns=list(_COLUMNS),
    )
    for cell, summaries in zip(cells, results):
        summary = summaries[0]
        cfg = cell.config
        skew = "zipf" if cfg.theta else "uniform"
        table.add_row(**{
            "Cell": f"f{cfg.fleet}/{skew}/{cfg.fault_plan.name}",
            "Fleet": int(cfg.fleet),
            "Skew": skew,
            "Fault": cfg.fault_plan.name,
            "Goodput": float(summary["goodput"]),
            "p50 (us)": int(summary["p50"]),
            "p99 (us)": int(summary["p99"]),
            "p999 (us)": int(summary["p999"]),
            "Retries": int(summary["retries"]),
            "Hedges": int(summary["hedges"]),
            "Eject": int(summary["ejections"]),
            "Hints": int(summary["hints_stored"]),
            "Repairs": int(summary["read_repairs"]),
            "Lost": int(summary["acked_lost"]),
            "Hot share": float(summary["hot_node_share"]),
        })
    requests = cluster_requests(config)
    table.notes.append(
        f"{requests} open-loop requests per cell (Poisson, mean gap "
        f"{MEAN_GAP_US}us), workload {workload!r}, replication "
        f"{replication}, seed {config.seed}; latencies measured from "
        "intended start times, so stalls count against the fleet.")
    table.notes.append(
        "Lost = quorum-acknowledged writes no replica or hint log can "
        "produce after the fault plan ran; nonzero fails validation.")
    if cost_model is not None:
        table.notes.append(
            "Service costs: measured — per-op latency quantiles from "
            f"uarch replay at {cost_model.blade_mhz:.0f} MHz "
            f"(uarch {cost_model.uarch[:12]}).")
    else:
        table.notes.append(
            "Service costs: static — hand-written per-op tables "
            "(rerun with --costs=measured for uarch-derived costs).")
    return table


def delta_table(config: RunConfig | None = None, engine=None,
                workload: str = "data-serving",
                fleets: list[int] | None = None,
                replication: int = 2) -> ExperimentTable:
    """Static-vs-measured service costs, cell by cell.

    The headline comparison the calibration layer exists for: the same
    fleet grid priced from the hand-written tables and from uarch
    replay, with the tail-latency shift each cell sees.
    """
    config = config or RunConfig()
    static = run(config, engine=engine, workload=workload, fleets=fleets,
                 replication=replication, costs="static")
    measured = run(config, engine=engine, workload=workload, fleets=fleets,
                   replication=replication, costs="measured")
    table = ExperimentTable(
        title=("Figure 9 (delta). Fleet tail latency, static vs "
               "measured service costs (uarch-replay calibration)."),
        columns=["Cell", "p50 static", "p50 measured", "p99 static",
                 "p99 measured", "p999 static", "p999 measured",
                 "p99 shift"],
    )
    for s_row, m_row in zip(static.rows, measured.rows):
        p99_s, p99_m = int(s_row["p99 (us)"]), int(m_row["p99 (us)"])
        shift = (p99_m - p99_s) / p99_s if p99_s else 0.0
        table.add_row(**{
            "Cell": s_row["Cell"],
            "p50 static": int(s_row["p50 (us)"]),
            "p50 measured": int(m_row["p50 (us)"]),
            "p99 static": p99_s,
            "p99 measured": p99_m,
            "p999 static": int(s_row["p999 (us)"]),
            "p999 measured": int(m_row["p999 (us)"]),
            "p99 shift": shift,
        })
    table.notes.extend(static.notes[-1:])
    table.notes.extend(measured.notes[-1:])
    return table

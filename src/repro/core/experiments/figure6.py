"""Figure 6: read-write sharing.

Percentage of LLC data references that access cache blocks most
recently written by a thread on another core, split Application/OS,
measured with the workload's threads spread across two sockets (§3.1).
Scale-out workloads share almost nothing (their OS component is the
network stack; Java workloads add a little GC-induced sharing; Media
Streaming its global counters); traditional OLTP workloads interact
constantly through locks and hot rows.
"""

from __future__ import annotations

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def cells(config: RunConfig, num_cores: int = 4,
          segments: int = 8) -> list[Cell]:
    """One multi-core chip cell per workload.

    Multithreaded servers run as one process across the cores;
    single-process-per-core workloads (SAT Solver, PARSEC, SPECint)
    run independent instances — the runner arranges both layouts.
    """
    return [
        Cell("chip", spec.name, config, num_cores=num_cores,
             segments=segments)
        for spec in ALL_WORKLOADS
    ]


def run(config: RunConfig | None = None, num_cores: int = 4,
        segments: int = 8,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Run the two-socket chip setup; build the Figure 6 sharing table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run_flat(cells(config, num_cores, segments))
    table = ExperimentTable(
        title=(
            "Figure 6. Percentage of LLC data references accessing "
            "cache blocks modified by a thread running on a remote core."
        ),
        columns=["Workload", "Group", "Application", "OS"],
    )
    for spec, chip_run in zip(ALL_WORKLOADS, results):
        summed = chip_run.result
        total = analysis.remote_dirty_fraction(summed)
        os_part = analysis.remote_dirty_fraction(summed, os_only=True)
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            Application=total - os_part,
            OS=os_part,
        )
    return table


def total_sharing(table: ExperimentTable, workload: str) -> float:
    """Total (application + OS) remote-dirty reference fraction."""
    row = table.row_for("Workload", workload)
    return float(row["Application"]) + float(row["OS"])

"""Figure 3: application IPC (of a maximum of 4) and MLP, Baseline vs SMT.

Scale-out workloads reach a modest IPC (0.6–1.1 in the paper) and low
MLP (1.4–2.3) despite the aggressive 4-wide core; adding a second SMT
thread nearly doubles MLP and improves IPC substantially because the
threads are independent.  Range bars report the min/max across the
members of the PARSEC/SPECint groups.
"""

from __future__ import annotations

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, metric_mean, metric_range
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def cells(config: RunConfig) -> list[Cell]:
    """Per workload: one baseline member-group cell, one SMT cell."""
    work = []
    for spec in ALL_WORKLOADS:
        work.append(Cell("members", spec.name, config))
        work.append(Cell("smt-members", spec.name, config))
    return work


def run(config: RunConfig | None = None,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Run baseline and SMT configurations; build the Figure 3 table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run(cells(config))
    table = ExperimentTable(
        title=(
            "Figure 3. Application IPC (max 4) and MLP, for systems "
            "with and without SMT; range bars are group min/max."
        ),
        columns=[
            "Workload",
            "Group",
            "IPC",
            "IPC (SMT)",
            "IPC min",
            "IPC max",
            "MLP",
            "MLP (SMT)",
            "MLP min",
            "MLP max",
        ],
    )
    for index, spec in enumerate(ALL_WORKLOADS):
        base_runs = results[2 * index]
        smt_runs = results[2 * index + 1]
        ipc_lo, ipc_hi = metric_range(base_runs, analysis.application_ipc)
        mlp_lo, mlp_hi = metric_range(base_runs, analysis.mlp)
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            IPC=metric_mean(base_runs, analysis.application_ipc),
            **{
                "IPC (SMT)": metric_mean(smt_runs, analysis.application_ipc),
                "IPC min": ipc_lo,
                "IPC max": ipc_hi,
                "MLP": metric_mean(base_runs, analysis.mlp),
                "MLP (SMT)": metric_mean(smt_runs, analysis.mlp),
                "MLP min": mlp_lo,
                "MLP max": mlp_hi,
            },
        )
    table.notes.append(
        "SMT runs execute two independent instances of the workload on "
        "one core; IPC aggregates both hardware threads."
    )
    return table


def smt_ipc_gain(table: ExperimentTable, workload: str) -> float:
    """Relative aggregate-IPC improvement of SMT over the baseline."""
    row = table.row_for("Workload", workload)
    base = float(row["IPC"])
    return (float(row["IPC (SMT)"]) / base - 1.0) if base else 0.0

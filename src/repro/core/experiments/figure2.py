"""Figure 2: L1-I and L2 instruction misses per kilo-instruction.

Scale-out workloads' instruction working sets considerably exceed the
L1-I (and mostly the L2), like traditional server workloads; desktop and
parallel benchmarks' do not.  The OS components of scale-out workloads
are smaller than those of traditional server workloads.
"""

from __future__ import annotations

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, metric_mean
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def cells(config: RunConfig) -> list[Cell]:
    """The declarative work list: one member-group cell per workload."""
    return [Cell("members", spec.name, config) for spec in ALL_WORKLOADS]


def run(config: RunConfig | None = None,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Measure every workload and build the Figure 2 MPKI table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run(cells(config))
    table = ExperimentTable(
        title=(
            "Figure 2. L1-I and L2 instruction cache miss rates "
            "(misses per k-instruction), Application and OS components."
        ),
        columns=[
            "Workload",
            "Group",
            "L1-I (App)",
            "L1-I (OS)",
            "L2 (App)",
            "L2 (OS)",
        ],
    )
    for spec, runs in zip(ALL_WORKLOADS, results):
        l1i = metric_mean(runs, analysis.instruction_mpki)
        l1i_os = metric_mean(
            runs, lambda r: analysis.instruction_mpki(r, os_only=True)
        )
        l2 = metric_mean(runs, lambda r: analysis.instruction_mpki(r, "l2"))
        l2_os = metric_mean(
            runs, lambda r: analysis.instruction_mpki(r, "l2", os_only=True)
        )
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            **{
                "L1-I (App)": l1i - l1i_os,
                "L1-I (OS)": l1i_os,
                "L2 (App)": l2 - l2_os,
                "L2 (OS)": l2_os,
            },
        )
    return table


def total_l1i_mpki(table: ExperimentTable, workload: str) -> float:
    """Total (application + OS) L1-I misses per kilo-instruction."""
    row = table.row_for("Workload", workload)
    return float(row["L1-I (App)"]) + float(row["L1-I (OS)"])

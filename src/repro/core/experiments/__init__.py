"""One module per table/figure of the paper's evaluation (§4).

Every module exposes ``run(config) -> ExperimentTable`` producing the
same rows/series the paper reports.  The benchmark harness times these
and writes their tables; the test suite asserts their qualitative
shapes (who wins, by roughly what factor, where crossovers fall).
"""

from repro.core.experiments import (
    table1,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure9_cluster,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure9": figure9_cluster,
}

__all__ = [
    "table1",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure9_cluster",
    "ALL_EXPERIMENTS",
]

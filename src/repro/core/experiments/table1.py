"""Table 1: architectural parameters.

Echoes the configured machine and self-checks that the simulator
actually instantiates each parameter (cache geometries, buffer sizes),
so the table documents the machine the experiments really ran on.
"""

from __future__ import annotations

from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig
from repro.uarch.cache import Cache
from repro.uarch.params import MachineParams


def run(config: RunConfig | None = None, engine=None) -> ExperimentTable:
    """Render Table 1 and self-check the simulated geometries.

    ``engine`` is accepted for uniform dispatch but unused — the table
    derives from the parameters alone, no measurement cells to sweep.
    """
    params = (config or RunConfig()).params
    table = ExperimentTable(
        title="Table 1. Architectural parameters.",
        columns=["Parameter", "Value"],
    )
    for name, value in MachineParams.table1_rows():
        table.add_row(Parameter=name, Value=value)
    # Self-check: the simulator honours the advertised geometry.
    for cache_name, cache_params in (
        ("L1-I", params.l1i),
        ("L1-D", params.l1d),
        ("L2", params.l2),
        ("LLC", params.llc),
    ):
        cache = Cache(cache_name, cache_params)
        capacity_lines = cache.num_sets * cache.assoc
        expected = cache_params.size_bytes // cache_params.line_bytes
        if capacity_lines != expected:
            raise AssertionError(
                f"{cache_name}: {capacity_lines} lines != {expected}"
            )
    table.notes.append(
        "self-check passed: simulated cache geometries match the table"
    )
    return table

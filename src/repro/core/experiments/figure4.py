"""Figure 4: performance sensitivity to LLC capacity.

User-IPC (proportional to application throughput) as a function of LLC
capacity from 4 to 11 MB, normalized to the 12 MB baseline, for the
scale-out average, the traditional-server average, and SPECint mcf.
Scale-out and server workloads are flat above 4–6 MB — the LLC only
needs to hold their instruction working set and a small amount of
supporting data — while mcf keeps improving with every megabyte.

Two methodologies are supported: the paper's cache-polluter threads
(§3.1) and direct LLC resizing; the default harness resizes (exact and
cheaper) and a test asserts the two agree.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, run_workload
from repro.core.workloads import SCALE_OUT, SERVER_GROUP

DEFAULT_SIZES_MB = (4, 5, 6, 7, 8, 9, 10, 11)


def _user_ipc(name: str, config: RunConfig, llc_mb: float | None) -> float:
    if llc_mb is None:
        run = run_workload(name, config)
    else:
        params = config.params.with_llc_mb(llc_mb)
        run = run_workload(name, replace(config, params=params))
    return analysis.application_ipc(run.result)


def run(config: RunConfig | None = None,
        sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
        scale_out_names: list[str] | None = None) -> ExperimentTable:
    """Sweep the LLC capacity and build the Figure 4 sensitivity curves."""
    config = config or RunConfig()
    scale_out = scale_out_names or [spec.name for spec in SCALE_OUT]
    server = SERVER_GROUP
    table = ExperimentTable(
        title=(
            "Figure 4. Performance sensitivity to LLC capacity "
            "(User IPC normalized to the 12 MB baseline)."
        ),
        columns=["Cache size (MB)", "Scale-out", "Server", "SPECint (mcf)"],
    )
    baselines = {
        "scale-out": _mean(scale_out, config, None),
        "server": _mean(server, config, None),
        "mcf": _user_ipc("specint-mcf", config, None),
    }
    for size in sizes_mb:
        table.add_row(
            **{
                "Cache size (MB)": size,
                "Scale-out": _mean(scale_out, config, size) / baselines["scale-out"],
                "Server": _mean(server, config, size) / baselines["server"],
                "SPECint (mcf)": _user_ipc("specint-mcf", config, size)
                / baselines["mcf"],
            }
        )
    table.notes.append("normalized to a baseline system with a 12MB LLC")
    return table


def _mean(names: list[str], config: RunConfig, llc_mb: float | None) -> float:
    values = [_user_ipc(name, config, llc_mb) for name in names]
    return sum(values) / len(values)

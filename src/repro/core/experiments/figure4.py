"""Figure 4: performance sensitivity to LLC capacity.

User-IPC (proportional to application throughput) as a function of LLC
capacity from 4 to 11 MB, normalized to the 12 MB baseline, for the
scale-out average, the traditional-server average, and SPECint mcf.
Scale-out and server workloads are flat above 4–6 MB — the LLC only
needs to hold their instruction working set and a small amount of
supporting data — while mcf keeps improving with every megabyte.

Two methodologies are supported: the paper's cache-polluter threads
(§3.1) and direct LLC resizing; the default harness resizes (exact and
cheaper) and a test asserts the two agree.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import analysis
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig, WorkloadRun
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import SCALE_OUT, SERVER_GROUP

DEFAULT_SIZES_MB = (4, 5, 6, 7, 8, 9, 10, 11)


def _sized(config: RunConfig, llc_mb: float | None) -> RunConfig:
    if llc_mb is None:
        return config
    return replace(config, params=config.params.with_llc_mb(llc_mb))


def cells(config: RunConfig,
          sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
          scale_out_names: list[str] | None = None) -> list[Cell]:
    """The flat (LLC size x workload) grid, baseline (None) first.

    Every cell is an independent single-core run, so the engine can
    fan the whole sweep across worker processes.
    """
    scale_out = scale_out_names or [spec.name for spec in SCALE_OUT]
    names = scale_out + SERVER_GROUP + ["specint-mcf"]
    return [
        Cell("single", name, _sized(config, size))
        for size in (None, *sizes_mb)
        for name in names
    ]


def _mean_ipc(runs: list[WorkloadRun]) -> float:
    values = [analysis.application_ipc(run.result) for run in runs]
    return sum(values) / len(values)


def run(config: RunConfig | None = None,
        sizes_mb: tuple[int, ...] = DEFAULT_SIZES_MB,
        scale_out_names: list[str] | None = None,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Sweep the LLC capacity and build the Figure 4 sensitivity curves."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    scale_out = scale_out_names or [spec.name for spec in SCALE_OUT]
    n_scale_out, n_server = len(scale_out), len(SERVER_GROUP)
    per_size = n_scale_out + n_server + 1
    runs = engine.run_flat(cells(config, sizes_mb, scale_out_names))
    table = ExperimentTable(
        title=(
            "Figure 4. Performance sensitivity to LLC capacity "
            "(User IPC normalized to the 12 MB baseline)."
        ),
        columns=["Cache size (MB)", "Scale-out", "Server", "SPECint (mcf)"],
    )

    def slice_means(offset: int) -> tuple[float, float, float]:
        block = runs[offset:offset + per_size]
        return (
            _mean_ipc(block[:n_scale_out]),
            _mean_ipc(block[n_scale_out:n_scale_out + n_server]),
            analysis.application_ipc(block[-1].result),
        )

    base_scale_out, base_server, base_mcf = slice_means(0)
    for row_index, size in enumerate(sizes_mb):
        scale_out_ipc, server_ipc, mcf_ipc = slice_means(
            (row_index + 1) * per_size
        )
        table.add_row(
            **{
                "Cache size (MB)": size,
                "Scale-out": scale_out_ipc / base_scale_out,
                "Server": server_ipc / base_server,
                "SPECint (mcf)": mcf_ipc / base_mcf,
            }
        )
    table.notes.append("normalized to a baseline system with a 12MB LLC")
    return table

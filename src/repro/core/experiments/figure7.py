"""Figure 7: off-chip memory bandwidth utilization.

Average per-core off-chip bandwidth consumed, as a percentage of the
available per-core share of the memory channels, split Application/OS.
Scale-out workloads use a small fraction of the provisioned bandwidth —
Media Streaming, the heaviest, peaks around 15 % — because their low
MLP cannot generate enough concurrent off-chip accesses (§4.4).
"""

from __future__ import annotations

from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def cells(config: RunConfig) -> list[Cell]:
    """The declarative work list: one member-group cell per workload."""
    return [Cell("members", spec.name, config) for spec in ALL_WORKLOADS]


def run(config: RunConfig | None = None, active_cores: int = 4,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Build the Figure 7 bandwidth-utilization table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run(cells(config))
    table = ExperimentTable(
        title=(
            "Figure 7. Average off-chip memory bandwidth utilization as "
            "a percentage of available per-core off-chip bandwidth."
        ),
        columns=["Workload", "Group", "Application", "OS"],
    )
    for spec, runs in zip(ALL_WORKLOADS, results):
        totals = [run.bandwidth_utilization(active_cores) for run in runs]
        os_fracs = [run.os_bandwidth_fraction() for run in runs]
        total = sum(totals) / len(totals)
        os_part = sum(t * f for t, f in zip(totals, os_fracs)) / len(totals)
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            Application=total - os_part,
            OS=os_part,
        )
    table.notes.append(
        "utilization is relative to the per-core share of the 32 GB/s "
        "channels across the four active cores (§3.1, §4.4)"
    )
    return table


def total_utilization(table: ExperimentTable, workload: str) -> float:
    """Total (application + OS) per-core bandwidth utilization."""
    row = table.row_for("Workload", workload)
    return float(row["Application"]) + float(row["OS"])

"""Figure 1: execution-time breakdown and memory cycles.

One bar per workload: Stalled (OS), Stalled (Application), Committing
(Application), Committing (OS), with the overlapped Memory-cycles bar
beside it.  Scale-out workloads (left group) stall for most of their
cycles, predominantly on memory; cpu-intensive desktop/parallel
benchmarks stall well under 50 %.
"""

from __future__ import annotations

from repro.core.breakdown import compute_breakdown
from repro.core.report import ExperimentTable
from repro.core.runner import RunConfig
from repro.core.sweep import Cell, SweepEngine
from repro.core.workloads import ALL_WORKLOADS


def cells(config: RunConfig) -> list[Cell]:
    """The declarative work list: one member-group cell per workload."""
    return [Cell("members", spec.name, config) for spec in ALL_WORKLOADS]


def run(config: RunConfig | None = None,
        engine: SweepEngine | None = None) -> ExperimentTable:
    """Measure every workload and build the Figure 1 breakdown table."""
    config = config or RunConfig()
    engine = engine or SweepEngine()
    results = engine.run(cells(config))
    table = ExperimentTable(
        title=(
            "Figure 1. Execution-time breakdown and memory cycles of "
            "scale-out workloads (left) and traditional benchmarks (right)."
        ),
        columns=[
            "Workload",
            "Group",
            "Stalled (OS)",
            "Stalled (App)",
            "Committing (App)",
            "Committing (OS)",
            "Memory",
        ],
    )
    for spec, runs in zip(ALL_WORKLOADS, results):
        breakdowns = [compute_breakdown(r.result) for r in runs]
        n = len(breakdowns)
        table.add_row(
            Workload=spec.display_name,
            Group=spec.group,
            **{
                "Stalled (OS)": sum(b.stalled_os for b in breakdowns) / n,
                "Stalled (App)": sum(b.stalled_app for b in breakdowns) / n,
                "Committing (App)": sum(b.committing_app for b in breakdowns) / n,
                "Committing (OS)": sum(b.committing_os for b in breakdowns) / n,
                "Memory": sum(b.memory for b in breakdowns) / n,
            },
        )
    table.notes.append(
        "Memory cycles overlap the other segments and are plotted "
        "side-by-side in the paper, never stacked (§3.1)."
    )
    return table


def stalled_fraction(table: ExperimentTable, workload: str) -> float:
    """Total stalled fraction (OS + application) of one bar."""
    row = table.row_for("Workload", workload)
    return float(row["Stalled (OS)"]) + float(row["Stalled (App)"])

"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A figure/table reproduced as rows of named columns."""

    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: object) -> dict[str, object]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def to_text(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        widths = {
            column: max(
                len(column),
                *(len(fmt(row.get(column, ""))) for row in self.rows),
            ) if self.rows else len(column)
            for column in self.columns
        }
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(column.ljust(widths[column]) for column in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    fmt(row.get(column, "")).ljust(widths[column])
                    for column in self.columns
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (for spreadsheets/plot scripts)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row.get(column, "") for column in self.columns])
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(fmt(row.get(c, "")) for c in self.columns)
                + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_bars(self, label_column: str, value_columns: list[str] | None = None,
                width: int = 40, scale_max: float | None = None) -> str:
        """Render numeric columns as horizontal ASCII bars — the closest
        a terminal gets to the paper's bar charts."""
        if value_columns is None:
            value_columns = [
                column for column in self.columns
                if column != label_column
                and all(isinstance(row.get(column), (int, float))
                        for row in self.rows)
            ]
        if not value_columns:
            raise ValueError("no numeric columns to chart")
        peak = scale_max
        if peak is None:
            peak = max(
                (abs(float(row.get(column, 0.0) or 0.0))
                 for row in self.rows for column in value_columns),
                default=1.0,
            ) or 1.0
        label_width = max(
            [len(str(row.get(label_column, ""))) for row in self.rows]
            + [len(label_column)]
        )
        lines = [self.title, "=" * len(self.title)]
        for row in self.rows:
            label = str(row.get(label_column, ""))
            for index, column in enumerate(value_columns):
                value = float(row.get(column, 0.0) or 0.0)
                filled = int(round(min(abs(value) / peak, 1.0) * width))
                marker = "█" if index == 0 else "▒"
                prefix = label if index == 0 else ""
                lines.append(
                    f"{prefix:<{label_width}} |{marker * filled:<{width}}| "
                    f"{value:.3f} {column if len(value_columns) > 1 else ''}"
                    .rstrip()
                )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()

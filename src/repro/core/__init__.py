"""CloudSuite and the characterization methodology — the paper's core.

This package ties everything together: the workload registry (§3.2 and
§3.3 configurations), the measurement runner (ramp-up + steady-state
window, §3.1), the execution-time-breakdown and counter analyses, the
cache-sensitivity (polluter) methodology, and one experiment module per
table/figure of the evaluation.
"""

from repro.core.workloads import (
    WorkloadSpec,
    REGISTRY,
    SCALE_OUT,
    TRADITIONAL,
    ALL_WORKLOADS,
    build_app,
)
from repro.core.runner import RunConfig, WorkloadRun, run_workload, run_workload_smt
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core import analysis

__all__ = [
    "WorkloadSpec",
    "REGISTRY",
    "SCALE_OUT",
    "TRADITIONAL",
    "ALL_WORKLOADS",
    "build_app",
    "RunConfig",
    "WorkloadRun",
    "run_workload",
    "run_workload_smt",
    "ExecutionBreakdown",
    "compute_breakdown",
    "analysis",
]

"""Measurement runner (§3.1 methodology).

The paper measures 180 s of steady state after ramp-up; the simulated
equivalent is a functional warmup (steady-state LLC contents plus a
short execution replay) followed by a fixed micro-op measurement
window.  ``run_workload`` executes one hardware context; SMT and
multi-core variants build on it.

Results are cached per (workload, configuration) within the process —
bounded by a small LRU — so the benchmark harness can assemble several
figures without re-running identical configurations.

Resilience: a :class:`~repro.faults.plan.FaultPlan` in the
configuration routes every run through the fault injector (degraded
modes), and each live trace is wrapped in a watchdog budget guard so a
wedged serve loop raises instead of hanging a sweep.

Single-core runs (``run_workload`` and non-SMT group members) are
trace-driven: the measurement stream is captured once per
``(workload, member, seed, window, fault_plan)`` through
:mod:`repro.trace.pipeline` and replayed against each machine
configuration.  SMT and chip runs interleave thread generation with
core timing, so their stream content depends on the configuration
under test — they keep live generation through
:class:`repro.trace.live.LiveSource`, behind the same source protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.apps.base import ServerApp
from repro.core.sweep import config_fingerprint
from repro.core.workloads import build_app
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import RunawayTraceError
from repro.trace import pipeline as trace_pipeline
from repro.trace.capture import TraceKey
from repro.trace.live import LiveSource, live_stream
from repro.uarch.chip import Chip, ChipResult
from repro.uarch.core import Core, CoreResult
from repro.uarch.dram import per_core_utilization
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams

__all__ = [
    "RunConfig",
    "WorkloadRun",
    "ChipRun",
    "RunawayTraceError",
    "run_workload",
    "run_workload_smt",
    "run_workload_members",
    "run_workload_chip",
    "guarded_trace",
    "metric_mean",
    "metric_range",
    "clear_cache",
]


@dataclass(frozen=True)
class RunConfig:
    """One measurement configuration."""

    params: MachineParams = field(default_factory=MachineParams)
    window_uops: int = 100_000
    warm_uops: int = 40_000
    seed: int = 7
    #: Optional degraded-mode schedule; ``None`` (or an empty plan,
    #: which normalizes to ``None``) measures healthy steady state.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        # An empty plan is semantically identical to no plan; normalize
        # so the two configurations share one cache entry and one
        # (byte-identical) execution path.
        if self.fault_plan is not None and self.fault_plan.is_empty():
            object.__setattr__(self, "fault_plan", None)

    def scaled(self, factor: float) -> "RunConfig":
        """A copy with the measurement window scaled by ``factor``."""
        return replace(
            self,
            window_uops=max(2_000, int(self.window_uops * factor)),
            warm_uops=max(1_000, int(self.warm_uops * factor)),
        )


@dataclass
class WorkloadRun:
    """A finished measurement.

    ``app`` is the live server instance for in-process runs, and
    ``None`` for runs restored from the on-disk store or a worker
    process — every figure consumes only ``config`` and ``result``.
    """

    name: str
    config: RunConfig
    result: CoreResult
    app: ServerApp | None

    @property
    def freq_hz(self) -> float:
        return self.config.params.freq_hz

    def bandwidth_utilization(self, active_cores: int = 4) -> float:
        r = self.result
        return per_core_utilization(
            r.offchip_bytes, r.cycles, self.freq_hz,
            self.config.params.peak_bandwidth_bytes_per_s, active_cores,
        )

    def os_bandwidth_fraction(self) -> float:
        r = self.result
        return r.offchip_bytes_os / r.offchip_bytes if r.offchip_bytes else 0.0


#: Bounded measurement cache: least-recently-used entries are evicted
#: once the cap is reached, so long sessions (or embedding processes)
#: cannot grow the cache without bound.
_CACHE: OrderedDict[str, WorkloadRun] = OrderedDict()
_CACHE_CAPACITY = 128


def clear_cache() -> None:
    """Drop every cached measurement, the trace memo, and the pipeline
    taps (tests use this for isolation)."""
    _CACHE.clear()
    trace_pipeline.reset()


def _cache_get(key: str):
    hit = _CACHE.get(key)
    if hit is not None:
        _CACHE.move_to_end(key)
    return hit


def _cache_put(key: str, run) -> None:
    _CACHE[key] = run
    _CACHE.move_to_end(key)
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)


def _cache_key(kind: str, name: str, config: RunConfig) -> str:
    # The key is the canonical fingerprint over *every* configuration
    # field.  The previous hand-picked tuple omitted the memory
    # subsystem (latency, channels, peak bandwidth, MSHRs, buffers,
    # TLBs, ...), so sweeps over those dimensions silently returned the
    # first-seen configuration's results.
    return config_fingerprint(kind, name, config)


def _attach_faults(app: ServerApp, config: RunConfig) -> None:
    """Attach a fresh injector when the config schedules faults."""
    if config.fault_plan is not None:
        app.attach_faults(FaultInjector(config.fault_plan))


def guarded_trace(app: ServerApp, tid: int, budget: int, label: str):
    """A live app trace wrapped in the runaway-trace watchdog.

    Every live-generation path that feeds a core must come through
    here (the ablation experiments included), so a wedged serve loop
    raises :class:`RunawayTraceError` instead of hanging the sweep.
    Replayed traces were bounded at capture time and skip the guard.
    """
    return live_stream(app, tid, budget, label)


def run_workload(name: str, config: RunConfig | None = None,
                 use_cache: bool = True,
                 require_app: bool = False) -> WorkloadRun:
    """Measure one workload on one core (the Figures 1/2/5/7 setup).

    Trace-driven: the measurement stream is materialized through the
    capture/replay pipeline (captured at most once per trace key, then
    replayed per machine configuration).  ``require_app=True`` forces a
    run whose ``app`` is the live instance that produced the trace —
    the faults figure reads its service metrics, which a store-restored
    trace cannot supply.
    """
    config = config or RunConfig()
    key = _cache_key("single", name, config)
    if use_cache and (hit := _cache_get(key)) is not None \
            and not (require_app and hit.app is None):
        return hit
    trace_key = TraceKey.from_config(name, config)
    captured, app = trace_pipeline.materialize(
        trace_key, use_store=use_cache, require_app=require_app)
    result = trace_pipeline.replay(captured, config.params)
    run = WorkloadRun(name, config, result, app)
    if use_cache:
        _cache_put(key, run)
    return run


def run_workload_smt(name: str, config: RunConfig | None = None,
                     use_cache: bool = True) -> WorkloadRun:
    """Measure one workload with two threads on one SMT core (Fig. 3).

    SMT streams are pulled in core-interleaved order from one shared
    app, so their content depends on the timing configuration — the
    run stays live (guarded) behind a :class:`LiveSource`.
    """
    config = config or RunConfig()
    smt_params = config.params.with_smt(2)
    config = replace(config, params=smt_params)
    key = _cache_key("smt", name, config)
    if use_cache and (hit := _cache_get(key)) is not None:
        return hit
    app = build_app(name, seed=config.seed)
    _attach_faults(app, config)
    half = config.window_uops // 2
    source = LiveSource(app, budgets=(half, half), label=name,
                        warm_uops=config.warm_uops)
    hierarchy = MemoryHierarchy(smt_params)
    source.warm_into(hierarchy)
    core = Core(smt_params, hierarchy)
    result = core.run(source.streams())
    run = WorkloadRun(name, config, result, app)
    if use_cache:
        _cache_put(key, run)
    return run


#: Synth groups whose members the paper measures separately and averages.
_GROUP_MEMBERS: dict[str, list[str]] = {
    "parsec-cpu": ["blackscholes", "swaptions"],
    "parsec-mem": ["streamcluster", "canneal"],
    "specint-cpu": ["h264ref", "perlbench"],
    "specint-mem": ["mcf", "libquantum"],
}


def run_workload_members(name: str, config: RunConfig | None = None,
                         smt: bool = False,
                         use_cache: bool = True) -> list[WorkloadRun]:
    """Measure a workload as the paper reports it: synthetic benchmark
    groups (PARSEC/SPECint cpu/mem) run one member at a time — their
    metrics are averaged and their spread gives Figure 3's range bars —
    while every other workload is a single run."""
    config = config or RunConfig()
    members = _GROUP_MEMBERS.get(name)
    runner = run_workload_smt if smt else run_workload
    if members is None:
        return [runner(name, config, use_cache)]
    runs = []
    for member in members:
        member_config = replace(config, window_uops=config.window_uops // 2,
                                warm_uops=config.warm_uops // 2)
        runs.append(_run_member(name, member, member_config, smt, use_cache))
    return runs


def _run_member(group: str, member: str, config: RunConfig,
                smt: bool, use_cache: bool = True) -> WorkloadRun:
    from repro.core.workloads import REGISTRY

    params = config.params.with_smt(2) if smt else config.params
    key = _cache_key("smt-member" if smt else "member", f"{group}:{member}",
                     replace(config, params=params))
    if use_cache and (hit := _cache_get(key)) is not None:
        return hit
    label = f"{group}:{member}"
    if smt:
        spec = REGISTRY[group]
        app_cls = type(spec.factory(0))
        app = app_cls(seed=config.seed, member=member)
        _attach_faults(app, config)
        half = config.window_uops // 2
        source = LiveSource(app, budgets=(half, half), label=label,
                            warm_uops=config.warm_uops)
        hierarchy = MemoryHierarchy(params)
        source.warm_into(hierarchy)
        core = Core(params, hierarchy)
        result = core.run(source.streams())
    else:
        trace_key = TraceKey.from_config(group, config, member=member)
        captured, app = trace_pipeline.materialize(trace_key,
                                                   use_store=use_cache)
        result = trace_pipeline.replay(captured, params)
    run = WorkloadRun(label, replace(config, params=params), result, app)
    if use_cache:
        _cache_put(key, run)
    return run


def metric_mean(runs: list[WorkloadRun], metric) -> float:
    """Average a per-run metric across group members."""
    values = [metric(run.result) for run in runs]
    return sum(values) / len(values) if values else 0.0


def metric_range(runs: list[WorkloadRun], metric) -> tuple[float, float]:
    """Min/max of a per-run metric (the Figure 3 range bars)."""
    values = [metric(run.result) for run in runs]
    return (min(values), max(values)) if values else (0.0, 0.0)


@dataclass
class ChipRun:
    """A multi-core measurement (the Figure 6 two-socket setup)."""

    name: str
    config: RunConfig
    chip: Chip
    result: ChipResult
    app: ServerApp

    @property
    def summed(self) -> CoreResult:
        return self.result.summed()


def run_workload_chip(
    name: str,
    config: RunConfig | None = None,
    num_cores: int = 4,
    segments: int = 8,
    use_cache: bool = True,
) -> ChipRun:
    """Run one app across ``num_cores`` cores of a shared-LLC chip,
    with threads split across two sockets (cores 0..n/2-1 on socket 0)."""
    from repro.core.workloads import REGISTRY

    config = config or RunConfig()
    key = _cache_key(f"chip{num_cores}x{segments}", name, config)
    if use_cache and (hit := _cache_get(key)) is not None:
        return hit  # type: ignore[return-value]
    spec = REGISTRY[name]
    if spec.multithreaded:
        # One server process: its threads share the dataset and kernel.
        apps = [build_app(name, seed=config.seed)] * num_cores
        tids = list(range(num_cores))
        _attach_faults(apps[0], config)
    else:
        # One independent process per core (SAT Solver, PARSEC, SPECint
        # run one instance per core, §3.2/§3.3): disjoint address spaces.
        from repro.machine.address_space import set_default_asid

        apps = []
        for i in range(num_cores):
            set_default_asid(i)
            apps.append(build_app(name, seed=config.seed + i))
            _attach_faults(apps[-1], config)
        set_default_asid(0)
        tids = [0] * num_cores
    from repro.trace.live import live_segments, warm_app

    chip = Chip(config.params, num_cores=num_cores)
    for core, app in zip(chip.cores, apps):
        warm_app(app, core.hierarchy,
                 trace_uops=max(2_000, config.warm_uops // 8))
    # Measurement starts now: forget who wrote what during warmup/setup.
    chip.directory.clear()
    chip.directory.stats.__init__()
    per_core_budget = config.window_uops // num_cores
    per_core_segments = [
        live_segments(app, tid, per_core_budget, segments)
        for app, tid in zip(apps, tids)
    ]
    result = chip.run_segments(per_core_segments)
    run = ChipRun(name, config, chip, result, apps[0])
    if use_cache:
        _cache_put(key, run)  # type: ignore[arg-type]
    return run

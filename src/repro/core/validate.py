"""Physical-invariant validation for measurement results.

Every figure in the reproduction is a function of ``CoreResult``
counters.  A torn store document, a half-dead pool worker, or a future
refactoring bug can hand the figure pipeline counters that are
*physically impossible* — negative miss counts, an IPC above the
machine's issue width, more OS cycles than total cycles — and without a
gate those silently skew a table.  This module is that gate: a result
entering or leaving the persistence layer (and every payload a sweep
worker ships back) is checked against the invariants below and rejected
loudly, with a diagnostic naming each violated invariant, instead of
being averaged into a figure.

The invariants are deliberately conservative — every one of them holds
for all fourteen workloads in healthy, degraded (fault-injected), SMT,
and chip-summed configurations:

* cycles and instructions are strictly positive (MPKI and IPC are
  otherwise undefined);
* every raw counter is non-negative;
* committing + stalled cycles account for exactly the measured cycles
  (the §3.1 classification is a partition);
* memory and super-queue busy cycles never exceed total cycles;
* IPC is bounded by the commit width (times hardware threads);
* MLP never exceeds the super-queue capacity (``mshr_entries``);
* hit/miss pairs are consistent (L2 hits <= L2 accesses, mispredicts
  <= branches, L2-I misses <= L1-I misses; LLC misses are deliberately
  *not* bounded by ``llc_data_refs`` — misses include instruction-side
  fills while the ref counter is data-only);
* every OS-attributed counter is bounded by its total;
* loads + stores never exceed committed instructions.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Sequence

from repro.uarch.core import CoreResult
from repro.uarch.params import MachineParams

__all__ = [
    "ValidationError",
    "check_result",
    "validate_result",
    "validate_runs",
    "check_cluster_summary",
    "validate_cluster_summaries",
    "check_cost_model",
    "validate_cost_model",
]

#: ``(os_counter, total_counter)`` pairs: OS activity is a subset.
_OS_SUBSET_PAIRS = (
    ("os_instructions", "instructions"),
    ("committing_cycles_os", "committing_cycles"),
    ("stalled_cycles_os", "stalled_cycles"),
    ("l1i_misses_os", "l1i_misses"),
    ("l2i_misses_os", "l2i_misses"),
    ("remote_dirty_hits_os", "remote_dirty_hits"),
    ("offchip_bytes_os", "offchip_bytes"),
)

#: ``(part, whole)`` pairs: the part can never exceed the whole.
_BOUNDED_PAIRS = (
    ("memory_cycles", "cycles"),
    ("superq_busy_cycles", "cycles"),
    ("branch_mispredicts", "branches"),
    ("l2_demand_hits", "l2_demand_accesses"),
    ("l2i_misses", "l1i_misses"),
)


class ValidationError(ValueError):
    """A result violated physical invariants; carries the diagnostics."""

    def __init__(self, context: str, violations: Sequence[str]) -> None:
        self.context = context
        self.violations = list(violations)
        super().__init__(f"{context}: " + "; ".join(self.violations))


def check_result(result: CoreResult,
                 params: MachineParams | None = None) -> list[str]:
    """Every violated invariant in ``result``, as diagnostic strings.

    An empty list means the result is physically plausible.  ``params``
    enables the machine-dependent bounds (issue width, super-queue
    size); without it only the machine-independent checks run.
    """
    violations: list[str] = []
    for f in fields(CoreResult):
        value = getattr(result, f.name)
        if f.name == "per_thread_instructions":
            if any(count < 0 for count in value):
                violations.append(
                    f"per_thread_instructions has a negative entry: {value}")
            continue
        if not isinstance(value, (int, float)):
            violations.append(f"{f.name} is not numeric: {value!r}")
            continue
        if value != value:  # NaN poisons every downstream average
            violations.append(f"{f.name} is NaN")
        elif value < 0:
            violations.append(f"{f.name} is negative ({value})")
    if violations:
        return violations  # arithmetic below assumes sane counters

    if result.cycles <= 0:
        violations.append(f"cycles must be positive ({result.cycles})")
    if result.instructions <= 0:
        violations.append(
            f"instructions must be positive ({result.instructions})")
    partition = result.committing_cycles + result.stalled_cycles
    if partition != result.cycles:
        violations.append(
            "committing + stalled cycles must equal cycles "
            f"({result.committing_cycles} + {result.stalled_cycles} "
            f"!= {result.cycles})")
    for part, whole in _BOUNDED_PAIRS:
        if getattr(result, part) > getattr(result, whole):
            violations.append(
                f"{part} ({getattr(result, part)}) exceeds "
                f"{whole} ({getattr(result, whole)})")
    for os_name, total_name in _OS_SUBSET_PAIRS:
        if getattr(result, os_name) > getattr(result, total_name):
            violations.append(
                f"{os_name} ({getattr(result, os_name)}) exceeds "
                f"{total_name} ({getattr(result, total_name)})")
    if result.loads + result.stores > result.instructions:
        violations.append(
            f"loads + stores ({result.loads} + {result.stores}) exceed "
            f"instructions ({result.instructions})")

    if params is not None and result.cycles > 0:
        width = params.width * max(1, params.smt_threads)
        if result.instructions > result.cycles * width:
            violations.append(
                f"IPC {result.instructions / result.cycles:.2f} exceeds "
                f"the issue-width bound {width}")
        if result.mlp > params.mshr_entries:
            violations.append(
                f"MLP {result.mlp:.2f} exceeds the super-queue capacity "
                f"({params.mshr_entries} MSHRs)")
    return violations


def validate_result(result: CoreResult,
                    params: MachineParams | None = None,
                    context: str = "result") -> None:
    """Raise :class:`ValidationError` if ``result`` is implausible."""
    violations = check_result(result, params)
    if violations:
        raise ValidationError(context, violations)


def validate_runs(runs: Sequence, context: str = "sweep") -> None:
    """Validate every run in a cell's result list (see ``WorkloadRun``)."""
    for run in runs:
        validate_result(run.result, run.config.params,
                        context=f"{context}: run {run.name!r}")


#: Counter keys every cluster summary must carry, all non-negative.
_CLUSTER_COUNTERS = (
    "requests", "successes", "failures", "retries", "hedges", "timeouts",
    "drops", "p50", "p99", "p999", "max", "acked_writes", "acked_lost",
    "ejections", "readmissions", "hints_stored", "hints_replayed",
    "read_repairs", "probes", "latency_bound", "sim_us", "events_fired",
)


def check_cluster_summary(summary: dict) -> list[str]:
    """Every violated invariant in one fleet-cell summary.

    The fleet analogue of :func:`check_result`: a summary entering or
    leaving persistence must be physically plausible — outcome counts
    partition the requests, percentiles are ordered, every recorded
    latency sits under the policy-derived bound, and no more
    acknowledged writes are lost than were acknowledged.
    """
    violations: list[str] = []
    if not isinstance(summary, dict):
        return [f"summary is not an object: {summary!r}"]
    for key in _CLUSTER_COUNTERS:
        value = summary.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            violations.append(f"{key} is not an integer: {value!r}")
        elif value < 0:
            violations.append(f"{key} is negative ({value})")
    if violations:
        return violations  # arithmetic below assumes sane counters

    if summary["successes"] + summary["failures"] != summary["requests"]:
        violations.append(
            "successes + failures must equal requests "
            f"({summary['successes']} + {summary['failures']} "
            f"!= {summary['requests']})")
    if not summary["p50"] <= summary["p99"] <= summary["p999"] \
            <= summary["max"]:
        violations.append(
            f"percentiles out of order (p50 {summary['p50']}, "
            f"p99 {summary['p99']}, p999 {summary['p999']}, "
            f"max {summary['max']})")
    if summary["max"] > summary["latency_bound"]:
        violations.append(
            f"max latency {summary['max']} exceeds the policy bound "
            f"{summary['latency_bound']} (the client gave up later than "
            "its own timeout discipline allows)")
    if summary["hedges"] > summary["requests"]:
        violations.append(
            f"hedges ({summary['hedges']}) exceed requests "
            f"({summary['requests']})")
    if summary["timeouts"] > summary["requests"]:
        violations.append(
            f"timeouts ({summary['timeouts']}) exceed requests "
            f"({summary['requests']})")
    if summary["acked_lost"] > summary["acked_writes"]:
        violations.append(
            f"acked_lost ({summary['acked_lost']}) exceeds acked_writes "
            f"({summary['acked_writes']})")
    goodput = summary.get("goodput")
    if not isinstance(goodput, (int, float)) or isinstance(goodput, bool) \
            or goodput != goodput or not 0.0 <= goodput <= 1.0:
        violations.append(f"goodput must be in [0, 1]: {goodput!r}")
    return violations


def validate_cluster_summaries(summaries: Sequence[dict],
                               context: str = "cluster") -> None:
    """Raise :class:`ValidationError` on any implausible summary."""
    for index, summary in enumerate(summaries):
        violations = check_cluster_summary(summary)
        if violations:
            raise ValidationError(f"{context}: summary {index}", violations)


def check_cost_model(doc: dict) -> list[str]:
    """Every violated invariant in one service-cost-model document.

    The calibration analogue of :func:`check_cluster_summary`: a cost
    model entering or leaving persistence must cover exactly the known
    op classes, carry positive quantile-monotone latency tables, and —
    for measured models — stay within the physical bound its own
    provenance implies (no per-request quantile can exceed the whole
    replayed window's wall-clock at the stated blade frequency).
    """
    # Imported here: the cluster package imports this module's
    # ValidationError at call time, so a top-level import would cycle.
    from repro.cluster.costs import OP_CLASSES, QUANTILE_POINTS

    violations: list[str] = []
    if not isinstance(doc, dict):
        return [f"cost model is not an object: {doc!r}"]
    source = doc.get("source")
    if source not in ("static", "measured"):
        violations.append(
            f"source must be 'static' or 'measured': {source!r}")
    ops = doc.get("ops")
    if not isinstance(ops, dict):
        return violations + [f"ops is not an object: {ops!r}"]
    if tuple(sorted(ops)) != tuple(sorted(OP_CLASSES)):
        violations.append(
            f"ops must cover exactly {', '.join(OP_CLASSES)}; "
            f"got {', '.join(sorted(ops))}")
        return violations
    blade_mhz = doc.get("blade_mhz")
    if source == "measured":
        if not isinstance(blade_mhz, (int, float)) \
                or isinstance(blade_mhz, bool) or not blade_mhz > 0:
            violations.append(
                f"measured model needs a positive blade_mhz: {blade_mhz!r}")
        if not doc.get("uarch"):
            violations.append("measured model needs its uarch digest")
    provenance = doc.get("provenance") or {}
    for op in OP_CLASSES:
        table = ops[op]
        if not isinstance(table, dict):
            violations.append(f"{op}: table is not an object: {table!r}")
            continue
        values = []
        for name, _rank in QUANTILE_POINTS:
            value = table.get(name)
            if not isinstance(value, int) or isinstance(value, bool):
                violations.append(f"{op}.{name} is not an integer: {value!r}")
            elif value <= 0:
                violations.append(f"{op}.{name} must be positive ({value})")
            else:
                values.append(value)
        if len(values) != len(QUANTILE_POINTS):
            continue
        if values != sorted(values):
            violations.append(
                f"{op}: quantiles out of order "
                + ", ".join(f"{name} {table[name]}"
                            for name, _rank in QUANTILE_POINTS))
            continue
        measured_op = provenance.get(op)
        if source == "measured" and isinstance(measured_op, dict) \
                and isinstance(blade_mhz, (int, float)) and blade_mhz > 0:
            cycles = measured_op.get("cycles")
            if isinstance(cycles, int) and not isinstance(cycles, bool) \
                    and cycles > 0:
                # Tables are ns: cycles / MHz = µs, ×1000 = ns, +1 slack
                # for the rounding the quantile reduction applies.
                bound = int(-(-(cycles * 1000) // blade_mhz)) + 1
                if values[-1] > bound:
                    violations.append(
                        f"{op}.p95 ({values[-1]} ns) exceeds the replayed "
                        f"window's wall-clock bound ({bound} ns from "
                        f"{cycles} cycles at {blade_mhz} MHz)")
    return violations


def validate_cost_model(doc: dict, context: str = "cost model") -> None:
    """Raise :class:`ValidationError` if a cost model is implausible."""
    violations = check_cost_model(doc)
    if violations:
        raise ValidationError(context, violations)

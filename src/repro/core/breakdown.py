"""Execution-time breakdown (Figure 1 methodology, §3.1).

"We classify each cycle of execution as Committing if at least one
instruction was committed during that cycle or as Stalled otherwise.
Overlapped with the execution-time breakdown, we show the Memory cycles
bar, which approximates the number of cycles when the processor could
not commit instructions due to outstanding long-latency memory
accesses."  Memory cycles are plotted side-by-side, never stacked,
because data stalls overlap committing cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.core import CoreResult


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Fractions of total execution cycles (the Figure 1 bar segments)."""

    stalled_app: float
    stalled_os: float
    committing_app: float
    committing_os: float
    memory: float  # the overlapped side-bar

    @property
    def stalled(self) -> float:
        return self.stalled_app + self.stalled_os

    @property
    def committing(self) -> float:
        return self.committing_app + self.committing_os

    def validate(self) -> None:
        total = self.stalled + self.committing
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"breakdown does not sum to 1: {total}")


def compute_breakdown(result: CoreResult) -> ExecutionBreakdown:
    """Classify a run's cycles per the paper's 3.1 methodology."""
    cycles = result.cycles
    if cycles == 0:
        return ExecutionBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
    stalled_os = result.stalled_cycles_os / cycles
    stalled_app = (result.stalled_cycles - result.stalled_cycles_os) / cycles
    committing_os = result.committing_cycles_os / cycles
    committing_app = (
        result.committing_cycles - result.committing_cycles_os
    ) / cycles
    memory = min(1.0, result.memory_cycles / cycles)
    return ExecutionBreakdown(
        stalled_app=stalled_app,
        stalled_os=stalled_os,
        committing_app=committing_app,
        committing_os=committing_os,
        memory=memory,
    )

"""Parallel, incrementally-cached sweep engine for the experiment harness.

Three pieces, layered so each is useful on its own:

* :func:`config_fingerprint` — a canonical, collision-free digest of a
  measurement configuration.  It is derived *structurally* from every
  field of the frozen ``RunConfig``/``MachineParams``/``FaultPlan``
  dataclasses (recursing through nested dataclasses and tuples), so a
  configuration dimension can never silently fall out of the cache key
  again: a field added tomorrow participates automatically.  The
  in-process LRU in :mod:`repro.core.runner` and the on-disk store in
  :mod:`repro.core.store` both key on it.

* :class:`Cell` — one declarative unit of sweep work: "measure workload
  *name* under *config* with runner *kind*".  The figure modules emit
  lists of cells instead of calling the runner in ad-hoc loops.

* :class:`SweepEngine` — executes a cell list, optionally fanning the
  cells across a supervised process pool (``jobs > 1``, per-cell
  futures with deadlines, retries, and crash isolation — see
  :mod:`repro.core.supervise`) and consulting a persistent
  :class:`~repro.core.store.ResultStore` first.  Fresh results are
  validated against physical invariants, journaled to a resumable
  checkpoint, and merged in *cell order* regardless of completion
  order, so a parallel sweep produces byte-identical tables to a
  serial one at the same seed.

The fingerprint functions deliberately import nothing from the runner:
``runner.py`` imports them at module load, while this module reaches
back into the runner lazily inside the execution helpers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Sequence

from repro.trace.codec import TRACE_SCHEMA
from repro.trace.replay import replay_path_for
from repro.uarch.fastpath import REPLAY_ENGINE_SCHEMA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.runner import RunConfig, WorkloadRun
    from repro.core.store import ResultStore
    from repro.faults.retry import RetryPolicy

__all__ = [
    "FINGERPRINT_SCHEMA",
    "COST_MODEL_SCHEMA",
    "canonical",
    "config_fingerprint",
    "Cell",
    "SweepEngine",
]

#: Bump when the *meaning* of a configuration field changes (not when
#: fields are added — those change the fingerprint structurally).
FINGERPRINT_SCHEMA = 1

#: Version of the service-cost-model semantics (how per-op quantile
#: tables are derived from uarch replay and how backends sample them).
#: Folded into every fingerprint: a change to the calibration algorithm
#: must invalidate cached fleet cells even when the configuration
#: dataclasses are structurally unchanged.  Lives here (not in
#: ``repro.cluster``) because the fingerprint side must stay importable
#: without touching the fleet package.
COST_MODEL_SCHEMA = 1


def canonical(value: object) -> object:
    """The canonical JSON-able form of a configuration value.

    Dataclasses map to ``{"__type__": ..., field: canonical(value)}``
    over *every* declared field, tuples/lists to lists, scalars to
    themselves.  Anything else is a hard error — an unfingerprintable
    configuration must fail loudly, not alias silently.
    """
    if is_dataclass(value) and not isinstance(value, type):
        doc: dict[str, object] = {"__type__": type(value).__name__}
        for f in fields(value):
            doc[f.name] = canonical(getattr(value, f.name))
        return doc
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot fingerprint configuration value of type "
        f"{type(value).__name__!r}: {value!r}"
    )


def config_fingerprint(kind: str, name: str, config: "RunConfig") -> str:
    """A collision-free hex digest identifying one measurement.

    Unlike the historical hand-picked cache key, this covers *all*
    fields of the configuration (memory latency, channel count, peak
    bandwidth, MSHRs, load/store buffers, fetch queue, branch penalty,
    TLB geometry, ...), so sweeps over any machine dimension get
    distinct cache entries.
    """
    document = {
        "schema": FINGERPRINT_SCHEMA,
        # Results are computed from captured traces, so the codec
        # schema is measurement provenance: folding it in means a
        # codec change invalidates every cached result (in-process LRU
        # and on-disk store) instead of silently serving counters
        # derived from an incompatible encoding.
        "trace_schema": TRACE_SCHEMA,
        # Engine selection is part of provenance: which replay loop
        # timed the measurement (and that loop's algorithm generation)
        # is folded in, so a cached result computed by one engine can
        # never be served for a configuration the other would run —
        # and an engine algorithm bump invalidates exactly the
        # fast-path results.
        "replay": {
            "engine": REPLAY_ENGINE_SCHEMA,
            "path": replay_path_for(kind, config),
        },
        # Fleet cells embed a ServiceCostModel in their configuration;
        # the model's *derivation* (capture -> replay -> quantile table
        # -> sampled draw) is provenance of its own, so its schema is
        # folded into every fingerprint alongside the trace codec's.
        "cost_model": COST_MODEL_SCHEMA,
        "kind": kind,
        "name": name,
        "config": canonical(config),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Runner dispatch kinds a cell may name.
CELL_KINDS = ("single", "smt", "members", "smt-members", "chip")


@dataclass(frozen=True)
class Cell:
    """One declarative unit of sweep work.

    ``kind`` selects the runner entry point; ``num_cores``/``segments``
    only apply to ``chip`` cells (they mirror ``run_workload_chip``).
    A chip cell's result is the chip's *summed* per-core counters
    wrapped as a ``WorkloadRun`` — the form every figure consumes.
    """

    kind: str
    name: str
    config: "RunConfig"
    num_cores: int = 4
    segments: int = 8

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; "
                             f"known: {', '.join(CELL_KINDS)}")

    def fingerprint(self) -> str:
        kind = self.kind
        if kind == "chip":
            kind = f"chip{self.num_cores}x{self.segments}"
        return config_fingerprint(kind, self.name, self.config)


def _execute_cell(cell: Cell, use_cache: bool = True) -> list["WorkloadRun"]:
    """Run one cell in-process and return its runs (1+ for groups)."""
    from repro.core import runner

    if cell.kind == "single":
        return [runner.run_workload(cell.name, cell.config, use_cache)]
    if cell.kind == "smt":
        return [runner.run_workload_smt(cell.name, cell.config, use_cache)]
    if cell.kind == "members":
        return runner.run_workload_members(cell.name, cell.config,
                                           use_cache=use_cache)
    if cell.kind == "smt-members":
        return runner.run_workload_members(cell.name, cell.config, smt=True,
                                           use_cache=use_cache)
    chip_run = runner.run_workload_chip(
        cell.name, cell.config, num_cores=cell.num_cores,
        segments=cell.segments, use_cache=use_cache,
    )
    return [runner.WorkloadRun(cell.name, chip_run.config,
                               chip_run.summed, chip_run.app)]


def _cell_worker(task: tuple[Cell, bool]) -> list[dict]:
    """Pool worker: execute a cell, return JSON-safe run payloads.

    ``WorkloadRun.app`` holds live simulator state (generators, open
    traces) that must not cross a process boundary; the payload carries
    only what the figures consume — name, config, and counters.
    """
    from repro.core.store import run_to_dict

    cell, use_cache = task
    return [run_to_dict(run) for run in _execute_cell(cell, use_cache)]


class SweepEngine:
    """Executes cell lists under supervision, with persistence.

    ``jobs``            worker processes (1 = serial, in this process).
    ``use_cache``       consult/populate the runner's in-process LRU and
                        the on-disk store (``False`` forces fresh runs).
    ``store``           a :class:`~repro.core.store.ResultStore`, or
                        None to skip disk persistence entirely.
    ``retry``           the :class:`~repro.faults.retry.RetryPolicy`
                        governing per-cell deadlines and retries (see
                        ``RetryPolicy.for_harness``; delays/timeouts in
                        wall-clock seconds).
    ``checkpoint_dir``  directory for crash-safe sweep journals, or
                        None to skip journaling.
    ``resume``          trust an existing journal for this cell set and
                        rerun only the cells it is missing (otherwise a
                        stale journal is discarded).
    ``worker``          the picklable pool entry point; the default
                        executes cells for real — tests substitute
                        fault-injecting wrappers.

    Parallel cells are individually supervised futures: a worker death
    (SIGKILL, OOM, segfault) or a cell overrunning ``retry.timeout``
    costs only the cells in flight, which are retried with backoff on a
    respawned pool; every completed cell is journaled and stored as it
    finishes, and cells whose retries are exhausted surface together as
    a :class:`~repro.core.supervise.SweepCellError` once the rest of
    the sweep is done.

    ``run`` returns one ``list[WorkloadRun]`` per cell, *in cell
    order*; parallel completion order never leaks into results, so
    tables built from them are byte-identical to a serial sweep.
    """

    def __init__(self, jobs: int = 1, use_cache: bool = True,
                 store: "ResultStore | None" = None,
                 retry: "RetryPolicy | None" = None,
                 checkpoint_dir: "str | None" = None,
                 resume: bool = False,
                 worker=None) -> None:
        from repro.faults.retry import RetryPolicy

        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_cache = use_cache
        self.store = store
        self.retry = retry if retry is not None else RetryPolicy.for_harness()
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.worker = worker if worker is not None else _cell_worker

    def run(self, cells: Sequence[Cell]) -> list[list["WorkloadRun"]]:
        from repro.core.store import run_to_dict
        from repro.core.supervise import (SweepCellError, SweepCheckpoint,
                                          SweepSupervisor, run_serial)
        from repro.core.validate import validate_runs

        fingerprints = [cell.fingerprint() for cell in cells]
        checkpoint = None
        if self.checkpoint_dir is not None:
            checkpoint = SweepCheckpoint(self.checkpoint_dir, fingerprints,
                                         resume=self.resume)
        results: list[list["WorkloadRun"] | None] = [None] * len(cells)
        pending: list[tuple[int, Cell, str]] = []
        for index, (cell, fingerprint) in enumerate(zip(cells, fingerprints)):
            hit = None
            if self.store is not None and self.use_cache:
                hit = self.store.get(fingerprint)
            if hit is None and checkpoint is not None:
                hit = self._from_checkpoint(checkpoint, cell, fingerprint)
            if hit is not None:
                results[index] = hit
            else:
                pending.append((index, cell, fingerprint))

        def accept(index: int, cell: Cell, fingerprint: str,
                   runs: list["WorkloadRun"]) -> None:
            # Gatekeeper for every fresh result: an implausible run
            # raises ValidationError here, which the supervisor treats
            # as a cell failure (retried, then reported) — it never
            # reaches the store, the journal, or a figure.
            validate_runs(runs, context=f"cell {cell.kind}:{cell.name}")
            if checkpoint is not None:
                checkpoint.put(fingerprint, [run_to_dict(r) for r in runs])
            if self.store is not None and self.use_cache:
                self.store.put(fingerprint, runs, validate=False)
            results[index] = runs

        failures: list[dict] = []
        if pending:
            self._materialize_traces([cell for _, cell, _ in pending])
            if self.jobs > 1 and len(pending) > 1:
                supervisor = SweepSupervisor(self.worker, self.jobs,
                                             self.retry,
                                             use_cache=self.use_cache)
                failures = supervisor.run(pending, self._payload_acceptor(accept))
            else:
                failures = run_serial(
                    pending, lambda cell: _execute_cell(cell, self.use_cache),
                    self.retry, accept)
        if failures:
            raise SweepCellError(failures)
        if checkpoint is not None:
            checkpoint.complete()
        return results  # type: ignore[return-value]

    def _materialize_traces(self, cells: Sequence[Cell]) -> None:
        """Capture each distinct trace the pending cells replay, once.

        Runs in the parent before cells fan out, so a sweep performs
        O(traces) captures instead of O(cells): serial cells hit the
        in-process memo, pool workers hit the on-disk trace store.
        With ``use_cache`` off the store is skipped in both directions,
        so parallel uncached workers capture for themselves — only the
        parent-side memo sharing is lost.
        """
        from repro.trace.pipeline import materialize_cells

        if self.jobs > 1 and not self.use_cache:
            return  # nothing can carry parent captures to the workers
        materialize_cells(cells, use_store=self.use_cache)

    @staticmethod
    def _payload_acceptor(accept):
        """Wrap ``accept`` to decode pool-worker payloads first; an
        undecodable payload counts as a validation failure (retried)."""
        from repro.core.store import run_from_dict
        from repro.core.validate import ValidationError

        def on_payload(index, cell, fingerprint, payload):
            try:
                runs = [run_from_dict(entry) for entry in payload]
            except (KeyError, TypeError, ValueError) as exc:
                raise ValidationError(
                    f"cell {cell.kind}:{cell.name}",
                    [f"undecodable worker payload: {exc}"]) from exc
            accept(index, cell, fingerprint, runs)
        return on_payload

    def _from_checkpoint(self, checkpoint, cell: Cell,
                         fingerprint: str) -> "list[WorkloadRun] | None":
        """A journaled cell's runs, re-validated; None reruns the cell."""
        from repro.core.store import run_from_dict
        from repro.core.validate import ValidationError, validate_runs

        payload = checkpoint.get(fingerprint)
        if payload is None:
            return None
        try:
            runs = [run_from_dict(entry) for entry in payload]
            validate_runs(runs, context=f"checkpoint {cell.kind}:{cell.name}")
        except (KeyError, TypeError, ValueError, ValidationError):
            return None  # torn or stale journal entry: recompute
        if self.store is not None and self.use_cache:
            self.store.put(fingerprint, runs, validate=False)
        return runs

    def run_flat(self, cells: Sequence[Cell]) -> list["WorkloadRun"]:
        """Like :meth:`run` for single-run cells: one run per cell."""
        flattened: list["WorkloadRun"] = []
        for cell, runs in zip(cells, self.run(cells)):
            if not runs:
                raise ValueError(
                    f"cell {cell.kind}:{cell.name} produced no runs; "
                    "run_flat needs exactly one run per cell (did a "
                    "workload group lose all its members?)")
            flattened.append(runs[0])
        return flattened

"""Parallel, incrementally-cached sweep engine for the experiment harness.

Three pieces, layered so each is useful on its own:

* :func:`config_fingerprint` — a canonical, collision-free digest of a
  measurement configuration.  It is derived *structurally* from every
  field of the frozen ``RunConfig``/``MachineParams``/``FaultPlan``
  dataclasses (recursing through nested dataclasses and tuples), so a
  configuration dimension can never silently fall out of the cache key
  again: a field added tomorrow participates automatically.  The
  in-process LRU in :mod:`repro.core.runner` and the on-disk store in
  :mod:`repro.core.store` both key on it.

* :class:`Cell` — one declarative unit of sweep work: "measure workload
  *name* under *config* with runner *kind*".  The figure modules emit
  lists of cells instead of calling the runner in ad-hoc loops.

* :class:`SweepEngine` — executes a cell list, optionally fanning the
  cells across a process pool (``jobs > 1``) and consulting a
  persistent :class:`~repro.core.store.ResultStore` first.  Results are
  merged in *cell order* regardless of completion order, so a parallel
  sweep produces byte-identical tables to a serial one at the same
  seed.

The fingerprint functions deliberately import nothing from the runner:
``runner.py`` imports them at module load, while this module reaches
back into the runner lazily inside the execution helpers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.runner import RunConfig, WorkloadRun
    from repro.core.store import ResultStore

__all__ = [
    "FINGERPRINT_SCHEMA",
    "canonical",
    "config_fingerprint",
    "Cell",
    "SweepEngine",
]

#: Bump when the *meaning* of a configuration field changes (not when
#: fields are added — those change the fingerprint structurally).
FINGERPRINT_SCHEMA = 1


def canonical(value: object) -> object:
    """The canonical JSON-able form of a configuration value.

    Dataclasses map to ``{"__type__": ..., field: canonical(value)}``
    over *every* declared field, tuples/lists to lists, scalars to
    themselves.  Anything else is a hard error — an unfingerprintable
    configuration must fail loudly, not alias silently.
    """
    if is_dataclass(value) and not isinstance(value, type):
        doc: dict[str, object] = {"__type__": type(value).__name__}
        for f in fields(value):
            doc[f.name] = canonical(getattr(value, f.name))
        return doc
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot fingerprint configuration value of type "
        f"{type(value).__name__!r}: {value!r}"
    )


def config_fingerprint(kind: str, name: str, config: "RunConfig") -> str:
    """A collision-free hex digest identifying one measurement.

    Unlike the historical hand-picked cache key, this covers *all*
    fields of the configuration (memory latency, channel count, peak
    bandwidth, MSHRs, load/store buffers, fetch queue, branch penalty,
    TLB geometry, ...), so sweeps over any machine dimension get
    distinct cache entries.
    """
    document = {
        "schema": FINGERPRINT_SCHEMA,
        "kind": kind,
        "name": name,
        "config": canonical(config),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Runner dispatch kinds a cell may name.
CELL_KINDS = ("single", "smt", "members", "smt-members", "chip")


@dataclass(frozen=True)
class Cell:
    """One declarative unit of sweep work.

    ``kind`` selects the runner entry point; ``num_cores``/``segments``
    only apply to ``chip`` cells (they mirror ``run_workload_chip``).
    A chip cell's result is the chip's *summed* per-core counters
    wrapped as a ``WorkloadRun`` — the form every figure consumes.
    """

    kind: str
    name: str
    config: "RunConfig"
    num_cores: int = 4
    segments: int = 8

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; "
                             f"known: {', '.join(CELL_KINDS)}")

    def fingerprint(self) -> str:
        kind = self.kind
        if kind == "chip":
            kind = f"chip{self.num_cores}x{self.segments}"
        return config_fingerprint(kind, self.name, self.config)


def _execute_cell(cell: Cell, use_cache: bool = True) -> list["WorkloadRun"]:
    """Run one cell in-process and return its runs (1+ for groups)."""
    from repro.core import runner

    if cell.kind == "single":
        return [runner.run_workload(cell.name, cell.config, use_cache)]
    if cell.kind == "smt":
        return [runner.run_workload_smt(cell.name, cell.config, use_cache)]
    if cell.kind == "members":
        return runner.run_workload_members(cell.name, cell.config,
                                           use_cache=use_cache)
    if cell.kind == "smt-members":
        return runner.run_workload_members(cell.name, cell.config, smt=True,
                                           use_cache=use_cache)
    chip_run = runner.run_workload_chip(
        cell.name, cell.config, num_cores=cell.num_cores,
        segments=cell.segments, use_cache=use_cache,
    )
    return [runner.WorkloadRun(cell.name, chip_run.config,
                               chip_run.summed, chip_run.app)]


def _cell_worker(task: tuple[Cell, bool]) -> list[dict]:
    """Pool worker: execute a cell, return JSON-safe run payloads.

    ``WorkloadRun.app`` holds live simulator state (generators, open
    traces) that must not cross a process boundary; the payload carries
    only what the figures consume — name, config, and counters.
    """
    from repro.core.store import run_to_dict

    cell, use_cache = task
    return [run_to_dict(run) for run in _execute_cell(cell, use_cache)]


class SweepEngine:
    """Executes cell lists with optional parallelism and persistence.

    ``jobs``        worker processes (1 = serial, in this process).
    ``use_cache``   consult/populate the runner's in-process LRU and
                    the on-disk store (``False`` forces fresh runs).
    ``store``       a :class:`~repro.core.store.ResultStore`, or None
                    to skip disk persistence entirely.

    ``run`` returns one ``list[WorkloadRun]`` per cell, *in cell
    order*; parallel completion order never leaks into results, so
    tables built from them are byte-identical to a serial sweep.
    """

    def __init__(self, jobs: int = 1, use_cache: bool = True,
                 store: "ResultStore | None" = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_cache = use_cache
        self.store = store

    def run(self, cells: Sequence[Cell]) -> list[list["WorkloadRun"]]:
        from repro.core.store import run_from_dict

        results: list[list["WorkloadRun"] | None] = [None] * len(cells)
        pending: list[tuple[int, Cell, str]] = []
        for index, cell in enumerate(cells):
            fingerprint = cell.fingerprint()
            hit = None
            if self.store is not None and self.use_cache:
                hit = self.store.get(fingerprint)
            if hit is not None:
                results[index] = hit
            else:
                pending.append((index, cell, fingerprint))

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                from concurrent.futures import ProcessPoolExecutor

                tasks = [(cell, self.use_cache) for _, cell, _ in pending]
                workers = min(self.jobs, len(tasks))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    payloads = list(pool.map(_cell_worker, tasks))
                fresh = [[run_from_dict(d) for d in payload]
                         for payload in payloads]
            else:
                fresh = [_execute_cell(cell, self.use_cache)
                         for _, cell, _ in pending]
            for (index, _cell, fingerprint), runs in zip(pending, fresh):
                if self.store is not None and self.use_cache:
                    self.store.put(fingerprint, runs)
                results[index] = runs
        return results  # type: ignore[return-value]

    def run_flat(self, cells: Sequence[Cell]) -> list["WorkloadRun"]:
        """Like :meth:`run` for single-run cells: one run per cell."""
        return [runs[0] for runs in self.run(cells)]

"""MySQL-like backend serving the Olio frontend's queries.

The query mix mirrors what :mod:`repro.apps.webstack.olio`'s pages
issue: event lists (range scans), event/user point reads, tag lookups,
and the occasional insert.  Compared with TPC-C the transactions are
simpler and read-heavier, which is why the paper groups Web Backend
with TPC-E as the "more recent" transaction workloads that scale-out
behaviour most resembles.
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.oltp.engine import StorageEngine
from repro.machine.runtime import Runtime


class WebBackendApp(ServerApp):
    """The Olio database tier on a MySQL-like engine."""

    name = "web-backend"
    os_intensive = True

    CODE_PLAN = [
        ("net_service", 96, "scatter", 7, 0.2),
        ("sql_parser", 160, "scatter", 7, 0.12),
        ("optimizer", 192, "scatter", 7, 0.12),
        ("executor", 256, "scatter", 7, 0.12),
        ("innodb_btree", 192, "scatter", 7, 0.15),
        ("buffer_pool", 160, "scatter", 7, 0.15),
        ("lock_log_code", 128, "scatter", 7, 0.15),
        ("mysql_runtime", 320, "scatter", 7, 0.1),
    ]

    QUERY_MIX = [
        ("q_event_list", 30.0),
        ("q_event_detail", 26.0),
        ("q_user", 18.0),
        ("q_tag_search", 14.0),
        ("q_comments", 8.0),
        ("q_insert_event", 2.5),
        ("q_insert_comment", 1.5),
    ]

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"mysql.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.engine = StorageEngine(self.space)
        self.users = self.engine.create_table("users", 100_000, 512)
        self.events = self.engine.create_table("events", 60_000, 512)
        self.comments = self.engine.create_table("comments", 240_000, 256)
        self.tags = self.engine.create_table("tags", 2_000, 128)
        for u in range(100_000):
            self.users.insert(u)
        for e in range(50_000):
            self.events.insert(e)
        for c in range(160_000):
            self.comments.insert(c)
        for t in range(2_000):
            self.tags.insert(t)
        self._next_event = 50_000
        self._next_comment = 160_000
        self._cdf: list[tuple[float, str]] = []
        total = sum(w for _, w in self.QUERY_MIX)
        acc = 0.0
        for name, weight in self.QUERY_MIX:
            acc += weight / total
            self._cdf.append((acc, name))
        self.queries_served = 0

    def warm_ranges(self):
        engine = self.engine
        return [
            (engine.locks.lock_words.base, engine.locks.lock_words.nbytes),
            (engine.buffer_control.base, engine.buffer_control.nbytes),
            (engine.log_buffer, engine.log_buffer_bytes),
            (self.tags.rows.base, self.tags.rows.nbytes),
        ]

    def serve(self, rt: Runtime) -> None:
        draw = self.rng.random()
        query = next(name for edge, name in self._cdf if draw <= edge)
        self.kernel.recv(rt, 192, sock_id=rt.tid * 67 + self.queries_served % 32)
        with rt.frame(self.fns["net_service"]):
            rt.alu(n=25, chain=False)
        with rt.frame(self.fns["sql_parser"]):
            rt.alu(n=110, chain=False)
        with rt.frame(self.fns["optimizer"]):
            rt.alu(n=120, chain=False)
        with rt.frame(self.fns["executor"]):
            self.engine.touch_buffer_manager(rt)
            with rt.frame(self.fns["innodb_btree"]):
                getattr(self, f"_{query}")(rt)
        with rt.frame(self.fns["mysql_runtime"]):
            rt.alu(n=110, chain=False)
        self.kernel.send(rt, 2048, sock_id=rt.tid * 67 + self.queries_served % 32)
        self.queries_served += 1

    # -- queries ------------------------------------------------------------
    def _q_event_list(self, rt: Runtime) -> None:
        start = self.rng.randrange(50_000)
        rows = self.events.index.range_scan(start, 12, rt)
        for _key, slot in rows[:8]:
            token = rt.load(self.events.rows.addr(slot))
            rt.alu((token,), n=6, chain=False)

    def _q_event_detail(self, rt: Runtime) -> None:
        self.events.read(self.rng.randrange(50_000), rt, lines=4)
        self.comments.index.range_scan(self.rng.randrange(160_000), 10, rt)
        rt.alu(n=40, chain=False)

    def _q_user(self, rt: Runtime) -> None:
        self.users.read(self.rng.randrange(100_000), rt, lines=4)
        rt.alu(n=30, chain=False)

    def _q_tag_search(self, rt: Runtime) -> None:
        self.tags.read(self.rng.randrange(2_000), rt, lines=1)
        self.events.index.range_scan(self.rng.randrange(50_000), 10, rt)
        rt.alu(n=35, chain=False)

    def _q_comments(self, rt: Runtime) -> None:
        rows = self.comments.index.range_scan(self.rng.randrange(160_000), 8, rt)
        for _key, slot in rows[:6]:
            rt.load(self.comments.rows.addr(slot))
        rt.alu(n=25, chain=False)

    def _q_insert_event(self, rt: Runtime) -> None:
        self.engine.locks.acquire(rt, ("events", self._next_event))
        self.events.insert(self._next_event % self.events.capacity, rt)
        self._next_event += 1
        self.engine.log_append(rt, 192)
        self.kernel.log_write(rt, 256)
        self.engine.locks.release_all(rt)

    def _q_insert_comment(self, rt: Runtime) -> None:
        self.engine.locks.acquire(rt, ("comments", self._next_comment))
        self.comments.insert(self._next_comment % self.comments.capacity, rt)
        self._next_comment += 1
        self.engine.log_append(rt, 128)
        self.kernel.log_write(rt, 192)
        self.engine.locks.release_all(rt)

"""Web Backend workload (§3.3): MySQL behind the Olio Web Frontend.

"We benchmark a machine executing the database backend of the Web
Frontend benchmark presented above.  The backend machine runs the MySQL
5.5.9 database engine with a 2GB buffer pool."

Reuses the OLTP storage engine with the Olio schema (users, events,
comments, tags) and the query mix the frontend's pages generate.
"""

from repro.apps.webbackend.app import WebBackendApp

__all__ = ["WebBackendApp"]

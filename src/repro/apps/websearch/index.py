"""Inverted index over a memory-resident shard.

Term document-frequencies follow a Zipfian law (term rank r has
df ∝ 1/r^0.6, capped); postings are sorted document-id arrays packed at
4 bytes per entry in one large postings region.  Posting arrays are
materialized lazily (deterministically from the seed) so a multi-hundred-
megabyte shard costs host memory only for the terms a run touches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.address_space import AddressSpace
from repro.machine.runtime import Runtime
from repro.machine.structures import SimHashMap

_LINE = 64
_ENTRY_BYTES = 4


@dataclass
class QueryResult:
    doc_ids: list[int]
    scores: list[float]
    postings_scanned: int


class InvertedIndex:
    """Term dictionary + packed postings + document store."""

    def __init__(
        self,
        space: AddressSpace,
        num_terms: int = 30_000,
        num_docs: int = 150_000,
        doc_bytes: int = 2048,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.num_terms = num_terms
        self.num_docs = num_docs
        self.doc_bytes = doc_bytes
        self.seed = seed
        # Zipfian document frequencies, capped at 10% of the corpus.
        ranks = np.arange(1, num_terms + 1, dtype=np.float64)
        dfs = np.minimum(num_docs // 10, (num_docs / (ranks ** 0.6) / 8)).astype(np.int64)
        self.dfs = np.maximum(dfs, 2)
        offsets = np.zeros(num_terms + 1, dtype=np.int64)
        np.cumsum(self.dfs * _ENTRY_BYTES, out=offsets[1:])
        self.postings_bytes = int(offsets[-1])
        self.postings_base = space.alloc(self.postings_bytes, "heap", align=_LINE)
        self._offsets = offsets
        # Dictionary: term -> (posting offset, df), a real hash structure.
        self.dictionary = SimHashMap(space, nbuckets=num_terms, node_bytes=48)
        self._dict_loaded = False
        # Document store (the "data segment"): scaled from the paper's 23 GB.
        self.docstore_base = space.alloc(num_docs * doc_bytes, "heap", align=_LINE)
        self._materialized: dict[int, np.ndarray] = {}

    def load_dictionary(self, rt: Runtime) -> None:
        """Populate the term dictionary (index load at startup)."""
        nodes_start = self.space.region("heap").base + self.space.region("heap").cursor
        for term in range(self.num_terms):
            self.dictionary.put(rt, term, (int(self._offsets[term]), int(self.dfs[term])))
        self._dict_loaded = True
        nodes_end = self.space.region("heap").base + self.space.region("heap").cursor
        # Buckets + the contiguous node slab: the dictionary's footprint.
        self.dict_extent = [
            (self.dictionary.bucket_base, self.dictionary.nbuckets * 8),
            (nodes_start, nodes_end - nodes_start),
        ]

    def postings(self, term: int) -> np.ndarray:
        """The term's sorted posting array (deterministic, lazy)."""
        cached = self._materialized.get(term)
        if cached is not None:
            return cached
        df = int(self.dfs[term])
        rng = np.random.default_rng(self.seed * 1_000_003 + term)
        ids = np.sort(rng.choice(self.num_docs, size=df, replace=False))
        if len(self._materialized) > 4096:
            self._materialized.clear()  # bound host memory
        self._materialized[term] = ids
        return ids

    def posting_addr(self, term: int, position: int) -> int:
        return self.postings_base + int(self._offsets[term]) + position * _ENTRY_BYTES

    def doc_addr(self, doc_id: int) -> int:
        return self.docstore_base + (doc_id % self.num_docs) * self.doc_bytes

    # -- query evaluation ---------------------------------------------------
    def lookup_term(self, rt: Runtime, term: int) -> tuple[int, int] | None:
        value = self.dictionary.get(rt, term)
        return value  # type: ignore[return-value]

    def evaluate_and(
        self, rt: Runtime, terms: list[int], max_scan: int = 64
    ) -> QueryResult:
        """Conjunctive evaluation: merge-intersect the posting lists.

        Emits the real access pattern: sequential line-granular loads of
        each list (with per-entry decode work), dependent on the
        dictionary lookups that located them.
        """
        infos = []
        for term in terms:
            info = self.lookup_term(rt, term)
            if info is None:
                return QueryResult([], [], 0)
            infos.append((term, info))
        # Drive the merge from the two rarest terms (standard practice).
        infos.sort(key=lambda entry: entry[1][1])
        lead_term = infos[0][0]
        lead = self.postings(lead_term)[:max_scan]
        survivors = lead
        scanned = 0
        for term, (_offset, df) in infos[:2]:
            length = min(df, max_scan)
            scanned += length
            token = 0
            for position in range(0, length, _LINE // _ENTRY_BYTES):
                token = rt.load(self.posting_addr(term, position))
                rt.alu((token,), n=30, chain=False)  # v-int decode + compare
        for term, _info in infos[1:]:
            other = self.postings(term)
            survivors = np.intersect1d(survivors, other[: max_scan * 4])
        # Score the survivors (tf-idf-ish accumulation).
        scores = []
        for doc in survivors[:64]:
            rt.alu(n=3, chain=False)
            scores.append(float(1.0 / (1.0 + (doc % 97))))
        order = np.argsort(scores)[::-1][:10]
        top_docs = [int(survivors[i]) for i in order]
        top_scores = [scores[i] for i in order]
        return QueryResult(top_docs, top_scores, scanned)

    def evaluate_or(
        self, rt: Runtime, terms: list[int], max_scan: int = 48
    ) -> QueryResult:
        """Disjunctive evaluation: union-merge with accumulator scoring.

        Lucene's BooleanQuery OR path: walk every term's postings,
        accumulate per-document partial scores in a hash accumulator,
        then select the top documents."""
        import numpy as np

        infos = []
        for term in terms:
            info = self.lookup_term(rt, term)
            if info is not None:
                infos.append((term, info))
        if not infos:
            return QueryResult([], [], 0)
        accumulator: dict[int, float] = {}
        scanned = 0
        for term, (_offset, df) in infos:
            length = min(df, max_scan)
            scanned += length
            postings = self.postings(term)[:length]
            for position in range(0, length, _LINE // _ENTRY_BYTES):
                token = rt.load(self.posting_addr(term, position))
                rt.alu((token,), n=18, chain=False)  # decode + accumulate
            idf = 1.0 / (1.0 + df)
            for doc in postings:
                accumulator[int(doc)] = accumulator.get(int(doc), 0.0) + idf
        ranked = sorted(accumulator.items(), key=lambda kv: (-kv[1], kv[0]))
        top = ranked[:10]
        for _doc, _score in top:
            rt.alu(n=3, chain=False)
        return QueryResult([d for d, _ in top], [s for _, s in top], scanned)

    def snippet(self, rt: Runtime, doc_id: int, lines: int = 2) -> int:
        """Read the document's head to build the result snippet."""
        base = self.doc_addr(doc_id)
        token = 0
        for i in range(lines):
            token = rt.load(base + i * _LINE, (token,) if token else ())
            rt.alu((token,), n=6, chain=False)
        return token

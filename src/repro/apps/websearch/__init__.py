"""Web Search workload: a Nutch/Lucene index serving node (ISN).

Paper setup (§3.2): "We benchmark an index serving node (ISN) of the
distributed version of Nutch 1.2/Lucene 3.0.1 with an index size of 2GB
and data segment size of 23GB ... making sure that the search index
fits in memory."

The package implements an inverted index (term dictionary + packed
postings with document frequencies following a Zipfian law), ranked
conjunctive query evaluation with posting-list merging and top-k
selection, and snippet generation from the document store.  Each request
is handled by one thread with no inter-thread communication (§2.2) —
and the heavy per-posting decode work gives Web Search the highest IPC
of the scale-out class (§5's observation, after Reddi et al.).
"""

from repro.apps.websearch.index import InvertedIndex, QueryResult
from repro.apps.websearch.app import WebSearchApp

__all__ = ["InvertedIndex", "QueryResult", "WebSearchApp"]

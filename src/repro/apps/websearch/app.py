"""The Web Search ISN app: query handling over the in-memory shard.

Per request: receive the query, analyze it, look the terms up in the
dictionary, merge the posting lists of the rarest terms with per-entry
decode work, rank, fetch snippets from the document store, and return a
formatted response to the frontend.  Requests are completely
independent; the ISN never talks to other ISNs (§2.2).
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.websearch.index import InvertedIndex
from repro.faults.plan import FaultEvent
from repro.load.distributions import ZipfGenerator
from repro.machine.runtime import Runtime

_LINE = 64


class WebSearchApp(ServerApp):
    """A Nutch/Lucene index serving node."""

    name = "web-search"
    os_intensive = False

    CODE_PLAN = [
        ("query_parser", 96, "scatter", 8, 0.2),
        ("analyzer", 64, "scatter", 9, 0.25),
        ("term_dictionary", 96, "scatter", 8, 0.2),
        ("postings_reader", 64, "loop", 10, 0.5),
        ("scorer", 96, "scatter", 9, 0.25),
        ("topk_collector", 48, "loop", 10, 0.4),
        ("snippet_gen", 112, "scatter", 8, 0.15),
        ("jvm_runtime", 320, "scatter", 7, 0.1),
        ("gc_code", 96, "scatter", 9, 0.2),
    ]

    #: An ISN's real degraded modes: re-routing queries to a replica
    #: shard, serving partial results under deadline pressure, and
    #: merging whatever shards answered in time.
    FAULT_CODE_PLAN = ServerApp.FAULT_CODE_PLAN + [
        ("shard_failover", 96, "scatter", 8, 0.15),
        ("degraded_ranker", 64, "scatter", 8, 0.2),
        ("partial_merge", 48, "scatter", 8, 0.2),
    ]

    #: Hand-written per-operation service costs (simulated
    #: microseconds) for the fleet layer (:mod:`repro.cluster`) — the
    #: ``--costs=static`` fallback only; measured runs derive the same
    #: classes from uarch replay of :meth:`cluster_ops`.  A query
    #: dominates (posting merge + rank + snippets); "update" is the
    #: incremental index apply an ISN replica performs when a refreshed
    #: shard segment lands; hints/repair move segment deltas between
    #: replicas.
    CLUSTER_SERVICE_COSTS = {
        "read": 1_400,
        "update": 900,
        "hint": 200,
        "repair": 350,
        "probe": 40,
    }

    def __init__(self, seed: int = 0, num_terms: int = 30_000,
                 num_docs: int = 150_000) -> None:
        self.num_terms = num_terms
        self.num_docs = num_docs
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"lucene.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.index = InvertedIndex(
            self.space, self.num_terms, self.num_docs, seed=self.seed
        )
        rt0 = self.runtime(0)
        self.index.load_dictionary(rt0)
        rt0.take()  # startup, not measured
        self._term_popularity = ZipfGenerator(self.num_terms, theta=0.9,
                                              seed=self.seed)
        self._req_buf = self.space.alloc(2048, "heap", align=_LINE)
        self._resp_buf = self.space.alloc(16 * 1024, "heap", align=_LINE)
        self.queries_served = 0
        self.results_returned = 0

    def warm_ranges(self):
        # Hot postings: the most frequent query terms' lists.
        ranges = list(self.index.dict_extent)  # buckets + term-node slab
        ranges.append((self._resp_buf, 16 * 1024))
        for term in range(2048):
            length = min(int(self.index.dfs[term]), 64) * 4
            ranges.append((self.index.posting_addr(term, 0), length))
        return ranges

    def serve(self, rt: Runtime) -> None:
        rng = self.rng
        self.kernel.recv(rt, 160, into_base=self._req_buf,
                         sock_id=rt.tid * 131 + self.queries_served % 32)
        with rt.frame(self.fns["query_parser"]):
            token = rt.load(self._req_buf)
            rt.alu((token,), n=40, chain=False)
        num_terms = 2 + (self.queries_served % 3)
        terms = [self._term_popularity.next() for _ in range(num_terms)]
        with rt.frame(self.fns["analyzer"]):
            rt.alu(n=16 * num_terms, chain=False)
        with rt.frame(self.fns["term_dictionary"]):
            rt.alu(n=8, chain=False)
        with rt.frame(self.fns["postings_reader"]):
            with rt.frame(self.fns["scorer"]):
                if self.queries_served % 5 == 4:
                    # ~20% of queries run the (costlier) disjunctive path.
                    result = self.index.evaluate_or(rt, terms)
                else:
                    result = self.index.evaluate_and(rt, terms)
        with rt.frame(self.fns["topk_collector"]):
            rt.alu(n=50, chain=False)
        with rt.frame(self.fns["snippet_gen"]):
            for doc_id in result.doc_ids[:3]:
                self.index.snippet(rt, doc_id)
            for off in range(0, 2048, _LINE):
                rt.store(self._resp_buf + off)
        self._jvm_background(rt)
        self.kernel.send(rt, 2048, payload_base=self._resp_buf,
                         sock_id=rt.tid * 131 + self.queries_served % 32)
        self.queries_served += 1
        self.results_returned += len(result.doc_ids)

    def _jvm_background(self, rt: Runtime) -> None:
        with rt.frame(self.fns["jvm_runtime"]):
            rt.alu(n=70, chain=False)
        if self.queries_served % 128 == 0:
            with rt.frame(self.fns["gc_code"]):
                rt.scan(self._resp_buf, 8 * 1024, work_per_line=2)

    # -- cluster op classes (fleet cost calibration) -------------------------
    def cluster_ops(self):
        """The five replica request classes the fleet layer prices.

        A read is the regular query serve path; an update applies one
        refreshed index segment; a hint receives and stages a segment
        delta for a down sibling; repair merges a delta during
        anti-entropy; a probe is the frontend health check.
        """
        return {
            "read": self.serve,
            "update": lambda rt: self._cluster_apply_segment(rt, 2048),
            "hint": self._cluster_hint,
            "repair": self._cluster_repair,
            "probe": self._cluster_probe,
        }

    def _cluster_apply_segment(self, rt: Runtime, nbytes: int) -> None:
        """Apply one refreshed shard-segment delta to the live index:
        re-probe the dictionary, rewrite a posting range, commit."""
        with rt.frame(self.fns["term_dictionary"]):
            rt.alu(n=30, chain=False)
        term = self.queries_served % 2048
        with rt.frame(self.fns["postings_reader"]):
            rt.scan(self.index.posting_addr(term, 0), nbytes,
                    work_per_line=2, write=True)
        self._jvm_background(rt)
        self.kernel.log_write(rt, 512)
        self.queries_served += 1

    def _cluster_hint(self, rt: Runtime) -> None:
        """Stage a segment delta meant for a down sibling ISN: receive
        it, note the re-routing in the shard table, journal it."""
        self.kernel.recv(rt, 256)
        dict_base, dict_bytes = self.index.dict_extent[0]
        with rt.frame(self._fault_fns["shard_failover"]):
            rt.scan(dict_base, min(dict_bytes, 1024), work_per_line=1)
            rt.alu(n=30, chain=False)
        self.kernel.log_write(rt, 512)

    def _cluster_repair(self, rt: Runtime) -> None:
        """Anti-entropy: merge a buffered partial delta, then apply it."""
        with rt.frame(self._fault_fns["partial_merge"]):
            rt.alu(n=40, chain=False)
            rt.scan(self._resp_buf, 1024, work_per_line=1)
        self._cluster_apply_segment(rt, 1024)

    def _cluster_probe(self, rt: Runtime) -> None:
        """The frontend's health check: receive, account, answer."""
        self.kernel.recv(rt, 64)
        with rt.frame(self.fns["jvm_runtime"]):
            rt.alu(n=30, chain=False)
        self.kernel.send(rt, 96)

    # -- degraded paths (active only under an attached FaultInjector) -------
    def fault_replica_crash(self, rt: Runtime, event: FaultEvent) -> None:
        """A sibling ISN is down: this node re-routes its share of the
        queries — re-probe the term dictionary for the adopted shard's
        hot terms and rebuild the routing table entry."""
        fns = self._fault_fns
        dict_base, dict_bytes = self.index.dict_extent[0]
        with rt.frame(fns["shard_failover"]):
            nbytes = min(dict_bytes, 2 * 1024 + int(2 * 1024 * event.severity))
            rt.scan(dict_base, nbytes, work_per_line=1)
            rt.alu(n=40, chain=False)
        self.kernel.send(rt, 256)  # cluster-state update to the frontend
        self.kernel.recv(rt, 192)  # the frontend's re-routing directive
        self.kernel.context_switch(rt)  # adopted queries re-enter the queue

    def fault_straggler(self, rt: Runtime, event: FaultEvent) -> None:
        """Deadline pressure: fall back to the cheap ranker and merge
        only the shards that answered in time (partial results)."""
        fns = self._fault_fns
        with rt.frame(fns["degraded_ranker"]):
            rt.alu(n=50 + int(60 * event.severity), chain=False)
        with rt.frame(fns["partial_merge"]):
            rt.scan(self._resp_buf, 2 * 1024, work_per_line=1)
        self.kernel.send(rt, 512)  # partial result set to the frontend
        self.kernel.context_switch(rt)

    def fault_request_drop(self, rt: Runtime,
                           event: FaultEvent) -> tuple[int, bool, int]:
        """A query timed out at the frontend; the retried query merges
        whatever partial per-shard results were already buffered."""
        retries, ok, waited = super().fault_request_drop(rt, event)
        if ok:
            with rt.frame(self._fault_fns["partial_merge"]):
                rt.alu(n=40, chain=False)
                rt.scan(self._resp_buf, 1024, work_per_line=1)
        return retries, ok, waited

    def fault_memory_pressure(self, rt: Runtime, event: FaultEvent) -> None:
        """Reclaim evicted cold postings: re-fault a posting-list range
        on top of the generic reclaim scan."""
        super().fault_memory_pressure(rt, event)
        with rt.frame(self._fault_fns["shard_failover"]):
            term = self.queries_served % 2048
            rt.scan(self.index.posting_addr(term, 0), 1024, work_per_line=1)

"""Web Frontend workload: Nginx + PHP (APC) serving the Olio application.

Paper setup (§3.2): "We benchmark a frontend machine serving Olio, a
Web 2.0 web-based social event calendar.  The frontend machine runs
Nginx 1.0.10 with a built-in PHP 5.3.5 module and APC 3.1.8 PHP opcode
cache ... and use the Faban driver to simulate clients."

The defining micro-architectural behaviour is the PHP bytecode
interpreter: an indirect dispatch per opcode over a multi-hundred-KB
handler body (the largest instruction working set and the lowest MLP of
the scale-out class), with all state handed off to the backend database
over a socket — the frontend itself is stateless (§2.2).
"""

from repro.apps.webstack.interpreter import PhpInterpreter, CompiledScript, Opcode
from repro.apps.webstack.app import WebFrontendApp

__all__ = ["PhpInterpreter", "CompiledScript", "Opcode", "WebFrontendApp"]

"""Olio page scripts: the Web 2.0 social-event-calendar application.

Pages are assembled into real bytecode (loops, comparisons, output
building, database calls) with a tiny assembler, mirroring the PHP
pages Cloudstone's Olio serves: the event list, event detail, person
profile, tag search, and the add-event form handler.
"""

from __future__ import annotations

from repro.apps.webstack.interpreter import CompiledScript, Opcode


class ScriptAssembler:
    """Builds opcode lists with labels and backward jumps."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.code: list[tuple[int, int]] = []

    def emit(self, op: Opcode, operand: int = 0) -> int:
        self.code.append((int(op), operand))
        return len(self.code) - 1

    def here(self) -> int:
        return len(self.code)

    def patch(self, index: int, operand: int) -> None:
        op, _ = self.code[index]
        self.code[index] = (op, operand)

    def counted_loop(self, counter_slot: int, count: int, body) -> None:
        """for (i = 0; i < count; i++) { body(assembler) }"""
        self.emit(Opcode.PUSH, 0)
        self.emit(Opcode.STORE, counter_slot)
        loop_top = self.here()
        self.emit(Opcode.LOAD, counter_slot)
        self.emit(Opcode.PUSH, count)
        self.emit(Opcode.CMP_LT)
        exit_jump = self.emit(Opcode.JZ, 0)
        body(self)
        self.emit(Opcode.LOAD, counter_slot)
        self.emit(Opcode.PUSH, 1)
        self.emit(Opcode.ADD)
        self.emit(Opcode.STORE, counter_slot)
        self.emit(Opcode.JMP, loop_top)
        self.patch(exit_jump, self.here())

    def build(self, num_locals: int = 16) -> CompiledScript:
        return CompiledScript(self.name, list(self.code), num_locals)


def _render_row(asm: ScriptAssembler) -> None:
    asm.emit(Opcode.LOAD, 0)
    asm.emit(Opcode.CALL_FN, 7)  # htmlspecialchars
    asm.emit(Opcode.PUSH, 1234)
    asm.emit(Opcode.CONCAT)
    asm.emit(Opcode.ECHO)


def event_list(page_rows: int = 25) -> CompiledScript:
    """The home page: query upcoming events, render a table."""
    asm = ScriptAssembler("event_list")
    asm.emit(Opcode.CALL_DB, 1)  # SELECT upcoming events
    asm.emit(Opcode.STORE, 1)
    asm.counted_loop(0, page_rows, _render_row)
    asm.emit(Opcode.CALL_DB, 2)  # popular tags sidebar
    asm.emit(Opcode.STORE, 2)
    asm.counted_loop(3, 10, _render_row)
    asm.emit(Opcode.PUSH, 1)
    asm.emit(Opcode.RET)
    return asm.build()


def event_detail() -> CompiledScript:
    """One event: details, attendees, comments."""
    asm = ScriptAssembler("event_detail")
    asm.emit(Opcode.LOAD, 0)  # event id argument
    asm.emit(Opcode.CALL_DB, 3)  # SELECT event
    asm.emit(Opcode.STORE, 1)
    asm.counted_loop(2, 8, _render_row)  # event fields
    asm.emit(Opcode.CALL_DB, 4)  # SELECT attendees
    asm.emit(Opcode.STORE, 3)
    asm.counted_loop(4, 20, _render_row)
    asm.emit(Opcode.CALL_DB, 5)  # SELECT comments
    asm.counted_loop(5, 12, _render_row)
    asm.emit(Opcode.PUSH, 1)
    asm.emit(Opcode.RET)
    return asm.build()


def person_page() -> CompiledScript:
    """A user profile page: profile fields plus the friends list."""
    asm = ScriptAssembler("person_page")
    asm.emit(Opcode.LOAD, 0)
    asm.emit(Opcode.CALL_DB, 6)  # SELECT user profile
    asm.emit(Opcode.STORE, 1)
    asm.counted_loop(2, 12, _render_row)
    asm.emit(Opcode.CALL_DB, 7)  # SELECT friends
    asm.counted_loop(3, 15, _render_row)
    asm.emit(Opcode.PUSH, 1)
    asm.emit(Opcode.RET)
    return asm.build()


def tag_search() -> CompiledScript:
    """Tag search: normalize the tag, query events by tag, render."""
    asm = ScriptAssembler("tag_search")
    asm.emit(Opcode.LOAD, 0)
    asm.emit(Opcode.CALL_FN, 3)  # normalize the tag
    asm.emit(Opcode.STORE, 1)
    asm.emit(Opcode.LOAD, 1)
    asm.emit(Opcode.CALL_DB, 8)  # SELECT events by tag
    asm.counted_loop(2, 18, _render_row)
    asm.emit(Opcode.PUSH, 1)
    asm.emit(Opcode.RET)
    return asm.build()


def add_event() -> CompiledScript:
    """The POST handler: validate 12 fields, insert, re-render."""
    asm = ScriptAssembler("add_event")

    def validate_field(a: ScriptAssembler) -> None:
        a.emit(Opcode.LOAD, 0)
        a.emit(Opcode.CALL_FN, 11)  # sanitize
        a.emit(Opcode.PUSH, 0)
        a.emit(Opcode.CMP_LT)
        skip = a.emit(Opcode.JZ, 0)
        a.emit(Opcode.PUSH, 0)
        a.emit(Opcode.ECHO)
        a.patch(skip, a.here())

    asm.counted_loop(1, 12, validate_field)
    asm.emit(Opcode.CALL_DB, 9)  # INSERT event
    asm.emit(Opcode.STORE, 2)
    asm.counted_loop(3, 6, _render_row)
    asm.emit(Opcode.PUSH, 1)
    asm.emit(Opcode.RET)
    return asm.build()


def all_pages() -> dict[str, CompiledScript]:
    """Every Olio page script, keyed by name."""
    return {
        script.name: script
        for script in (
            event_list(),
            event_detail(),
            person_page(),
            tag_search(),
            add_event(),
        )
    }

"""The Web Frontend app: Nginx request path + PHP/Olio execution.

Per request: accept/parse HTTP, route to a page script (or the static
path, ~15 % as in Olio's mix), execute the script on the interpreter —
every database call crossing the socket to the (remote) backend — and
send the rendered page.  The dominant costs are the interpreter's
indirect dispatch over a very large handler body (Fig. 2's tallest
scale-out L1-I bars and Fig. 3's lowest MLP) and the comparatively
high per-request core utilization the paper notes for modern dynamic-
content frontends (§4: highest scale-out IPC).
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.webstack.interpreter import PhpInterpreter
from repro.apps.webstack.olio import all_pages
from repro.load.faban import FabanDriver
from repro.machine.runtime import Runtime

_LINE = 64


class WebFrontendApp(ServerApp):
    """Nginx + PHP(APC) frontend serving Olio."""

    name = "web-frontend"
    os_intensive = True

    CODE_PLAN = [
        ("nginx_core", 192, "scatter", 8, 0.15),
        ("http_parser", 96, "scatter", 7, 0.2),
        ("fastcgi_glue", 96, "scatter", 8, 0.2),
        ("zend_dispatch", 64, "loop", 9, 0.6),
        ("zend_handlers", 640, "scatter", 6, 0.2),
        ("zend_runtime", 256, "scatter", 7, 0.12),
        ("apc_cache", 96, "scatter", 8, 0.2),
        ("php_stdlib", 288, "scatter", 7, 0.12),
        ("template_out", 128, "scatter", 8, 0.15),
    ]

    PAGE_MIX = [
        ("event_list", 34.0),
        ("event_detail", 26.0),
        ("person_page", 14.0),
        ("tag_search", 9.0),
        ("add_event", 2.0),
        ("static_file", 15.0),
    ]

    def __init__(self, seed: int = 0, num_clients: int = 128) -> None:
        self.num_clients = num_clients
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"web.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.interpreter = PhpInterpreter(
            self.space,
            dispatch_fn=self.fns["zend_dispatch"],
            handlers_fn=self.fns["zend_handlers"],
        )
        self.scripts = all_pages()
        self._apc_compiled: set[str] = set()
        self.apc_hits = 0
        self.apc_misses = 0
        self.driver = FabanDriver(self.num_clients, self.PAGE_MIX, seed=self.seed)
        # The on-disk static file dataset (12 GB in the paper, scaled).
        self.static_files = 400
        self.static_file_bytes = 48 * 1024
        self._req_buf = self.space.alloc(4096, "heap", align=_LINE)
        self._resp_buf = self.space.alloc(64 * 1024, "heap", align=_LINE)
        self.pages_served = 0
        self.db_roundtrips = 0

    def warm_ranges(self):
        # Steady state: every page script has long since been compiled
        # and lives in the APC opcode cache.
        ranges = [(self._resp_buf, 64 * 1024)]
        for script in self.scripts.values():
            if script.bytecode_mem is None:
                script.place(self.space)
                self._apc_compiled.add(script.name)
            mem = script.bytecode_mem
            ranges.append((mem.base, mem.nbytes))
        return ranges

    # -- request handling -----------------------------------------------
    def serve(self, rt: Runtime) -> None:
        session, page = self.driver.next_request(affinity=rt.tid)
        self.kernel.recv(rt, 512, into_base=self._req_buf, sock_id=session.session_id)
        with rt.frame(self.fns["nginx_core"]):
            rt.alu(n=40, chain=False)
            with rt.frame(self.fns["http_parser"]):
                token = rt.load(self._req_buf)
                rt.alu((token,), n=50, chain=False)
        if page == "static_file":
            self._serve_static(rt, session)
        else:
            self._serve_php(rt, session, page)
        self.pages_served += 1

    def _serve_static(self, rt: Runtime, session) -> None:
        file_id = session.rng.randrange(self.static_files)
        self.kernel.read_file(
            rt, 1_000_000 + file_id,
            session.rng.randrange(0, self.static_file_bytes, 4096), 8192,
        )
        self.kernel.sendfile(rt, 8192, sock_id=session.session_id)

    def _serve_php(self, rt: Runtime, session, page: str) -> None:
        script = self.scripts[page]
        with rt.frame(self.fns["fastcgi_glue"]):
            rt.alu(n=60, chain=False)
        with rt.frame(self.fns["apc_cache"]):
            # Opcode-cache lookup: hash the path, read the entry.
            rt.alu(n=10, chain=False)
            if script.name not in self._apc_compiled:
                self._compile(rt, script)
            else:
                self.apc_hits += 1
            script.bytecode_mem.read(rt, 0)
        with rt.frame(self.fns["zend_handlers"]):
            result = self.interpreter.execute(
                script, rt, args={0: session.rng.randrange(10_000)}
            )
        for _query in result.db_queries:
            self._db_roundtrip(rt, session)
        with rt.frame(self.fns["template_out"]):
            rt.alu(n=40, chain=False)
            for chunk in range(0, min(len(result.output) * 256, 8192), _LINE):
                rt.store(self._resp_buf + chunk)
        self.kernel.send(rt, 8192, payload_base=self._resp_buf,
                         sock_id=session.session_id)

    def _compile(self, rt: Runtime, script) -> None:
        """First request for a script: the Zend compiler runs once and
        APC caches the opcode array (writes into shared memory)."""
        self.apc_misses += 1
        script.place(self.space)
        with rt.frame(self.fns["zend_runtime"]):
            # Lex/parse/compile: heavy one-time work per source file.
            rt.alu(n=40 + 6 * len(script.code), chain=False)
            for index in range(script.bytecode_mem.count):
                script.bytecode_mem.write(rt, index)
        self._apc_compiled.add(script.name)

    def _db_roundtrip(self, rt: Runtime, session) -> None:
        """Send a query to the backend DB machine; parse the result set."""
        self.db_roundtrips += 1
        with rt.frame(self.fns["php_stdlib"]):
            rt.alu(n=35, chain=False)
        self.kernel.send(rt, 160, sock_id=session.session_id)
        self.kernel.recv(rt, 2048, into_base=self._resp_buf,
                         sock_id=session.session_id)
        with rt.frame(self.fns["zend_runtime"]):
            rows = rt.load(self._resp_buf)
            rt.alu((rows,), n=45, chain=False)

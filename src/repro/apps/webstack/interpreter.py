"""A bytecode interpreter (the PHP/Zend engine analog).

Scripts compile (once — the APC opcode cache) into opcode arrays; the
interpreter executes them with one indirect dispatch per opcode into a
large handler body.  The interpreter is functional: it has a real
evaluation stack, local variables, arithmetic/compare/jump semantics,
and produces output strings — and the unit tests execute small programs
on it and check the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import Function
from repro.machine.hashing import stable_hash
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray

_LINE = 64


class Opcode(IntEnum):
    """The bytecode instruction set the interpreter executes."""
    PUSH = 0  # push constant
    LOAD = 1  # push local variable
    STORE = 2  # pop into local variable
    ADD = 3
    SUB = 4
    MUL = 5
    CMP_LT = 6
    JMP = 7  # unconditional jump
    JZ = 8  # jump if popped value is zero/false
    CONCAT = 9  # string building (renders output)
    ECHO = 10  # append popped value to the output buffer
    CALL_DB = 11  # issue a backend database query
    CALL_FN = 12  # builtin function (hash, date, ...)
    RET = 13


@dataclass
class CompiledScript:
    """An APC-cached compilation unit: opcode stream + constants."""

    name: str
    code: list[tuple[int, int]]  # (opcode, operand)
    num_locals: int = 16
    bytecode_mem: SimArray | None = None

    def place(self, space: AddressSpace) -> None:
        """Give the opcode array a simulated location (the APC cache)."""
        self.bytecode_mem = SimArray(space, max(1, len(self.code)), 16)


@dataclass
class ExecutionResult:
    output: list[object] = field(default_factory=list)
    db_queries: list[int] = field(default_factory=list)
    opcodes_executed: int = 0
    return_value: object = None


class PhpInterpreter:
    """Stack-based interpreter with traced dispatch."""

    def __init__(
        self,
        space: AddressSpace | None = None,
        dispatch_fn: Function | None = None,
        handlers_fn: Function | None = None,
    ) -> None:
        self._space = space
        self.dispatch_fn = dispatch_fn
        self.handlers_fn = handlers_fn
        # Simulated locals/stack frame storage shared across requests.
        self.frame_mem = (
            SimArray(space, 1024, 16) if space is not None else None
        )

    def execute(
        self,
        script: CompiledScript,
        rt: Runtime | None = None,
        args: dict[int, object] | None = None,
        max_opcodes: int = 20_000,
    ) -> ExecutionResult:
        """Run a script; optionally emit its micro-op trace on ``rt``."""
        stack: list[object] = []
        local_vars: list[object] = [0] * script.num_locals
        if args:
            for slot, value in args.items():
                local_vars[slot] = value
        result = ExecutionResult()
        pc = 0
        code = script.code
        traced = rt is not None and self.handlers_fn is not None
        while pc < len(code):
            op, operand = code[pc]
            result.opcodes_executed += 1
            if result.opcodes_executed > max_opcodes:
                raise RuntimeError(f"script {script.name!r} exceeded opcode budget")
            if traced:
                # Fetch the opcode word, then dispatch indirectly to the
                # handler variant (Zend specializes handlers by operand
                # type, so the target mixes opcode and operand bits).
                fetch = (
                    script.bytecode_mem.read(rt, pc % script.bytecode_mem.count)
                    if script.bytecode_mem is not None
                    else rt.alu()
                )
                rt.indirect_jump(op * 31 + (operand & 7), (fetch,))
                rt.alu((fetch,), n=9, chain=False)
            pc += 1
            if op == Opcode.PUSH:
                stack.append(operand)
            elif op == Opcode.LOAD:
                stack.append(local_vars[operand])
                if traced:
                    self.frame_mem.read(rt, operand % self.frame_mem.count)
            elif op == Opcode.STORE:
                local_vars[operand] = stack.pop()
                if traced:
                    self.frame_mem.write(rt, operand % self.frame_mem.count)
            elif op == Opcode.ADD:
                b, a = stack.pop(), stack.pop()
                stack.append(a + b)
            elif op == Opcode.SUB:
                b, a = stack.pop(), stack.pop()
                stack.append(a - b)
            elif op == Opcode.MUL:
                b, a = stack.pop(), stack.pop()
                stack.append(a * b)
            elif op == Opcode.CMP_LT:
                b, a = stack.pop(), stack.pop()
                stack.append(1 if a < b else 0)
            elif op == Opcode.JMP:
                pc = operand
            elif op == Opcode.JZ:
                condition = stack.pop()
                if traced:
                    rt.branch(not condition, site=f"{script.name}.jz{operand}")
                if not condition:
                    pc = operand
            elif op == Opcode.CONCAT:
                b, a = stack.pop(), stack.pop()
                stack.append(f"{a}{b}")
                if traced:
                    rt.alu(n=4, chain=False)
            elif op == Opcode.ECHO:
                result.output.append(stack.pop())
            elif op == Opcode.CALL_DB:
                result.db_queries.append(operand)
                stack.append(operand)  # handle for the result set
            elif op == Opcode.CALL_FN:
                value = stack.pop() if stack else 0
                stack.append(stable_hash(operand, value) & 0xFFFF)
                if traced:
                    rt.alu(n=6, chain=False)
            elif op == Opcode.RET:
                result.return_value = stack.pop() if stack else None
                break
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown opcode {op}")
        return result

"""Common application scaffolding.

A :class:`ServerApp` owns one simulated address space, code layout, and
OS kernel, builds its dataset at construction time, and serves work
quanta on demand.  Multi-threaded apps share the instance across
hardware threads — each thread gets its own :class:`Runtime` (its own
PC stream and sequence numbers) but operates on the shared dataset,
which is what produces genuine read-write sharing (Figure 6).
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterator

from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout
from repro.machine.os_model import OsKernel
from repro.machine.runtime import Runtime
from repro.uarch.uop import MicroOp


class ServerApp(abc.ABC):
    """Base class for all workload applications."""

    #: Registry name, e.g. "data-serving".
    name: str = "app"
    #: Whether the workload meaningfully exercises the OS (Fig. 2 OS bars).
    os_intensive: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.space = AddressSpace()
        self.layout = CodeLayout()
        self.kernel = OsKernel(self.space, self.layout)
        self._runtimes: dict[int, Runtime] = {}
        self._request_counter = itertools.count()
        self.setup()

    # -- lifecycle ---------------------------------------------------------
    @abc.abstractmethod
    def setup(self) -> None:
        """Build datasets and register code (runs once, untraced)."""

    @abc.abstractmethod
    def serve(self, rt: Runtime) -> None:
        """Execute one unit of work (a request, task slice, ...) on ``rt``."""

    # -- runtimes ------------------------------------------------------------
    def runtime(self, tid: int) -> Runtime:
        rt = self._runtimes.get(tid)
        if rt is None:
            rt = Runtime(self.layout, tid=tid, seed=self.seed)
            self._runtimes[tid] = rt
        return rt

    def next_request_id(self) -> int:
        return next(self._request_counter)

    # -- functional warming -------------------------------------------------
    def warm_ranges(self) -> list[tuple[int, int]]:
        """Data ranges (base, nbytes) that are LLC-resident at steady state.

        The measurement windows (≈10⁵ micro-ops) are far too short to
        reach the steady-state contents of a 12 MB LLC the paper reaches
        after its ramp-up plus 180 s run, so the runner functionally
        installs these ranges (plus all code) before measuring — the
        standard "functional warming" technique of sampled simulation.
        """
        return []

    def warm(self, hierarchy, trace_uops: int = 40_000) -> None:
        """Functionally warm a hierarchy: LLC contents + short replay."""
        fill = hierarchy.llc.fill
        for fn in self.layout.functions():
            for addr in range(fn.base, fn.base + fn.size, 64):
                fill(addr)
        for base, nbytes in self.kernel.warm_ranges() + self.warm_ranges():
            for addr in range(base, base + nbytes, 64):
                fill(addr)
        # Short execution replay: orders LRU recency, fills L1/L2/TLBs,
        # and trains the prefetcher tables, without core timing.
        last_line = -1
        access = hierarchy.access
        for uop in self.trace(0, trace_uops):
            line = uop.pc >> 6
            if line != last_line:
                last_line = line
                access(uop.pc, False, True, uop.is_os)
            kind = uop.kind
            if kind == 1:  # LOAD
                access(uop.addr, False, False, uop.is_os)
            elif kind == 2:  # STORE
                access(uop.addr, True, False, uop.is_os)

    # -- trace production ------------------------------------------------
    def trace(self, tid: int = 0, budget: int = 100_000) -> Iterator[MicroOp]:
        """Yield roughly ``budget`` micro-ops of thread ``tid``'s execution."""
        rt = self.runtime(tid)
        emitted = 0
        while emitted < budget:
            self.serve(rt)
            buf = rt.take()
            emitted += len(buf)
            yield from buf

    def trace_segments(
        self, tid: int, budget: int, segments: int
    ) -> list[Iterator[MicroOp]]:
        """Split a budget into ``segments`` lazily-generated trace chunks
        (used for round-robin multi-core interleaving)."""
        per_segment = max(1, budget // segments)
        return [self.trace(tid, per_segment) for _ in range(segments)]

"""Common application scaffolding.

A :class:`ServerApp` owns one simulated address space, code layout, and
OS kernel, builds its dataset at construction time, and serves work
quanta on demand.  Multi-threaded apps share the instance across
hardware threads — each thread gets its own :class:`Runtime` (its own
PC stream and sequence numbers) but operates on the shared dataset,
which is what produces genuine read-write sharing (Figure 6).

Fault handling: a :class:`~repro.faults.injector.FaultInjector` can be
attached to any app (:meth:`ServerApp.attach_faults`).  Attachment
registers the app's degraded-path code in its :class:`CodeLayout` (so
error handling has genuine instruction-footprint consequences — the
Figure 2 mechanism) and routes every serve call through
:meth:`ServerApp.serve_one`, which consults the injector and executes
the matching degraded paths.  With no injector (or an empty plan, which
never attaches) the serve path is byte-identical to the healthy one.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterator

from repro.faults.injector import FaultInjector
from repro.faults.metrics import ServiceMetrics
from repro.faults.plan import FaultEvent
from repro.faults.retry import RetryPolicy
from repro.faults.watchdog import MAX_SILENT_SERVES, RunawayTraceError
from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout, Function
from repro.machine.os_model import OsKernel
from repro.machine.runtime import Runtime
from repro.uarch.uop import MicroOp

_LINE = 64


class ServerApp(abc.ABC):
    """Base class for all workload applications."""

    #: Registry name, e.g. "data-serving".
    name: str = "app"
    #: Whether the workload meaningfully exercises the OS (Fig. 2 OS bars).
    os_intensive: bool = False

    #: Degraded-path code, registered only when faults attach:
    #: (function, KB, locality, bb mean, hot fraction) — apps extend
    #: this with their own failover/error-handling functions.
    FAULT_CODE_PLAN: list[tuple[str, int, str, int, float]] = [
        ("error_classifier", 48, "scatter", 7, 0.2),
        ("retry_dispatch", 40, "scatter", 8, 0.2),
        ("failover_coordinator", 64, "scatter", 7, 0.15),
        ("degraded_serve", 56, "scatter", 8, 0.2),
        ("reclaim_scan", 32, "loop", 10, 0.5),
    ]

    #: Probability a request inside an open drop window is dropped
    #: (scaled by the event's severity, capped at 0.9).
    DROP_BASE_P = 0.35

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.space = AddressSpace()
        self.layout = CodeLayout()
        self.kernel = OsKernel(self.space, self.layout)
        self._runtimes: dict[int, Runtime] = {}
        self._request_counter = itertools.count()
        self.faults: FaultInjector | None = None
        self.service = ServiceMetrics()
        self.fault_policy = RetryPolicy()
        self._fault_fns: dict[str, Function] = {}
        self._fault_scratch = 0
        self.setup()

    # -- lifecycle ---------------------------------------------------------
    @abc.abstractmethod
    def setup(self) -> None:
        """Build datasets and register code (runs once, untraced)."""

    @abc.abstractmethod
    def serve(self, rt: Runtime) -> None:
        """Execute one unit of work (a request, task slice, ...) on ``rt``."""

    # -- fault handling ------------------------------------------------------
    def attach_faults(self, injector: FaultInjector | None) -> None:
        """Attach a fault injector for the lifetime of this app instance.

        A ``None`` injector — or one built from an empty plan — leaves
        the app untouched: no degraded-path code is registered, and
        serving stays byte-identical to a healthy run.
        """
        if injector is None or not injector.enabled:
            self.faults = None
            return
        self.faults = injector
        if not self._fault_fns:
            self.register_fault_hooks()

    def register_fault_hooks(self) -> None:
        """Register degraded-path code (and data) in the app's layout.

        Runs once, at fault attachment — never for healthy runs, so a
        healthy code layout is identical to the seed's.  Subclasses
        extend :attr:`FAULT_CODE_PLAN` with real failover functions and
        override this to allocate their recovery data structures.
        """
        for name, kb, locality, bb, hot in self.FAULT_CODE_PLAN:
            self._fault_fns[name] = self.layout.function(
                f"{self.name}.fault.{name}", kb * 1024, locality=locality,
                bb_mean=bb, hot_fraction=hot,
            )
        # Generic recovery scratch: peer tables, redo queues, reclaim
        # targets for apps that don't override the handlers.
        self._fault_scratch = self.space.alloc(128 * 1024, "heap", align=_LINE)

    def _walk_fault_code(self, rt: Runtime, names: tuple[str, ...],
                         event: FaultEvent) -> None:
        """Hop briefly through several error-handling functions.

        Real failure handling is exactly this shape — classify, log,
        consult cluster state, dispatch — touching many cold functions
        for a few basic blocks each, which is what makes degraded
        operation instruction-fetch-hostile (the Figure 2 mechanism)
        rather than a long stay inside one warm loop.
        """
        fns = self._fault_fns
        for name in names:
            with rt.frame(fns[name]):
                rt.alu(n=16 + int(14 * event.severity), chain=False)

    def serve_one(self, rt: Runtime) -> None:
        """Serve one request, routing through any active degraded paths.

        This is the harness entry point (:meth:`trace` calls it): it
        ticks the injector's request clock, dispatches to the
        ``fault_*`` handlers for the open fault windows, and feeds the
        :class:`~repro.faults.metrics.ServiceMetrics` accumulator with
        the client-visible outcome.
        """
        injector = self.faults
        start = rt.seq
        if injector is None:
            self.serve(rt)
            self.service.observe(rt.seq - start)
            return
        active = injector.tick()
        if not active:
            self.serve(rt)
            self.service.observe(rt.seq - start)
            return
        kinds = {event.kind: event for event in active}
        retries, ok, dropped, waited = 0, True, False, 0
        drop = kinds.get("request-drop")
        if drop is not None and injector.roll(
                min(0.9, self.DROP_BASE_P * drop.severity)):
            dropped = True
            injector.count("request-drop", dropped=True)
            retries, ok, waited = self.fault_request_drop(rt, drop)
        else:
            crash = kinds.get("replica-crash")
            if crash is not None:
                injector.count("replica-crash")
                self.fault_replica_crash(rt, crash)
            self.serve(rt)
        served = rt.seq - start
        straggler = kinds.get("straggler")
        if straggler is not None and not dropped:
            injector.count("straggler")
            self.fault_straggler(rt, straggler)
        storm = kinds.get("gc-storm")
        if storm is not None:
            injector.count("gc-storm")
            self.fault_gc_storm(rt, storm)
        pressure = kinds.get("memory-pressure")
        if pressure is not None:
            injector.count("memory-pressure")
            self.fault_memory_pressure(rt, pressure)
        latency = rt.seq - start + waited
        if straggler is not None:
            # A slow node stretches wall-clock service time without
            # executing more instructions; charge the queueing delay.
            latency += int(served * straggler.severity)
        policy = self.fault_policy
        self.service.observe(
            latency,
            ok=ok,
            retries=retries,
            hedged=latency > policy.hedge_after,
            timed_out=latency > policy.timeout,
            dropped=dropped,
        )

    def fault_request_drop(self, rt: Runtime,
                           event: FaultEvent) -> tuple[int, bool, int]:
        """The request-drop path: classify the error, answer the client,
        then play out the client's capped backoff-retry loop (each retry
        re-executes dispatch; the successful one re-serves the request).

        Returns ``(retries, succeeded, backoff_spent)``.
        """
        fns = self._fault_fns
        with rt.frame(fns["error_classifier"]):
            rt.alu(n=20 + int(30 * event.severity), chain=False)
        self._walk_fault_code(
            rt, ("failover_coordinator", "degraded_serve"), event)
        self.kernel.send(rt, 128)  # error/timeout response to the client
        self.kernel.context_switch(rt)  # the blocked connection yields
        retries, ok, waited = self.fault_policy.resolve_failure(
            self.faults.rng)
        for _ in range(retries):
            with rt.frame(fns["retry_dispatch"]):
                rt.alu(n=24, chain=False)
            self._walk_fault_code(rt, ("error_classifier",), event)
            self.kernel.recv(rt, 96)  # the client's retransmitted request
        if ok:
            self.serve(rt)  # the successful retry re-executes the request
        return retries, ok, waited

    def fault_replica_crash(self, rt: Runtime, event: FaultEvent) -> None:
        """A peer replica is down: failure detection plus write-path
        failover (apps override with hinted handoff, shard re-routing,
        task re-scheduling, ...)."""
        fns = self._fault_fns
        with rt.frame(fns["failover_coordinator"]):
            rt.scan(self._fault_scratch, 4 * 1024, work_per_line=1)
            rt.alu(n=20 + int(20 * event.severity), chain=False)
        self._walk_fault_code(
            rt, ("error_classifier", "retry_dispatch"), event)
        self.kernel.send(rt, 192)  # failure-detector probe / redirect
        self.kernel.recv(rt, 128)  # the surviving peer's state digest

    def fault_straggler(self, rt: Runtime, event: FaultEvent) -> None:
        """A slow node: hedging bookkeeping and scheduler churn."""
        fns = self._fault_fns
        with rt.frame(fns["degraded_serve"]):
            rt.alu(n=20 + int(30 * event.severity), chain=False)
        self._walk_fault_code(
            rt, ("retry_dispatch", "failover_coordinator"), event)
        self.kernel.send(rt, 128)  # the hedged duplicate request
        self.kernel.context_switch(rt)

    def fault_gc_storm(self, rt: Runtime, event: FaultEvent) -> None:
        """A collector pause storm: a marking scan over hot heap plus
        the scattered remark/reference-processing code a real collector
        executes (apps with real nurseries override to scan them)."""
        fns = self._fault_fns
        with rt.frame(fns["degraded_serve"]):
            nbytes = min(32 * 1024, int(6 * 1024 * event.severity))
            rt.scan(self._fault_scratch, nbytes, work_per_line=1)
        self._walk_fault_code(
            rt, ("error_classifier", "failover_coordinator", "reclaim_scan"),
            event)

    def fault_memory_pressure(self, rt: Runtime, event: FaultEvent) -> None:
        """A reclaim burst: scan-and-evict plus a scheduler round trip."""
        fns = self._fault_fns
        with rt.frame(fns["reclaim_scan"]):
            nbytes = min(32 * 1024, int(4 * 1024 * event.severity))
            rt.scan(self._fault_scratch, nbytes, work_per_line=1, write=True)
        self._walk_fault_code(
            rt, ("failover_coordinator", "degraded_serve"), event)
        self.kernel.context_switch(rt)

    # -- cluster op classes --------------------------------------------------
    def cluster_ops(self) -> dict:
        """Per-op-class serve handlers for fleet cost calibration.

        Maps an op-class name (``read``/``update``/``hint``/``repair``/
        ``probe``) to a one-request callable ``fn(rt)``.  Apps that can
        host a fleet replica override this; the default (no handlers)
        means the workload has no cluster backend.
        """
        return {}

    def prepare_cluster_ops(self) -> None:
        """Make the degraded-mode paths traceable for op-class capture.

        Several op classes (hinted handoff, read repair) execute the
        fault-handling code the app registers lazily at fault
        attachment; calibration runs without an injector, so the hooks
        are registered here — eagerly, before any layout snapshot, so
        all five op-class traces see one consistent address space.
        """
        if not self.cluster_ops():
            raise KeyError(f"{self.name} has no cluster op classes")
        if not self._fault_fns:
            self.register_fault_hooks()

    def serve_cluster_op(self, rt: Runtime, op: str) -> None:
        """Execute one request of class ``op`` (calibration serve path)."""
        handlers = self.cluster_ops()
        handler = handlers.get(op)
        if handler is None:
            raise KeyError(
                f"{self.name} has no cluster op class {op!r}; "
                f"known: {', '.join(sorted(handlers))}")
        handler(rt)

    # -- runtimes ------------------------------------------------------------
    def runtime(self, tid: int) -> Runtime:
        rt = self._runtimes.get(tid)
        if rt is None:
            rt = Runtime(self.layout, tid=tid, seed=self.seed)
            self._runtimes[tid] = rt
        return rt

    def next_request_id(self) -> int:
        return next(self._request_counter)

    # -- functional warming -------------------------------------------------
    def warm_ranges(self) -> list[tuple[int, int]]:
        """Data ranges (base, nbytes) that are LLC-resident at steady state.

        The measurement windows (≈10⁵ micro-ops) are far too short to
        reach the steady-state contents of a 12 MB LLC the paper reaches
        after its ramp-up plus 180 s run, so the runner functionally
        installs these ranges (plus all code) before measuring — the
        standard "functional warming" technique of sampled simulation.
        """
        return []

    def warm(self, hierarchy, trace_uops: int = 40_000) -> None:
        """Functionally warm a hierarchy: LLC contents + short replay.

        Delegates to :func:`repro.trace.live.warm_app` — the same fill
        walk and functional replay a captured trace performs, so live
        and replayed warming stay byte-identical by construction.
        """
        from repro.trace.live import warm_app

        warm_app(self, hierarchy, trace_uops)

    # -- trace production ------------------------------------------------
    def trace(self, tid: int = 0, budget: int = 100_000) -> Iterator[MicroOp]:
        """Yield roughly ``budget`` micro-ops of thread ``tid``'s execution.

        A stall watchdog raises :class:`RunawayTraceError` if serve
        calls stop emitting micro-ops — a wedged serve loop would
        otherwise spin here forever without filling the window.
        """
        rt = self.runtime(tid)
        emitted = 0
        silent = 0
        while emitted < budget:
            self.serve_one(rt)
            buf = rt.take()
            if buf:
                silent = 0
            else:
                silent += 1
                if silent >= MAX_SILENT_SERVES:
                    raise RunawayTraceError(
                        f"{self.name}: {silent} consecutive serve calls "
                        f"emitted no micro-ops — the serve loop is wedged"
                    )
            emitted += len(buf)
            yield from buf

    def cluster_op_stream(
        self, tid: int, op: str, budget: int,
        boundaries: list[int] | None = None,
    ) -> Iterator[MicroOp]:
        """Yield roughly ``budget`` micro-ops of repeated ``op`` requests.

        The calibration twin of :meth:`trace`: every serve call executes
        the same op class, so the stream prices exactly one request
        kind.  When ``boundaries`` is given, the per-request micro-op
        counts are appended to it — the replayed cycle total is
        attributed back to individual requests proportionally to these
        counts, which is where the per-op latency *distribution* (not
        just a mean) comes from.
        """
        rt = self.runtime(tid)
        emitted = 0
        silent = 0
        while emitted < budget:
            self.serve_cluster_op(rt, op)
            buf = rt.take()
            if buf:
                silent = 0
            else:
                silent += 1
                if silent >= MAX_SILENT_SERVES:
                    raise RunawayTraceError(
                        f"{self.name}: {silent} consecutive {op!r} serves "
                        f"emitted no micro-ops — the serve loop is wedged"
                    )
            if boundaries is not None:
                boundaries.append(len(buf))
            emitted += len(buf)
            yield from buf

    def trace_segments(
        self, tid: int, budget: int, segments: int
    ) -> list[Iterator[MicroOp]]:
        """Split a budget into ``segments`` lazily-generated trace chunks
        (round-robin multi-core interleaving; delegates to
        :func:`repro.trace.live.live_segments`)."""
        from repro.trace.live import live_segments

        return live_segments(self, tid, budget, segments)

"""MapReduce workload: Hadoop running Mahout Bayesian classification.

Paper setup (§3.2): "We benchmark a node of a four-node Hadoop 0.20.2
cluster, running the Bayesian classification algorithm from the Mahout
0.4 library.  The algorithm attempts to guess the country tag of each
article in a 4.5GB set of Wikipedia pages."

The package contains a generic map/combine/shuffle/reduce engine, a real
multinomial naive-Bayes classifier (trained at setup over a synthetic
corpus with class-conditional word distributions), and the workload app
that runs classification map tasks over streaming input splits — the
sequential-scan behaviour that makes MapReduce the one scale-out
workload that benefits from hardware prefetchers (Figure 5).
"""

from repro.apps.mapreduce.classifier import NaiveBayesModel
from repro.apps.mapreduce.engine import MapReduceEngine, MapTask
from repro.apps.mapreduce.app import MapReduceApp

__all__ = ["NaiveBayesModel", "MapReduceEngine", "MapTask", "MapReduceApp"]

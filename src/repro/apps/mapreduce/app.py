"""The MapReduce workload app: Mahout Bayes classification map tasks.

One ``serve`` call processes one document from the current input split:
stream the next bytes of the split through the HDFS/page-cache path,
tokenize, look every token up in the trained model (hash probe + weight
row read), accumulate per-class scores, and emit the classification as
map output (buffered, periodically spilled).  Input streaming gives this
workload its signature sequential access pattern — the only scale-out
workload the L2 prefetchers help (Figure 5).
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.mapreduce.classifier import CorpusGenerator, NaiveBayesModel
from repro.faults.plan import FaultEvent
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray, SimHashMap

_LINE = 64


class MapReduceApp(ServerApp):
    """Hadoop node running Bayesian classification over a text corpus."""

    name = "mapreduce"
    os_intensive = False

    #: Map tasks hand off to the reducer after this many documents.
    REDUCE_INTERVAL = 24

    CODE_PLAN = [
        ("hdfs_reader", 128, "scatter", 8, 0.2),
        ("record_reader", 64, "scatter", 9, 0.25),
        ("tokenizer", 48, "loop", 10, 0.5),
        ("classifier_map", 96, "scatter", 9, 0.25),
        ("score_accumulate", 32, "loop", 12, 0.5),
        ("output_collector", 64, "scatter", 8, 0.2),
        ("spill_sort", 96, "scatter", 8, 0.2),
        ("jvm_runtime", 288, "scatter", 7, 0.1),
        ("jit_helpers", 128, "scatter", 7, 0.1),
        ("gc_code", 96, "scatter", 9, 0.2),
    ]

    #: Hadoop's real recovery machinery: fetch-failure handling, task
    #: re-execution, and speculative execution of stragglers.
    FAULT_CODE_PLAN = ServerApp.FAULT_CODE_PLAN + [
        ("fetch_fail_handler", 96, "scatter", 8, 0.15),
        ("task_retry", 80, "scatter", 8, 0.2),
        ("speculative_task", 64, "scatter", 8, 0.2),
        ("gc_remark", 64, "scatter", 6, 0.15),
    ]

    def __init__(
        self,
        seed: int = 0,
        vocab_size: int = 24_000,
        num_classes: int = 12,
        doc_tokens: int = 96,
    ) -> None:
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.doc_tokens = doc_tokens
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"hadoop.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        # Train the real classifier on a synthetic labelled corpus.
        self.corpus = CorpusGenerator(self.vocab_size, self.num_classes, self.seed)
        self.model = NaiveBayesModel(self.vocab_size, self.num_classes)
        self.model.train(self.corpus.labelled_corpus(docs_per_class=30, doc_length=100))
        # Model layout in simulated memory: term dictionary + weight rows.
        heap_before = self.space.region("heap").cursor
        self.vocab_index = SimHashMap(self.space, nbuckets=self.vocab_size, node_bytes=48)
        rt0 = self.runtime(0)
        for term in range(self.vocab_size):
            self.vocab_index.put(rt0, term, term)
        rt0.take()  # discard setup trace
        self.weights = SimArray(
            self.space, self.vocab_size, 8 * self.num_classes
        )
        self._model_extent = (
            self.space.region("heap").base + heap_before,
            self.space.region("heap").cursor - heap_before,
        )
        # Map-output spill buffer (io.sort.mb analog).
        self.spill_buffer = self.space.alloc(1 << 20, "heap", align=_LINE)
        self._spill_cursor = 0
        self._split_offset = 0
        self._split_file = 0
        self.docs_processed = 0
        self.correct = 0
        self.split_bytes = 16 << 20  # input split size (scaled 64 MB HDFS block)
        # Reduce side: per-class partial counts (the shuffle's payload)
        # and the output "part files" written back through HDFS.
        self._partial_counts = [0] * self.num_classes
        self.reduce_rounds = 0
        self.reduced_records = 0
        self._output_cursor = 0

    def warm_ranges(self):
        base, extent = self._model_extent
        return [(base, extent), (self.spill_buffer, 1 << 20)]

    # -- the map task inner loop -----------------------------------------
    def serve(self, rt: Runtime) -> None:
        label = self.docs_processed % self.num_classes
        tokens = self.corpus.document(label, self.doc_tokens)
        # Stream the document's bytes from the input split.
        doc_bytes = self.doc_tokens * 8
        with rt.frame(self.fns["hdfs_reader"]):
            pages = self.kernel.read_file(
                rt, self._split_file, self._split_offset, doc_bytes
            )
            self._split_offset += doc_bytes
            if self._split_offset >= self.split_bytes:
                self._split_offset = 0
                self._split_file += 1
        with rt.frame(self.fns["record_reader"]):
            rt.alu(n=20, chain=False)
        scores_token = 0
        with rt.frame(self.fns["classifier_map"]):
            doc_base_offset = (self._split_offset - doc_bytes) % 4096
            for position, term in enumerate(tokens):
                with rt.frame(self.fns["tokenizer"]):
                    # Stream the document text: consecutive bytes across
                    # the pages the read returned.
                    byte_offset = doc_base_offset + position * 8
                    page = pages[min(byte_offset // 4096, len(pages) - 1)]
                    text = rt.load(page + byte_offset % 4096)
                    rt.alu((text,), n=3)
                # Term lookup: hash-probe the dictionary, read the row.
                self.vocab_index.get(rt, term)
                row = self.weights.addr(term)
                row_tok = rt.load(row)
                rt.load(row + _LINE, (row_tok,))
                with rt.frame(self.fns["score_accumulate"]):
                    scores_token = rt.alu((row_tok,), n=4, chain=False)
        predicted = self.model.classify(tokens)
        if predicted == label:
            self.correct += 1
        with rt.frame(self.fns["output_collector"]):
            rt.alu((scores_token,), n=8)
            out = self.spill_buffer + (self._spill_cursor % (1 << 20))
            rt.store(out)
            self._spill_cursor += 16
            if self._spill_cursor % (256 * 1024) == 0:
                self._spill(rt)
        self._partial_counts[predicted] += 1
        self._jvm_background(rt)
        self.docs_processed += 1
        if self.docs_processed % self.REDUCE_INTERVAL == 0:
            self._reduce_phase(rt)

    def _spill(self, rt: Runtime) -> None:
        """Sort-and-spill the output buffer; heartbeat the jobtracker."""
        with rt.frame(self.fns["spill_sort"]):
            rt.scan(self.spill_buffer, 64 * 1024, work_per_line=3)
        self.kernel.send(rt, 256)  # task heartbeat / progress report

    def _jvm_background(self, rt: Runtime) -> None:
        with rt.frame(self.fns["jvm_runtime"]):
            rt.alu(n=80, chain=False)
        with rt.frame(self.fns["jit_helpers"]):
            rt.alu(n=40, chain=False)
        if self.docs_processed % 96 == 0:
            with rt.frame(self.fns["gc_code"]):
                rt.scan(self.spill_buffer, 16 * 1024, work_per_line=1)

    def _reduce_phase(self, rt: Runtime) -> None:
        """One reduce task: merge the buffered map output by key (class)
        and write a part file back through the HDFS path."""
        self.reduce_rounds += 1
        with rt.frame(self.fns["spill_sort"]):
            # Merge-read the sorted spill (sequential, prefetch-friendly).
            rt.scan(self.spill_buffer, 32 * 1024, work_per_line=4)
        with rt.frame(self.fns["output_collector"]):
            for class_id, count in enumerate(self._partial_counts):
                token = rt.load(self.spill_buffer + class_id * 64)
                rt.alu((token,), n=6)
                self.reduced_records += count
            self._partial_counts = [0] * self.num_classes
        # Part-file write to HDFS (through the block/iSCSI path).
        self.kernel.log_write(rt, 1024, payload_base=self.spill_buffer)
        self._output_cursor += 1024

    # -- degraded paths (active only under an attached FaultInjector) -------
    def fault_replica_crash(self, rt: Runtime, event: FaultEvent) -> None:
        """A tasktracker died: reducers report fetch failures, and the
        jobtracker re-schedules the lost map — its input split streams
        again through the HDFS path."""
        fns = self._fault_fns
        with rt.frame(fns["fetch_fail_handler"]):
            rt.alu(n=30 + int(70 * event.severity), chain=False)
        with rt.frame(fns["task_retry"]):
            self.kernel.read_file(rt, self._split_file, self._split_offset,
                                  2048)
            rt.alu(n=60, chain=False)
        self.kernel.send(rt, 256)  # failure report to the jobtracker

    def fault_straggler(self, rt: Runtime, event: FaultEvent) -> None:
        """Speculative execution: a backup attempt re-reads the slow
        task's buffered output and re-scores a document slice."""
        fns = self._fault_fns
        with rt.frame(fns["speculative_task"]):
            rt.scan(self.spill_buffer, 8 * 1024, work_per_line=3)
            rt.alu(n=40, chain=False)
        self.kernel.context_switch(rt)

    def fault_gc_storm(self, rt: Runtime, event: FaultEvent) -> None:
        """A JVM collection storm: mark a spill-buffer slice beyond the
        steady-state housekeeping window, then run the scattered
        remark/reference-processing phase."""
        with rt.frame(self.fns["gc_code"]):
            nbytes = min(1 << 20, int(8 * 1024 * event.severity))
            rt.scan(self.spill_buffer, nbytes, work_per_line=1)
        with rt.frame(self._fault_fns["gc_remark"]):
            rt.alu(n=120 + int(80 * event.severity), chain=False)

    def fault_memory_pressure(self, rt: Runtime, event: FaultEvent) -> None:
        """Page-cache reclaim evicts split pages; re-fault them through
        the read path on top of the generic reclaim scan."""
        super().fault_memory_pressure(rt, event)
        with rt.frame(self._fault_fns["task_retry"]):
            self.kernel.read_file(rt, self._split_file,
                                  self._split_offset, 1024)

    @property
    def accuracy(self) -> float:
        return self.correct / self.docs_processed if self.docs_processed else 0.0

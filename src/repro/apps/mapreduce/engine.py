"""A map/combine/shuffle/reduce engine.

Generic over user-supplied map and reduce functions, like the Hadoop
infrastructure it stands in for (§2.2: "Users implement algorithms using
map and reduce functions and provide these functions to the map-reduce
infrastructure, which is then responsible for orchestrating the work").
Communication between phases goes through materialized intermediate
"files" (the engine tracks bytes written/read), keeping map and reduce
tasks architecturally independent — the property the paper highlights.

The engine is fully functional on plain Python data and is also used
untraced in the unit tests (word count, inverted index).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.machine.hashing import stable_hash

MapFn = Callable[[object], Iterable[tuple[Hashable, object]]]
ReduceFn = Callable[[Hashable, list[object]], object]


@dataclass
class MapTask:
    """One input split assigned to one mapper."""

    task_id: int
    records: Sequence[object]


@dataclass
class ShufflePartition:
    """Intermediate data destined for one reducer."""

    partition_id: int
    pairs: list[tuple[Hashable, object]] = field(default_factory=list)

    @property
    def approximate_bytes(self) -> int:
        return 16 * len(self.pairs)


class MapReduceEngine:
    """Orchestrates map → combine → shuffle → reduce over input splits."""

    def __init__(self, num_reducers: int = 4) -> None:
        if num_reducers <= 0:
            raise ValueError("need at least one reducer")
        self.num_reducers = num_reducers
        self.map_output_records = 0
        self.combined_records = 0
        self.shuffle_bytes = 0
        self.reduce_input_groups = 0

    # -- phases -----------------------------------------------------------
    def split(self, records: Sequence[object], split_size: int) -> list[MapTask]:
        if split_size <= 0:
            raise ValueError("split_size must be positive")
        return [
            MapTask(i, records[offset: offset + split_size])
            for i, offset in enumerate(range(0, len(records), split_size))
        ]

    def run_map_task(
        self,
        task: MapTask,
        map_fn: MapFn,
        combine_fn: ReduceFn | None = None,
    ) -> list[ShufflePartition]:
        """Run one mapper; returns its partitioned (combined) output."""
        partitions = [ShufflePartition(p) for p in range(self.num_reducers)]
        buffered: dict[Hashable, list[object]] = defaultdict(list)
        for record in task.records:
            for key, value in map_fn(record):
                self.map_output_records += 1
                buffered[key].append(value)
        for key, values in buffered.items():
            if combine_fn is not None and len(values) > 1:
                values = [combine_fn(key, values)]
                self.combined_records += 1
            partition = partitions[stable_hash(key) % self.num_reducers]
            for value in values:
                partition.pairs.append((key, value))
        for partition in partitions:
            self.shuffle_bytes += partition.approximate_bytes
        return partitions

    def run_reduce(
        self,
        partitions: Iterable[ShufflePartition],
        reduce_fn: ReduceFn,
    ) -> dict[Hashable, object]:
        """Merge shuffle output and apply the reducer per key group."""
        grouped: dict[Hashable, list[object]] = defaultdict(list)
        for partition in partitions:
            for key, value in partition.pairs:
                grouped[key].append(value)
        output: dict[Hashable, object] = {}
        for key in sorted(grouped, key=repr):
            self.reduce_input_groups += 1
            output[key] = reduce_fn(key, grouped[key])
        return output

    def run(
        self,
        records: Sequence[object],
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        split_size: int = 64,
        combine_fn: ReduceFn | None = None,
    ) -> dict[Hashable, object]:
        """The whole pipeline on one node (used by tests and examples)."""
        all_partitions: list[ShufflePartition] = []
        for task in self.split(records, split_size):
            all_partitions.extend(self.run_map_task(task, map_fn, combine_fn))
        return self.run_reduce(all_partitions, reduce_fn)

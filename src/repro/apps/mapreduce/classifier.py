"""Multinomial naive-Bayes text classifier (the Mahout Bayes analog).

A real classifier: it is trained on word counts and classifies documents
by accumulating class-conditional log-likelihoods.  Words are integer
token ids; documents are token sequences.  The training corpus generator
draws each class's tokens from a class-specific Zipfian-like mixture, so
a correctly implemented classifier recovers the class labels — which the
test suite asserts.
"""

from __future__ import annotations

import math
import random

import numpy as np


class NaiveBayesModel:
    """Trained model: per-class log-priors and per-term log-likelihoods."""

    def __init__(self, vocab_size: int, num_classes: int) -> None:
        if vocab_size <= 0 or num_classes <= 0:
            raise ValueError("vocab_size and num_classes must be positive")
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self._counts = np.ones((num_classes, vocab_size), dtype=np.float64)
        self._class_docs = np.zeros(num_classes, dtype=np.float64)
        self._log_likelihood: np.ndarray | None = None
        self._log_prior: np.ndarray | None = None

    def train(self, documents: list[tuple[int, list[int]]]) -> None:
        """Accumulate counts from (label, tokens) pairs and finalize."""
        for label, tokens in documents:
            self._class_docs[label] += 1
            np.add.at(self._counts[label], tokens, 1.0)
        totals = self._counts.sum(axis=1, keepdims=True)
        self._log_likelihood = np.log(self._counts / totals)
        priors = self._class_docs + 1.0
        self._log_prior = np.log(priors / priors.sum())

    @property
    def trained(self) -> bool:
        return self._log_likelihood is not None

    def classify(self, tokens: list[int]) -> int:
        """Return the most likely class for a token sequence."""
        if not self.trained:
            raise RuntimeError("classify() before train()")
        scores = self._log_prior + self._log_likelihood[:, tokens].sum(axis=1)
        return int(np.argmax(scores))

    def class_scores(self, tokens: list[int]) -> list[float]:
        if not self.trained:
            raise RuntimeError("class_scores() before train()")
        scores = self._log_prior + self._log_likelihood[:, tokens].sum(axis=1)
        return [float(s) for s in scores]


class CorpusGenerator:
    """Synthetic Wikipedia-like corpus with class-conditional vocabularies.

    Each class (country tag) draws 60 % of its tokens from a shared
    Zipf-ish pool and 40 % from a class-specific band of the vocabulary,
    giving the classifier real signal to learn.
    """

    def __init__(self, vocab_size: int, num_classes: int, seed: int = 0) -> None:
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self._rng = random.Random(seed)
        self._band = max(1, vocab_size // (2 * num_classes))

    def _draw_token(self, label: int) -> int:
        rng = self._rng
        if rng.random() < 0.6:
            # Shared pool: approximately Zipfian via inverse-power draw.
            u = rng.random()
            rank = int(self.vocab_size * (u ** 3))
            return min(rank, self.vocab_size - 1)
        band_start = (self.vocab_size // 2) + label * self._band
        return band_start + rng.randrange(self._band)

    def document(self, label: int, length: int) -> list[int]:
        return [self._draw_token(label) for _ in range(length)]

    def labelled_corpus(
        self, docs_per_class: int, doc_length: int
    ) -> list[tuple[int, list[int]]]:
        corpus = []
        for label in range(self.num_classes):
            for _ in range(docs_per_class):
                corpus.append((label, self.document(label, doc_length)))
        self._rng.shuffle(corpus)
        return corpus


def classification_accuracy(
    model: NaiveBayesModel, corpus: list[tuple[int, list[int]]]
) -> float:
    """Fraction of the labelled corpus the model classifies correctly."""
    if not corpus:
        return math.nan
    correct = sum(1 for label, tokens in corpus if model.classify(tokens) == label)
    return correct / len(corpus)

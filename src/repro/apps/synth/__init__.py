"""Desktop and parallel benchmark proxies (§3.3): PARSEC, SPEC CINT2006.

The paper reports PARSEC and SPECint averaged into cpu-intensive and
memory-intensive groups, with range bars for the per-benchmark spread
(Figure 3).  Each group here contains two executable kernels chosen to
span that spread:

* ``parsec-cpu``   — blackscholes-like dense arithmetic; swaptions-like
  branchy Monte-Carlo arithmetic.
* ``parsec-mem``   — streamcluster-like streaming distance kernel (high
  MLP, prefetcher-friendly); canneal-like random pointer walks.
* ``specint-cpu``  — h264-like blocked compute; perlbench-like branchy
  table-driven interpretation.
* ``specint-mem``  — mcf-like dependent pointer chasing over a working
  set a few times the LLC (the Figure 4 LLC-sensitivity contrast);
  libquantum-like pure streaming.

All kernels run entirely in user mode with tiny instruction working
sets — the contrast class for every figure.
"""

from repro.apps.synth.kernels import (
    SynthKernelApp,
    ParsecCpuApp,
    ParsecMemApp,
    SpecIntCpuApp,
    SpecIntMemApp,
    McfApp,
)

__all__ = [
    "SynthKernelApp",
    "ParsecCpuApp",
    "ParsecMemApp",
    "SpecIntCpuApp",
    "SpecIntMemApp",
    "McfApp",
]

"""Executable kernels for the desktop/parallel proxy workloads.

Each kernel is a small real loop nest over simulated arrays; the knobs
(working-set size, access mode, arithmetic per element, dependence
structure) are set per benchmark to land in the envelope the paper
reports for its group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ServerApp
from repro.machine.runtime import Runtime

_LINE = 64


@dataclass(frozen=True)
class KernelSpec:
    """One member benchmark of a group."""

    name: str
    mode: str  # 'stream', 'chase', 'blocked', 'montecarlo', 'table'
    working_set: int
    alu_per_line: int
    chain: bool  # serial arithmetic (low ILP) vs independent (high ILP)
    weight: float = 1.0


class SynthKernelApp(ServerApp):
    """A compute benchmark: no OS activity, small code footprint.

    ``member`` restricts the app to one benchmark of the group — the
    runner measures members separately and averages their metrics, as
    the paper does ("reporting results averaged across all benchmarks"),
    with the min/max giving Figure 3's range bars.
    """

    name = "synth"
    os_intensive = False
    KERNELS: list[KernelSpec] = []
    CODE_KB = 24

    def __init__(self, seed: int = 0, member: str | None = None) -> None:
        if member is not None:
            matching = [k for k in self.KERNELS if k.name == member]
            if not matching:
                names = ", ".join(k.name for k in self.KERNELS)
                raise KeyError(f"no member {member!r} in {self.name}; have {names}")
            self.KERNELS = matching
        super().__init__(seed)

    @classmethod
    def member_names(cls) -> list[str]:
        return [k.name for k in cls.KERNELS]

    def setup(self) -> None:
        self.loop_fn = self.layout.function(
            f"{self.name}.kernel", self.CODE_KB * 1024, locality="loop",
            bb_mean=12, hot_fraction=0.6,
        )
        self.aux_fn = self.layout.function(
            f"{self.name}.aux", 32 * 1024, locality="scatter",
            bb_mean=10, hot_fraction=0.4,
        )
        self.arenas = {
            spec.name: self.space.alloc(spec.working_set, "heap", align=_LINE)
            for spec in self.KERNELS
        }
        self._cursors = {spec.name: 0 for spec in self.KERNELS}
        self._round = 0
        self.iterations = 0

    def warm_ranges(self):
        # Steady state fills the LLC with as much of each working set as
        # fits: small sets entirely; big pointer-chase arenas partially
        # (their LLC hit ratio is what makes mcf scale with capacity in
        # Figure 4).  Pure streaming arenas stay cold — a sweep never
        # revisits a line before it is evicted.
        budget = 13 << 20  # slightly over the largest LLC; fill() clamps
        ranges = []
        for spec in self.KERNELS:
            if spec.mode == "stream" and spec.working_set > budget:
                continue
            take = min(spec.working_set, budget)
            ranges.append((self.arenas[spec.name], take))
            budget -= take
            if budget <= 0:
                break
        return ranges

    def serve(self, rt: Runtime) -> None:
        spec = self.KERNELS[self._round % len(self.KERNELS)]
        self._round += 1
        with rt.frame(self.loop_fn):
            getattr(self, f"_run_{spec.mode}")(rt, spec)
        self.iterations += 1

    # -- kernel bodies ----------------------------------------------------
    def _next_window(self, spec: KernelSpec, nbytes: int) -> int:
        base = self.arenas[spec.name]
        cursor = self._cursors[spec.name]
        self._cursors[spec.name] = (cursor + nbytes) % spec.working_set
        return base + cursor % max(1, spec.working_set - nbytes)

    def _run_stream(self, rt: Runtime, spec: KernelSpec) -> None:
        """Unit-stride sweep: independent loads + per-line arithmetic."""
        window = self._next_window(spec, 8 * 1024)
        rt.scan(window, 8 * 1024, work_per_line=spec.alu_per_line)
        rt.scan(window, 2 * 1024, write=True, work_per_line=0)

    def _run_chase(self, rt: Runtime, spec: KernelSpec) -> None:
        """Dependent pointer walks over the whole working set (mcf-like):
        two independent chains interleaved, as mcf's arc traversals
        overlap a little but stay dependence-bound."""
        lines = spec.working_set // _LINE
        base = self.arenas[spec.name]
        position = self._cursors[spec.name]
        chains = [0, 0]
        for hop in range(96):
            position = (position * 1103515245 + 12345) % lines
            parent = chains[hop & 1]
            token = rt.load(base + position * _LINE, (parent,) if parent else ())
            rt.alu((token,), n=spec.alu_per_line, chain=False)
            chains[hop & 1] = token
        self._cursors[spec.name] = position

    def _run_blocked(self, rt: Runtime, spec: KernelSpec) -> None:
        """Cache-blocked compute: repeated sweeps of a block that fits,
        with a short serial recurrence per element plus independent
        arithmetic (the FP pipelines of blackscholes/h264)."""
        block = self.arenas[spec.name] + (
            self._cursors[spec.name] % max(1, spec.working_set - 16 * 1024)
        )
        for _ in range(2):
            for off in range(0, 4 * 1024, _LINE):
                token = rt.load(block + off)
                serial = rt.alu((token,), n=4, chain=True)
                rt.alu((serial,), n=spec.alu_per_line, chain=False)
        self._cursors[spec.name] += 4 * 1024

    def _run_montecarlo(self, rt: Runtime, spec: KernelSpec) -> None:
        """Arithmetic-dominated with data-dependent branches."""
        window = self._next_window(spec, 1024)
        token = rt.load(window)
        for draw in range(24):
            rt.alu((token,), n=10, chain=spec.chain)
            rt.branch(self.rng.random() < 0.85, site=f"mc{draw % 4}")
        rt.store(window, (token,))

    def _run_table(self, rt: Runtime, spec: KernelSpec) -> None:
        """Table-driven interpretation (perlbench-like): indexed loads
        into a modest table plus unpredictable dispatch."""
        base = self.arenas[spec.name]
        lines = spec.working_set // _LINE
        for step in range(24):
            slot = self.rng.randrange(lines)
            token = rt.load(base + slot * _LINE)
            rt.alu((token,), n=5, chain=False)
            rt.indirect_jump(slot & 15, (token,))


class ParsecCpuApp(SynthKernelApp):
    """PARSEC cpu-intensive group (blackscholes/swaptions-like)."""

    name = "parsec-cpu"
    KERNELS = [
        KernelSpec("blackscholes", "blocked", 2 << 20, 7, chain=False),
        KernelSpec("swaptions", "montecarlo", 1 << 20, 8, chain=False),
    ]


class ParsecMemApp(SynthKernelApp):
    """PARSEC memory-intensive group (streamcluster/canneal-like)."""

    name = "parsec-mem"
    KERNELS = [
        KernelSpec("streamcluster", "stream", 96 << 20, 24, chain=False),
        KernelSpec("canneal", "chase", 64 << 20, 4, chain=True),
    ]


class SpecIntCpuApp(SynthKernelApp):
    """SPECint cpu-intensive group (h264/perlbench-like)."""

    name = "specint-cpu"
    KERNELS = [
        KernelSpec("h264ref", "blocked", 4 << 20, 12, chain=False),
        KernelSpec("perlbench", "table", 1 << 20, 6, chain=False),
    ]
    CODE_KB = 48


class SpecIntMemApp(SynthKernelApp):
    """SPECint memory-intensive group (mcf/libquantum-like)."""

    name = "specint-mem"
    KERNELS = [
        KernelSpec("mcf", "chase", 28 << 20, 6, chain=True),
        KernelSpec("libquantum", "stream", 64 << 20, 20, chain=False),
    ]


class McfApp(SynthKernelApp):
    """SPECint mcf alone — the Figure 4 LLC-sensitivity reference."""

    name = "specint-mcf"
    KERNELS = [KernelSpec("mcf", "chase", 28 << 20, 6, chain=True)]

"""Data Serving workload: a Cassandra-like NoSQL store under YCSB load.

Paper setup (§3.2): "We benchmark the Cassandra 0.7.3 database with a
15GB Yahoo! Cloud Serving Benchmark (YCSB) dataset ... requests
following a Zipfian distribution with a 95:5 read to write request
ratio."

This package implements the storage engine (memtable + bloom-filtered
SSTables with sparse indexes + commit log), the request path (network
receive, query execution, response serialization), and the managed-
runtime overheads (JIT-compiled runtime code footprint, young-generation
garbage collection) that dominate the real system's micro-architectural
behaviour.
"""

from repro.apps.kvstore.store import Memtable, SSTable, KeyValueStore
from repro.apps.kvstore.app import DataServingApp

__all__ = ["Memtable", "SSTable", "KeyValueStore", "DataServingApp"]

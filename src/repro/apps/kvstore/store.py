"""Log-structured storage engine (memtable + SSTables).

The read path matches Cassandra's: probe the in-memory memtable, then
consult each on-"disk" SSTable — a bloom-filter check first, then a
binary search of the sparse key index, then the data-block read.  Every
structure lives in simulated memory (the paper's setup keeps the dataset
memory-resident via the iSCSI RAM-disk rig), so the emitted loads follow
the real pointer and search dependences of an LSM read.
"""

from __future__ import annotations

from repro.machine.address_space import AddressSpace
from repro.machine.hashing import stable_hash
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray, SimHashMap

_LINE = 64


class Memtable:
    """In-memory write buffer (Cassandra's ConcurrentSkipListMap stand-in)."""

    def __init__(self, space: AddressSpace, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._map = SimHashMap(space, nbuckets=capacity, node_bytes=64)
        self._insertion_order: list[int] = []

    def put(self, rt: Runtime, key: int, record_addr: int) -> None:
        if not self._map.contains(key):
            self._insertion_order.append(key)
        self._map.put(rt, key, record_addr)

    def get(self, rt: Runtime, key: int) -> int | None:
        value = self._map.get(rt, key)
        return value if value is None else int(value)  # type: ignore[arg-type]

    def is_full(self) -> bool:
        return len(self._insertion_order) >= self.capacity

    def drain(self) -> list[int]:
        keys = self._insertion_order
        self._insertion_order = []
        return keys

    def __len__(self) -> int:
        return len(self._insertion_order)


class SSTable:
    """One sorted run: bloom filter + sparse index + data blocks."""

    BLOOM_HASHES = 3
    SPARSE_FACTOR = 4  # keys summarized per sparse-index entry

    def __init__(
        self,
        space: AddressSpace,
        table_id: int,
        keys: list[int],
        record_bytes: int,
        false_positive_permille: int = 10,
    ) -> None:
        self.table_id = table_id
        self.keys = sorted(keys)
        self.record_bytes = record_bytes
        self._rank = {key: i for i, key in enumerate(self.keys)}
        # ~10 bits per key, the classic bloom sizing for ~1% FP rate.
        bloom_lines = max(1, len(keys) * 10 // 8 // _LINE + 1)
        self.bloom = SimArray(space, bloom_lines, _LINE)
        # Sparse index: one entry per SPARSE_FACTOR keys (Cassandra-style).
        self.index = SimArray(space, max(1, len(keys) // self.SPARSE_FACTOR + 1), 16)
        self.data = SimArray(space, max(1, len(keys)), record_bytes)
        self.false_positive_permille = false_positive_permille

    def might_contain(self, rt: Runtime, key: int) -> bool:
        """Bloom-filter check: k dependent hash+probe pairs."""
        token = rt.alu(n=2)  # hash the key
        for i in range(self.BLOOM_HASHES):
            slot = stable_hash(key, self.table_id, i) % self.bloom.count
            token = rt.load(self.bloom.addr(slot), (token,))
        if key in self._rank:
            return True
        # A real bloom filter sometimes says yes for absent keys.
        return stable_hash(key, self.table_id) % 1000 \
            < self.false_positive_permille

    def find(self, rt: Runtime, key: int) -> int | None:
        """Binary-search the sparse index, then scan the covered run."""
        lo, hi = 0, self.index.count - 1
        token = 0
        sparse = self.SPARSE_FACTOR
        while lo < hi:
            mid = (lo + hi + 1) // 2
            token = rt.load(self.index.addr(mid), (token,) if token else ())
            rt.alu((token,))  # key comparison
            anchor = mid * sparse
            anchor_key = self.keys[anchor] if anchor < len(self.keys) else None
            if anchor_key is not None and anchor_key <= key:
                lo = mid
            else:
                hi = mid - 1
        # Scan forward through the sparse run for the exact key.
        for rank in range(lo * sparse, min((lo + 1) * sparse, len(self.keys))):
            token = rt.load(self.data.addr(rank), (token,) if token else ())
            rt.alu((token,))
            if self.keys[rank] == key:
                return self.read_record(rt, rank, token)
        return None

    def read_record(self, rt: Runtime, rank: int, dep: int) -> int:
        """Load the record's data block; returns its address.

        A row is a linked list of column groups: lines form two parallel
        dependence chains (each line needs the pointer loaded two lines
        earlier), bounding the memory parallelism of a row read at ~2 —
        the scale-out MLP regime of §4.2."""
        addr = self.data.addr(rank)
        prev = [dep, dep]
        index = 0
        for off in range(0, self.record_bytes, _LINE):
            parent = prev[index & 1]
            token = rt.load(addr + off, (parent,) if parent else ())
            prev[index & 1] = token
            index += 1
        return addr

    def record_addr(self, key: int) -> int | None:
        rank = self._rank.get(key)
        return None if rank is None else self.data.addr(rank)


class KeyValueStore:
    """The full LSM read/write path: memtable, L0 runs, base SSTables.

    Like Cassandra, writes accumulate in the memtable; a full memtable
    is flushed (incrementally, as the background flusher would) into a
    fresh level-0 run; and once enough L0 runs pile up they are
    compacted away.  Reads consult memtable -> L0 runs (newest first)
    -> base SSTables, each gated by its bloom filter.
    """

    #: L0 runs tolerated before compaction starts consuming them.
    COMPACTION_THRESHOLD = 4
    #: Keys flushed/compacted per background slice (amortized work).
    BACKGROUND_SLICE = 24

    def __init__(
        self,
        space: AddressSpace,
        record_count: int,
        record_bytes: int = 1024,
        sstables: int = 4,
        memtable_capacity: int = 8192,
    ) -> None:
        self.space = space
        self.record_count = record_count
        self.record_bytes = record_bytes
        self.memtable = Memtable(space, memtable_capacity)
        self.sstables = [
            SSTable(
                space,
                table_id,
                [k for k in range(record_count) if k % sstables == table_id],
                record_bytes,
            )
            for table_id in range(sstables)
        ]
        self.l0_runs: list[SSTable] = []
        self._next_run_id = sstables
        self._flush_queue: list[int] = []
        self._compact_queue: list[int] = []
        self._compacting: SSTable | None = None
        self.flushes = 0
        self.compactions = 0
        # Commit log: appended on every write, fsynced by the caller.
        self.commit_log = space.alloc(64 << 20, "heap", align=_LINE)
        self._log_cursor = 0
        self.reads = 0
        self.writes = 0
        self.memtable_hits = 0

    def get(self, rt: Runtime, key: int) -> int | None:
        """Read path: memtable, then bloom-gated runs and SSTables."""
        self.reads += 1
        addr = self.memtable.get(rt, key)
        if addr is not None:
            self.memtable_hits += 1
            # Memtable hit still reads the record payload (independent
            # field loads behind the probe).
            for off in range(0, self.record_bytes, _LINE):
                rt.load(addr + off)
            return addr
        for run in self.l0_runs:  # newest first
            if run.might_contain(rt, key):
                found = run.find(rt, key)
                if found is not None:
                    return found
        for sstable in self.sstables:
            if sstable.might_contain(rt, key):
                found = sstable.find(rt, key)
                if found is not None:
                    return found
        return None

    # -- background maintenance (flush + compaction) ----------------------
    def background(self, rt: Runtime) -> None:
        """One slice of the background flusher/compactor."""
        if self.memtable.is_full() and not self._flush_queue:
            self._flush_queue = self.memtable.drain()
        if self._flush_queue:
            self._flush_slice(rt)
        elif self._compact_queue:
            self._compact_slice(rt)
        elif len(self.l0_runs) >= self.COMPACTION_THRESHOLD:
            self._begin_compaction()

    def _flush_slice(self, rt: Runtime) -> None:
        """Write a batch of memtable entries into the forming L0 run."""
        batch = self._flush_queue[: self.BACKGROUND_SLICE]
        del self._flush_queue[: self.BACKGROUND_SLICE]
        run = SSTable(self.space, self._next_run_id, batch, self.record_bytes)
        self._next_run_id += 1
        for rank in range(len(run.keys)):
            # Sequential run construction: data block + index entry.
            base = run.data.addr(rank)
            for off in range(0, min(self.record_bytes, 2 * _LINE), _LINE):
                rt.store(base + off)
            rt.store(run.index.addr(rank // run.SPARSE_FACTOR))
        rt.store(run.bloom.addr(0))
        self.l0_runs.insert(0, run)
        if not self._flush_queue:
            self.flushes += 1

    def _begin_compaction(self) -> None:
        victim = self.l0_runs.pop()  # the oldest run
        self._compacting = victim
        self._compact_queue = list(victim.keys)

    def _compact_slice(self, rt: Runtime) -> None:
        """Merge a batch of the victim run back into the base tables."""
        batch = self._compact_queue[: self.BACKGROUND_SLICE]
        del self._compact_queue[: self.BACKGROUND_SLICE]
        victim = self._compacting
        for key in batch:
            rank = victim._rank[key]
            token = rt.load(victim.data.addr(rank))  # sequential read...
            home = self.sstables[key % len(self.sstables)]
            target = home.record_addr(key)
            if target is not None:
                rt.store(target, (token,))  # ...rewrite in the base table
        if not self._compact_queue:
            self._compacting = None
            self.compactions += 1

    def put(self, rt: Runtime, key: int) -> int:
        """Write path: commit-log append + memtable insert."""
        self.writes += 1
        home = self.sstables[key % len(self.sstables)]
        record_addr = home.record_addr(key)
        if record_addr is None:
            record_addr = home.data.addr(0)
        # Append the mutation to the commit log (sequential stores).
        entry = self.commit_log + (self._log_cursor % (64 << 20))
        self._log_cursor += self.record_bytes
        for off in range(0, min(self.record_bytes, 4 * _LINE), _LINE):
            rt.store(entry + off)
        self.memtable.put(rt, key, record_addr)
        # Overwrite the record's first lines in place (the new version).
        token = rt.alu(n=2)
        for off in range(0, min(self.record_bytes, 4 * _LINE), _LINE):
            token = rt.store(record_addr + off, (token,))
        return record_addr

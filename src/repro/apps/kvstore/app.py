"""The Data Serving application: request loop, JVM overheads, GC.

Request path per YCSB operation: network receive of the query, thrift
decode, storage-engine execution, response serialization, network send.
Managed-runtime behaviour — a large JIT-compiled code footprint and a
parallel young-generation collector whose marking writes are visible to
the other server threads — comes on top, as in the real Cassandra
(§4.4: "Java-based applications exhibit a small degree of sharing from
the use of a parallel garbage collector").
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.kvstore.store import KeyValueStore
from repro.faults.plan import FaultEvent
from repro.load.ycsb import YcsbClient
from repro.machine.runtime import Runtime

_LINE = 64

#: The synthetic degraded-window event the hinted-handoff op class
#: replays: the same write-to-a-down-replica path
#: :meth:`DataServingApp.fault_replica_crash` executes under a fault
#: plan, at unit severity so calibration prices the nominal hint.
_HINT_EVENT = FaultEvent(kind="replica-crash", at_request=0, duration=1,
                         severity=1.0)


class DataServingApp(ServerApp):
    """Cassandra-like data store under YCSB load."""

    name = "data-serving"
    os_intensive = True

    #: Instruction-footprint plan: (function, KB, locality, bb, hot fraction).
    CODE_PLAN = [
        ("thrift_decode", 96, "scatter", 7, 0.15),
        ("query_exec", 128, "scatter", 8, 0.15),
        ("memtable_code", 96, "scatter", 8, 0.2),
        ("sstable_reader", 160, "scatter", 8, 0.15),
        ("bloom_index", 64, "scatter", 9, 0.25),
        ("serializer", 112, "scatter", 7, 0.15),
        ("commit_log_code", 64, "scatter", 8, 0.2),
        ("jvm_runtime", 384, "scatter", 7, 0.1),
        ("jit_helpers", 192, "scatter", 7, 0.1),
        ("gc_code", 128, "scatter", 9, 0.2),
    ]

    #: Cassandra's real error paths: failure detection (gossip/phi
    #: accrual), hinted handoff for writes to down replicas, read
    #: repair, and speculative (hedged) reads.  Registered only when a
    #: fault injector attaches.
    FAULT_CODE_PLAN = ServerApp.FAULT_CODE_PLAN + [
        ("gossip_failure_detector", 72, "scatter", 8, 0.15),
        ("hinted_handoff", 96, "scatter", 7, 0.15),
        ("read_repair", 80, "scatter", 8, 0.2),
        ("speculative_retry", 48, "scatter", 8, 0.2),
        ("gc_remark", 72, "scatter", 6, 0.15),
    ]

    #: Hand-written per-operation service costs (simulated
    #: microseconds) for the fleet layer (:mod:`repro.cluster`) —
    #: the ``--costs=static`` fallback only.  Measured runs derive the
    #: same five classes from uarch replay of :meth:`cluster_ops`
    #: instead (:mod:`repro.cluster.calibrate`).  Ratios mirror the
    #: serve() path — an update walks the memtable + commit log, a
    #: hinted write is the short hint-log append from
    #: ``fault_replica_crash``, read repair the index walk from
    #: ``fault_request_drop``, and a health probe is a gossip round
    #: trip with no storage work.
    CLUSTER_SERVICE_COSTS = {
        "read": 420,
        "update": 660,
        "hint": 150,
        "repair": 260,
        "probe": 40,
    }

    def __init__(self, seed: int = 0, record_count: int = 300_000,
                 record_bytes: int = 256) -> None:
        self.record_count = record_count
        self.record_bytes = record_bytes
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"cassandra.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.store = KeyValueStore(self.space, self.record_count, self.record_bytes)
        self.client = YcsbClient(self.record_count, seed=self.seed,
                                 metrics=self.service,
                                 retry=self.fault_policy)
        # Young generation: each thread allocates here; the parallel GC
        # scans and marks it, writing lines other threads later touch.
        self.nursery_bytes = 1 << 20
        self.nursery = self.space.alloc(self.nursery_bytes, "heap", align=_LINE)
        self._alloc_cursor = 0
        self._gc_cursor = 0
        self.requests_served = 0
        # Per-connection request/response staging buffers.
        self._req_buf = self.space.alloc(4096, "heap", align=_LINE)
        self._resp_buf = self.space.alloc(8192, "heap", align=_LINE)

    def warm_ranges(self):
        ranges = [(self.nursery, self.nursery_bytes)]
        for sstable in self.store.sstables:
            ranges.append((sstable.bloom.base, sstable.bloom.nbytes))
            ranges.append((sstable.index.base, sstable.index.nbytes))
        # The Zipfian hot set: records for the most popular ranks.
        hot = self.client.hot_keys(10_000)
        for key in hot:
            home = self.store.sstables[key % len(self.store.sstables)]
            addr = home.record_addr(key)
            if addr is not None:
                ranges.append((addr, self.record_bytes))
        return ranges

    # -- request handling ---------------------------------------------------
    def serve(self, rt: Runtime, op_kind: str | None = None) -> None:
        op = self.client.next_op()
        kind = op.kind if op_kind is None else op_kind
        self.kernel.recv(rt, 96, into_base=self._req_buf,
                         sock_id=rt.tid * 257 + self.requests_served % 64)
        with rt.frame(self.fns["thrift_decode"]):
            token = rt.load(self._req_buf)
            rt.alu((token,), n=60, chain=False)
            rt.alu(n=120, chain=False)
        with rt.frame(self.fns["query_exec"]):
            rt.alu(n=90, chain=False)
            self._allocate(rt, 256)  # per-request garbage
            if kind == "read":
                self._execute_read(rt, op.key)
            else:
                self._execute_update(rt, op.key)
        self.kernel.send(rt, self.record_bytes + 64, payload_base=self._resp_buf,
                         sock_id=rt.tid * 257 + self.requests_served % 64)
        self._jvm_background(rt)
        with rt.frame(self.fns["commit_log_code"]):
            self.store.background(rt)  # flush/compaction slices
        self.requests_served += 1
        if self.requests_served % 64 == 0:
            self._minor_gc(rt)

    def _execute_read(self, rt: Runtime, key: int) -> None:
        with rt.frame(self.fns["sstable_reader"]):
            with rt.frame(self.fns["bloom_index"]):
                rt.alu(n=4)
            addr = self.store.get(rt, key)
        with rt.frame(self.fns["serializer"]):
            # Serialize the record into the response buffer.
            if addr is not None:
                for off in range(0, self.record_bytes, _LINE):
                    token = rt.load(addr + off)
                    rt.alu((token,), n=4, chain=False)  # field encode
                    rt.store(self._resp_buf + (off % 8192), (token,))
            rt.alu(n=12, chain=False)

    def _execute_update(self, rt: Runtime, key: int) -> None:
        with rt.frame(self.fns["memtable_code"]):
            rt.alu(n=4)
        with rt.frame(self.fns["commit_log_code"]):
            self.store.put(rt, key)
        with rt.frame(self.fns["serializer"]):
            rt.store(self._resp_buf)
            rt.alu(n=4)

    # -- cluster op classes (fleet cost calibration) -------------------------
    def cluster_ops(self):
        """The five replica request classes the fleet layer prices.

        Each handler serves one request of that class on the same code
        paths a single-node trace exercises: reads/updates are the
        regular YCSB serve path pinned to one kind, a hint replays the
        hinted-handoff write path, repair the read-repair digest merge,
        and a probe the gossip failure-detector round trip.
        """
        return {
            "read": lambda rt: self.serve(rt, op_kind="read"),
            "update": lambda rt: self.serve(rt, op_kind="update"),
            "hint": lambda rt: self.fault_replica_crash(rt, _HINT_EVENT),
            "repair": self._cluster_read_repair,
            "probe": self._cluster_probe,
        }

    def _cluster_read_repair(self, rt: Runtime) -> None:
        """Digest mismatch resolution: walk the index, re-write the
        stale replica's record (the same shape ``fault_request_drop``
        appends to a successful retry)."""
        with rt.frame(self._fault_fns["read_repair"]):
            rt.alu(n=90, chain=False)
            home = self.store.sstables[0]
            rt.scan(home.index.base, 2 * 1024, work_per_line=1)
        self._execute_update(rt, self.client.next_op().key)

    def _cluster_probe(self, rt: Runtime) -> None:
        """One gossip health-check round trip: receive a peer's SYN,
        walk a slice of the endpoint-state table, answer."""
        self.kernel.recv(rt, 64)
        with rt.frame(self._fault_fns["gossip_failure_detector"]):
            rt.scan(self._peer_table, 1024, work_per_line=1)
            rt.alu(n=40, chain=False)
        self.kernel.send(rt, 96)

    # -- managed-runtime behaviour -----------------------------------------
    def _allocate(self, rt: Runtime, nbytes: int) -> int:
        """Bump allocation in the shared nursery (TLAB refills elided)."""
        addr = self.nursery + (self._alloc_cursor % self.nursery_bytes)
        self._alloc_cursor += nbytes
        rt.store(addr)  # object header write
        return addr

    def _jvm_background(self, rt: Runtime) -> None:
        """JIT-compiled runtime glue around every request."""
        with rt.frame(self.fns["jvm_runtime"]):
            rt.alu(n=170, chain=False)
            rt.load(self.nursery + (self._alloc_cursor % self.nursery_bytes))
        with rt.frame(self.fns["jit_helpers"]):
            rt.alu(n=60, chain=False)

    def _minor_gc(self, rt: Runtime) -> None:
        """Young-generation scan: read live objects, write mark words."""
        with rt.frame(self.fns["gc_code"]):
            scan_bytes = 32 * 1024
            base = self.nursery + (self._gc_cursor % self.nursery_bytes)
            self._gc_cursor += scan_bytes
            for off in range(0, scan_bytes, 4 * _LINE):
                token = rt.load(base + (off % self.nursery_bytes))
                if off % (16 * _LINE) == 0:
                    rt.store(base + (off % self.nursery_bytes), (token,))

    # -- degraded paths (active only under an attached FaultInjector) -------
    def register_fault_hooks(self) -> None:
        """Cassandra recovery state: the hint log and the gossip
        endpoint-state table the failure detector walks."""
        super().register_fault_hooks()
        self._hint_log_bytes = 256 * 1024
        self._hint_log = self.space.alloc(self._hint_log_bytes, "heap",
                                          align=_LINE)
        self._hint_cursor = 0
        self._peer_table = self.space.alloc(64 * 1024, "heap", align=_LINE)

    def fault_replica_crash(self, rt: Runtime, event: FaultEvent) -> None:
        """A replica is down: phi-accrual failure detection over the
        gossip peer table, then hinted handoff — the write this request
        would have sent to the dead replica is queued in the hint log."""
        fns = self._fault_fns
        with rt.frame(fns["gossip_failure_detector"]):
            rt.scan(self._peer_table, 8 * 1024, work_per_line=2)
            rt.alu(n=60, chain=False)
        with rt.frame(fns["hinted_handoff"]):
            hint = self._hint_log + (self._hint_cursor % self._hint_log_bytes)
            self._hint_cursor += 2 * _LINE
            token = rt.load(self._req_buf)
            rt.store(hint, (token,))
            rt.store(hint + _LINE, (token,))
            rt.alu(n=40 + int(60 * event.severity), chain=False)
        # The hint must survive the coordinator: append it to the
        # commit log before acknowledging the write.
        self.kernel.log_write(rt, 2 * _LINE, payload_base=self._hint_log)
        self.kernel.send(rt, 192)  # gossip SYN / hint-replay probe
        self.kernel.recv(rt, 128)  # the surviving replicas' state digest

    def fault_request_drop(self, rt: Runtime,
                           event: FaultEvent) -> tuple[int, bool, int]:
        """A coordinator timeout.  On a successful retry the digest
        mismatch triggers read repair against the recovered replica."""
        retries, ok, waited = super().fault_request_drop(rt, event)
        if ok:
            with rt.frame(self._fault_fns["read_repair"]):
                rt.alu(n=90, chain=False)
                home = self.store.sstables[0]
                rt.scan(home.index.base, 2 * 1024, work_per_line=1)
        return retries, ok, waited

    def fault_straggler(self, rt: Runtime, event: FaultEvent) -> None:
        """Speculative retry: past the p99 estimate, hedge the read
        against another replica (a genuine duplicate read path)."""
        with rt.frame(self._fault_fns["speculative_retry"]):
            rt.alu(n=50, chain=False)
            self.kernel.send(rt, 96)  # the hedged read to another replica
            self._execute_read(rt, self.client.hot_keys(1)[0])
        self.kernel.context_switch(rt)

    def fault_gc_storm(self, rt: Runtime, event: FaultEvent) -> None:
        """A young-generation collection storm: a marking scan beyond
        the steady-state minor-GC slice, then the remark phase — the
        scattered reference-processing/oop-iteration code a real
        collector executes per object class."""
        with rt.frame(self.fns["gc_code"]):
            nbytes = min(self.nursery_bytes, int(8 * 1024 * event.severity))
            rt.scan(self.nursery, nbytes, work_per_line=1)
        with rt.frame(self._fault_fns["gc_remark"]):
            rt.alu(n=120 + int(80 * event.severity), chain=False)

    def fault_memory_pressure(self, rt: Runtime, event: FaultEvent) -> None:
        """Reclaim walks the bloom/index working set (the structures a
        real Cassandra re-faults after a page-cache shootdown)."""
        home = self.store.sstables[0]
        with rt.frame(self._fault_fns["reclaim_scan"]):
            nbytes = min(home.index.nbytes, int(8 * 1024 * event.severity))
            rt.scan(home.index.base, nbytes, work_per_line=1)
        self.kernel.context_switch(rt)

"""Traditional transaction-processing workloads (§3.3).

A B+-tree storage engine with a buffer manager, lock manager, and
write-ahead log, plus the benchmark transaction suites:

* **TPC-C** — the classic order-entry mix (new-order, payment, order-
  status, delivery, stock-level over 40 warehouses, scaled), whose
  dependent index descents and hot-row read-write sharing make it the
  paper's most memory-bound and most sharing-intensive workload
  (Figures 1 and 6).
* **TPC-E** — the brokerage workload: more complex schemas and queries,
  more compute between accesses (the paper finds scale-out workloads
  "most similar to TPC-E and Web Backend").
* The **Web Backend** configuration (MySQL behind the Olio frontend)
  lives in :mod:`repro.apps.webbackend` and reuses this engine.
"""

from repro.apps.oltp.btree import BPlusTree
from repro.apps.oltp.engine import StorageEngine, Table, LockManager
from repro.apps.oltp.app import TpccApp, TpceApp

__all__ = ["BPlusTree", "StorageEngine", "Table", "LockManager", "TpccApp", "TpceApp"]

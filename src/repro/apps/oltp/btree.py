"""A B+-tree with simulated-memory nodes.

A real B+-tree — sorted keys, node splits, range scans — whose every
node occupies a 512-byte block of simulated memory.  A lookup emits the
access pattern that makes OLTP so memory-bound (§4, TPC-C discussion):
a *fully dependent* chain of node-header and key-area loads from root
to leaf, followed by the row read.  There is no memory-level
parallelism to extract from an index descent, which is why traditional
transaction processing shows the lowest MLP in Figure 3.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.machine.address_space import AddressSpace
from repro.machine.runtime import Runtime

_NODE_BYTES = 512
_LINE = 64


class _Node:
    __slots__ = ("leaf", "keys", "children", "values", "next_leaf", "addr")

    def __init__(self, leaf: bool, addr: int) -> None:
        self.leaf = leaf
        self.keys: list[int] = []
        self.children: list[_Node] = []
        self.values: list[object] = []
        self.next_leaf: _Node | None = None
        self.addr = addr


class BPlusTree:
    """Order-32 B+-tree keyed by ints."""

    ORDER = 32  # max keys per node

    def __init__(self, space: AddressSpace, name: str = "btree") -> None:
        self._space = space
        self.name = name
        self.root = self._new_node(leaf=True)
        self.height = 1
        self.size = 0
        self.node_count = 1

    def _new_node(self, leaf: bool) -> _Node:
        self.node_count = getattr(self, "node_count", 0) + 1
        return _Node(leaf, self._space.alloc(_NODE_BYTES, "heap", align=_LINE))

    # -- traced access helpers -------------------------------------------
    @staticmethod
    def _touch_node(rt: Runtime | None, node: _Node, dep: int) -> int:
        """Load the node header, then a couple of key-area lines, all
        dependent (the key search needs the header; comparisons need the
        keys)."""
        if rt is None:
            return 0
        token = rt.load(node.addr, (dep,) if dep else ())
        token = rt.load(node.addr + _LINE, (token,))
        rt.alu((token,), n=4)  # binary search comparisons within the node
        token = rt.load(node.addr + 2 * _LINE, (token,))
        rt.alu((token,), n=3)
        return token

    # -- operations --------------------------------------------------------
    def search(self, key: int, rt: Runtime | None = None,
               dep: int = 0) -> object | None:
        node = self.root
        token = dep
        while not node.leaf:
            token = self._touch_node(rt, node, token)
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        token = self._touch_node(rt, node, token)
        slot = bisect.bisect_left(node.keys, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            return node.values[slot]
        return None

    def insert(self, key: int, value: object, rt: Runtime | None = None,
               dep: int = 0) -> None:
        root = self.root
        if len(root.keys) >= self.ORDER:
            new_root = self._new_node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0, rt)
            self.root = new_root
            self.height += 1
        self._insert_nonfull(self.root, key, value, rt, dep)

    def _split_child(self, parent: _Node, index: int, rt: Runtime | None) -> None:
        child = parent.children[index]
        sibling = self._new_node(child.leaf)
        mid = len(child.keys) // 2
        if child.leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            up_key = sibling.keys[0]
        else:
            up_key = child.keys[mid]
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, up_key)
        parent.children.insert(index + 1, sibling)
        if rt is not None:
            # A split rewrites both nodes and the parent.
            rt.store(child.addr)
            rt.store(sibling.addr)
            rt.store(parent.addr)

    def _insert_nonfull(self, node: _Node, key: int, value: object,
                        rt: Runtime | None, dep: int = 0) -> None:
        token = dep
        while not node.leaf:
            token = self._touch_node(rt, node, token)
            slot = bisect.bisect_right(node.keys, key)
            if len(node.children[slot].keys) >= self.ORDER:
                self._split_child(node, slot, rt)
                if key > node.keys[slot]:
                    slot += 1
            node = node.children[slot]
        self._touch_node(rt, node, token)
        slot = bisect.bisect_left(node.keys, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            node.values[slot] = value
        else:
            node.keys.insert(slot, key)
            node.values.insert(slot, value)
            self.size += 1
        if rt is not None:
            rt.store(node.addr + _LINE)  # the modified key/value area

    def range_scan(
        self, start_key: int, count: int, rt: Runtime | None = None
    ) -> list[tuple[int, object]]:
        """Leaf-chained scan of up to ``count`` entries from ``start_key``."""
        node = self.root
        token = 0
        while not node.leaf:
            token = self._touch_node(rt, node, token)
            slot = bisect.bisect_right(node.keys, start_key)
            node = node.children[slot]
        out: list[tuple[int, object]] = []
        slot = bisect.bisect_left(node.keys, start_key)
        while node is not None and len(out) < count:
            token = self._touch_node(rt, node, token)
            while slot < len(node.keys) and len(out) < count:
                out.append((node.keys[slot], node.values[slot]))
                slot += 1
            node = node.next_leaf
            slot = 0
        return out

    def delete(self, key: int, rt: Runtime | None = None) -> bool:
        """Remove a key; returns False if absent.

        Deletion removes the entry from its leaf without eagerly
        rebalancing — underfull leaves are tolerated (the strategy of
        engines that defer reorganization to maintenance), so search,
        ordering, and range-scan semantics remain exact while structure
        maintenance stays amortized."""
        node = self.root
        token = 0
        while not node.leaf:
            token = self._touch_node(rt, node, token)
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        self._touch_node(rt, node, token)
        slot = bisect.bisect_left(node.keys, key)
        if slot >= len(node.keys) or node.keys[slot] != key:
            return False
        node.keys.pop(slot)
        node.values.pop(slot)
        self.size -= 1
        if rt is not None:
            rt.store(node.addr + _LINE)
        return True

    def items(self) -> Iterator[tuple[int, object]]:
        """In-order iteration (untraced; used by the tests)."""
        node = self.root
        while not node.leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def __len__(self) -> int:
        return self.size

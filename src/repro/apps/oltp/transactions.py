"""TPC-C and TPC-E-style transaction implementations.

Real transaction logic against the storage engine: each transaction
acquires locks, performs its index lookups, row reads, updates, and
inserts, appends WAL records, and commits with a synchronous log write.
The hot rows (warehouses, districts, securities) are shared read-write
by every server thread — the traditional-OLTP sharing signature of
Figure 6.
"""

from __future__ import annotations

import random

from repro.apps.oltp.engine import StorageEngine
from repro.machine.os_model import OsKernel
from repro.machine.runtime import Runtime


class TpccDatabase:
    """The TPC-C schema (scaled) plus its five transactions."""

    def __init__(self, engine: StorageEngine, warehouses: int = 40,
                 seed: int = 0) -> None:
        self.engine = engine
        self.warehouses = warehouses
        self.districts = warehouses * 10
        self.customers_per_district = 300
        self.items = 10_000
        self.stock_per_warehouse = 2_500
        self.rng = random.Random(seed)
        e = engine
        self.warehouse = e.create_table("warehouse", warehouses, 256)
        self.district = e.create_table("district", self.districts, 256)
        self.customer = e.create_table(
            "customer", self.districts * self.customers_per_district, 512
        )
        self.item = e.create_table("item", self.items, 128)
        self.stock = e.create_table(
            "stock", warehouses * self.stock_per_warehouse, 256
        )
        self.orders = e.create_table("orders", 400_000, 128)
        self.order_line = e.create_table("order_line", 400_000, 128)
        self.new_order_queue = e.create_table("new_order", 100_000, 64)
        self.history = e.create_table("history", 200_000, 128)
        # Secondary index: customers by last name (TPC-C looks 60 % of
        # payment customers up by name, not id).
        from repro.apps.oltp.btree import BPlusTree
        self.customer_by_name = BPlusTree(e.space, name="customer.lastname")
        self._next_order_id = 0
        self.populate()

    def populate(self) -> None:
        for w in range(self.warehouses):
            self.warehouse.insert(w)
        for d in range(self.districts):
            self.district.insert(d)
        for c in range(self.districts * self.customers_per_district):
            self.customer.insert(c)
            # Last names collide (the spec's syllable scheme yields ~1000
            # distinct names); the index key packs (name, customer id).
            last_name = c % 997
            self.customer_by_name.insert(last_name * 1_000_000 + c, c)
        for i in range(self.items):
            self.item.insert(i)
        for s in range(self.warehouses * self.stock_per_warehouse):
            self.stock.insert(s)

    # -- key helpers ------------------------------------------------------
    def _customer_key(self, district: int) -> int:
        return district * self.customers_per_district + self.rng.randrange(
            self.customers_per_district
        )

    def _customer_by_last_name(self, rt: Runtime) -> int:
        """The 60 % payment path: scan the name index for all customers
        with the drawn last name and take the middle one (per the spec)."""
        last_name = self.rng.randrange(997)
        matches = self.customer_by_name.range_scan(
            last_name * 1_000_000, 8, rt
        )
        same_name = [c for key, c in matches
                     if key // 1_000_000 == last_name]
        if not same_name:
            return self._customer_key(self.rng.randrange(self.districts))
        return same_name[len(same_name) // 2]

    def _stock_key(self, warehouse: int) -> int:
        return warehouse * self.stock_per_warehouse + self.rng.randrange(
            self.stock_per_warehouse
        )

    # -- transactions -----------------------------------------------------
    def new_order(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        rng = self.rng
        w = rng.randrange(self.warehouses)
        d = w * 10 + rng.randrange(10)
        e.locks.acquire(rt, ("district", d))
        self.warehouse.read(w, rt, lines=2)
        self.district.read(d, rt, lines=2, dep=self.warehouse.last_token)
        self.district.update(d, rt)  # next order id: the hot row
        self.customer.read(self._customer_key(d), rt, lines=3,
                           dep=self.district.last_token)
        rt.alu(n=90, chain=False)
        order_id = self._next_order_id
        self._next_order_id += 1
        self.orders.insert(order_id, rt, dep=self.customer.last_token)
        self.new_order_queue.insert(order_id, rt)
        chain = self.customer.last_token
        for line in range(10):
            item = rng.randrange(self.items)
            self.item.read(item, rt, lines=1, dep=chain)
            stock_key = self._stock_key(w)
            e.locks.acquire(rt, ("stock", stock_key))
            self.stock.read(stock_key, rt, lines=1, dep=self.item.last_token)
            self.stock.update(stock_key, rt, dep=self.stock.last_token)
            self.order_line.insert(order_id * 16 + line, rt, dep=self.stock.last_token)
            rt.alu(n=60, chain=False)
            chain = self.stock.last_token
            e.stats.rows_written += 2
        if rng.random() < 0.01:
            # ~1% of new-order transactions abort (the TPC-C spec's
            # invalid-item rollback): walk the undo log backwards and
            # reverse the writes.
            self._rollback(rt)
            e.locks.release_all(rt)
            e.stats.aborts += 1
            e.stats.transactions += 1
            return
        e.log_append(rt, 256)
        kernel.log_write(rt, 256)
        e.locks.release_all(rt)
        e.stats.transactions += 1

    def _rollback(self, rt: Runtime) -> None:
        """Undo: re-read the WAL tail and reverse each touched row."""
        e = self.engine
        tail = e.log_buffer + (e._log_cursor % e.log_buffer_bytes)
        token = 0
        for step in range(8):
            token = rt.load(max(e.log_buffer, tail - step * 128),
                            (token,) if token else ())
            rt.alu((token,), n=4)
        # Reverse the district counter bump (the guaranteed write).
        w = self.rng.randrange(self.warehouses)
        self.district.update(w * 10, rt, dep=token)

    def payment(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        rng = self.rng
        w = rng.randrange(self.warehouses)
        d = w * 10 + rng.randrange(10)
        e.locks.acquire(rt, ("warehouse", w))
        e.locks.acquire(rt, ("district", d))
        self.warehouse.update(w, rt)  # the hottest row in TPC-C
        self.district.update(d, rt, dep=self.warehouse.last_token)
        if rng.random() < 0.6:
            customer = self._customer_by_last_name(rt)
        else:
            customer = self._customer_key(d)
        self.customer.update(customer, rt, dep=self.district.last_token)
        rt.alu(n=80, chain=False)
        self.history.insert(e.stats.transactions % self.history.capacity, rt)
        e.log_append(rt, 128)
        kernel.log_write(rt, 256)
        e.locks.release_all(rt)
        e.stats.transactions += 1

    def order_status(self, rt: Runtime, kernel: OsKernel) -> None:
        d = self.rng.randrange(self.districts)
        self.customer.read(self._customer_key(d), rt, lines=3)
        start = max(0, self._next_order_id - self.rng.randrange(1, 20))
        self.orders.index.range_scan(start, 1, rt)
        self.order_line.index.range_scan(start * 16, 10, rt)
        rt.alu(n=50, chain=False)
        self.engine.stats.transactions += 1

    def delivery(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        w = self.rng.randrange(self.warehouses)
        # Consume the oldest undelivered orders from the NEW-ORDER queue.
        pending = self.new_order_queue.index.range_scan(0, 10, rt)
        for order_id, _slot in pending:
            self.new_order_queue.index.delete(order_id, rt)
        for d_offset in range(10):
            d = w * 10 + d_offset
            e.locks.acquire(rt, ("district", d))
            self.district.update(d, rt)
            start = max(0, self._next_order_id - self.rng.randrange(1, 40))
            self.orders.index.range_scan(start, 1, rt)
            self.order_line.index.range_scan(start * 16, 5, rt)
            self.customer.update(self._customer_key(d), rt)
            rt.alu(n=10, chain=False)
        e.log_append(rt, 256)
        kernel.log_write(rt, 256)
        e.locks.release_all(rt)
        e.stats.transactions += 1

    def stock_level(self, rt: Runtime, kernel: OsKernel) -> None:
        d = self.rng.randrange(self.districts)
        self.district.read(d, rt, lines=1)
        start = max(0, self._next_order_id - 20)
        lines = self.order_line.index.range_scan(start * 16, 20, rt)
        w = d // 10
        for _ in range(max(4, len(lines) // 2)):
            self.stock.read(self._stock_key(w), rt, lines=1)
        rt.alu(n=60, chain=False)
        self.engine.stats.transactions += 1


class TpceDatabase:
    """A TPC-E-flavoured brokerage schema with four transaction types."""

    def __init__(self, engine: StorageEngine, customers: int = 80_000,
                 seed: int = 0) -> None:
        self.engine = engine
        self.customers = customers
        self.securities = 12_000
        self.rng = random.Random(seed)
        e = engine
        self.customer = e.create_table("customer", customers, 512)
        self.account = e.create_table("account", customers * 2, 256)
        self.security = e.create_table("security", self.securities, 256)
        self.trade = e.create_table("trade", 600_000, 256)
        self.holding = e.create_table("holding", 300_000, 256)
        self._next_trade = 0
        for c in range(customers):
            self.customer.insert(c)
        for a in range(customers * 2):
            self.account.insert(a)
        for s in range(self.securities):
            self.security.insert(s)
        for h in range(60_000):
            self.holding.insert(h)

    def trade_order(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        rng = self.rng
        c = rng.randrange(self.customers)
        self.customer.read(c, rt, lines=3)
        self.account.read(c * 2 + rng.randrange(2), rt, lines=2,
                          dep=self.customer.last_token)
        s = rng.randrange(self.securities)
        self.security.read(s, rt, lines=2, dep=self.account.last_token)
        # Complex queries: commission/tax/margin computation.
        rt.alu(n=180, chain=False)
        trade_id = self._next_trade
        self._next_trade += 1
        e.locks.acquire(rt, ("trade", trade_id))
        self.trade.insert(trade_id, rt)
        e.log_append(rt, 192)
        kernel.log_write(rt, 256)
        e.locks.release_all(rt)
        e.stats.transactions += 1

    def trade_result(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        rng = self.rng
        trade_id = rng.randrange(max(1, self._next_trade or 1))
        self.trade.read(trade_id, rt, lines=3)
        s = rng.randrange(self.securities)
        e.locks.acquire(rt, ("security", s))
        self.security.update(s, rt, dep=self.trade.last_token)
        self.holding.read(rng.randrange(60_000), rt, lines=2,
                          dep=self.security.last_token)
        rt.alu(n=220, chain=False)
        e.log_append(rt, 192)
        kernel.log_write(rt, 256)
        e.locks.release_all(rt)
        e.stats.transactions += 1

    def trade_lookup(self, rt: Runtime, kernel: OsKernel) -> None:
        rng = self.rng
        start = rng.randrange(max(1, self._next_trade or 1))
        self.trade.index.range_scan(start, 8, rt)
        chain = 0
        for _ in range(6):
            self.trade.read(rng.randrange(max(1, self._next_trade or 1)),
                            rt, lines=2, dep=chain)
            chain = self.trade.last_token
        rt.alu(n=260, chain=False)
        self.engine.stats.transactions += 1

    def market_feed(self, rt: Runtime, kernel: OsKernel) -> None:
        e = self.engine
        for _ in range(8):
            s = self.rng.randrange(self.securities)
            e.locks.acquire(rt, ("security", s))
            self.security.update(s, rt)
            rt.alu(n=25, chain=False)
        e.log_append(rt, 128)
        e.locks.release_all(rt)
        e.stats.transactions += 1

"""The TPC-C and TPC-E workload apps (§3.3).

Both run a commercial-DBMS-sized code footprint over the storage engine:
client requests arrive over the network (32 zero-think-time clients for
TPC-C; a local driver for TPC-E, §3.3), pass through parser/optimizer/
executor layers, and execute their transaction logic.
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.oltp.engine import StorageEngine
from repro.apps.oltp.transactions import TpccDatabase, TpceDatabase
from repro.machine.runtime import Runtime


class _DbmsApp(ServerApp):
    """Shared DBMS scaffolding: code plan + request wrapping."""

    #: (function, KB, locality, bb_mean, hot_fraction)
    CODE_PLAN: list[tuple[str, int, str, int, float]] = []
    #: (transaction name, weight) — the benchmark mix.
    TXN_MIX: list[tuple[str, float]] = []
    #: Whether each request crosses the network (TPC-C clients are remote).
    remote_clients = True

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"dbms.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.engine = StorageEngine(self.space)
        self.db = self._build_database()
        self._cdf: list[tuple[float, str]] = []
        total = sum(w for _, w in self.TXN_MIX)
        acc = 0.0
        for name, weight in self.TXN_MIX:
            acc += weight / total
            self._cdf.append((acc, name))

    def _build_database(self):
        raise NotImplementedError

    def _pick_txn(self) -> str:
        draw = self.rng.random()
        for edge, name in self._cdf:
            if draw <= edge:
                return name
        return self._cdf[-1][1]

    def warm_ranges(self):
        engine = self.engine
        ranges = [
            (engine.locks.lock_words.base, engine.locks.lock_words.nbytes),
            (engine.buffer_control.base, engine.buffer_control.nbytes),
            (engine.log_buffer, engine.log_buffer_bytes),
        ]
        # Hot tables: small ones entirely; index upper levels come along
        # via the replay.  Large tables stay cold, as on the real machine.
        for table in engine.tables.values():
            if table.rows.nbytes <= (2 << 20):
                ranges.append((table.rows.base, table.rows.nbytes))
        return ranges

    def serve(self, rt: Runtime) -> None:
        txn = self._pick_txn()
        if self.remote_clients:
            self.kernel.recv(rt, 256, sock_id=rt.tid * 37)
        with rt.frame(self.fns["net_service"]):
            rt.alu(n=30, chain=False)
        with rt.frame(self.fns["sql_parser"]):
            rt.alu(n=220, chain=False)
        with rt.frame(self.fns["optimizer"]):
            rt.alu(n=260, chain=False)
        with rt.frame(self.fns["executor"]):
            self.engine.touch_buffer_manager(rt)
            with rt.frame(self.fns["btree_code"]):
                getattr(self.db, txn)(rt, self.kernel)
        with rt.frame(self.fns["dbms_runtime"]):
            rt.alu(n=240, chain=False)
        if self.remote_clients:
            self.kernel.send(rt, 1024, sock_id=rt.tid * 37)


class TpccApp(_DbmsApp):
    """TPC-C: 40 warehouses, 32 remote zero-think-time clients (§3.3)."""

    name = "tpc-c"
    os_intensive = True

    CODE_PLAN = [
        ("net_service", 128, "scatter", 7, 0.15),
        ("sql_parser", 192, "scatter", 7, 0.12),
        ("optimizer", 288, "scatter", 7, 0.1),
        ("executor", 352, "scatter", 7, 0.1),
        ("btree_code", 224, "scatter", 7, 0.15),
        ("buffer_manager", 192, "scatter", 7, 0.15),
        ("lock_log_code", 160, "scatter", 7, 0.15),
        ("dbms_runtime", 448, "scatter", 7, 0.08),
    ]

    TXN_MIX = [
        ("new_order", 45.0),
        ("payment", 43.0),
        ("order_status", 4.0),
        ("delivery", 4.0),
        ("stock_level", 4.0),
    ]

    def _build_database(self) -> TpccDatabase:
        return TpccDatabase(self.engine, warehouses=40, seed=self.seed)


class TpceApp(_DbmsApp):
    """TPC-E 1.12-flavoured brokerage mix; local client driver (§3.3)."""

    name = "tpc-e"
    os_intensive = False
    remote_clients = False

    CODE_PLAN = [
        ("net_service", 96, "scatter", 7, 0.2),
        ("sql_parser", 224, "scatter", 7, 0.12),
        ("optimizer", 352, "scatter", 7, 0.1),
        ("executor", 416, "scatter", 8, 0.1),
        ("btree_code", 224, "scatter", 7, 0.15),
        ("buffer_manager", 192, "scatter", 7, 0.15),
        ("lock_log_code", 160, "scatter", 7, 0.15),
        ("dbms_runtime", 512, "scatter", 7, 0.08),
    ]

    TXN_MIX = [
        ("trade_order", 25.0),
        ("trade_result", 20.0),
        ("trade_lookup", 40.0),
        ("market_feed", 15.0),
    ]

    def _build_database(self) -> TpceDatabase:
        return TpceDatabase(self.engine, customers=80_000, seed=self.seed)

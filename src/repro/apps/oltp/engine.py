"""Storage engine: tables, buffer manager, lock manager, write-ahead log.

Tables pair a B+-tree primary index with fixed-stride row storage.  The
lock manager's lock words and the log buffer are the actively-shared
structures that give traditional OLTP its high read-write sharing
(Figure 6): every transaction from every server thread writes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.oltp.btree import BPlusTree
from repro.machine.address_space import AddressSpace
from repro.machine.hashing import stable_hash
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray

_LINE = 64


class Table:
    """A heap table with a primary B+-tree index."""

    def __init__(
        self,
        space: AddressSpace,
        name: str,
        capacity: int,
        row_bytes: int,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.row_bytes = row_bytes
        self.rows = SimArray(space, capacity, row_bytes)
        self.index = BPlusTree(space, name=f"{name}.pk")
        self._next_slot = 0
        self.last_token = 0  # dependence handle of the latest row access

    def insert(self, key: int, rt: Runtime | None = None, dep: int = 0) -> int:
        """Insert a row; returns its slot.  Appends wrap when full."""
        slot = self._next_slot % self.capacity
        self._next_slot += 1
        self.index.insert(key, slot, rt, dep=dep)
        if rt is not None:
            base = self.rows.addr(slot)
            for off in range(0, min(self.row_bytes, 4 * _LINE), _LINE):
                rt.store(base + off)
        return slot

    def read(self, key: int, rt: Runtime | None = None,
             lines: int | None = None, dep: int = 0) -> int | None:
        """Index lookup + row read; returns the slot or None.

        ``dep`` chains this statement behind an earlier one, as the
        executor's row buffer forces in real engines — the reason OLTP
        shows almost no memory-level parallelism (§4.2).  The token of
        the final row load is left in :attr:`last_token`."""
        slot = self.index.search(key, rt, dep=dep)
        if slot is None:
            return None
        if rt is not None:
            base = self.rows.addr(slot)  # type: ignore[arg-type]
            span = self.row_bytes if lines is None else lines * _LINE
            token = dep
            for off in range(0, min(span, self.row_bytes), _LINE):
                token = rt.load(base + off, (token,) if token else ())
            self.last_token = token
        return slot  # type: ignore[return-value]

    def update(self, key: int, rt: Runtime | None = None, dep: int = 0) -> bool:
        slot = self.index.search(key, rt, dep=dep)
        if slot is None:
            return False
        if rt is not None:
            base = self.rows.addr(slot)  # type: ignore[arg-type]
            token = rt.load(base, (dep,) if dep else ())
            rt.store(base, (token,))
            self.last_token = token
        return True


class LockManager:
    """A hash-partitioned lock table; lock words are actively shared."""

    def __init__(self, space: AddressSpace, partitions: int = 1024) -> None:
        self.partitions = partitions
        self.lock_words = SimArray(space, partitions, _LINE)
        self.acquisitions = 0
        self.held: list[int] = []

    def acquire(self, rt: Runtime, resource: object) -> None:
        """Lock acquisition: atomic read-modify-write of the lock word."""
        slot = stable_hash(resource) % self.partitions
        token = self.lock_words.read(rt, slot)
        rt.alu((token,), n=2)  # compare-and-swap
        self.lock_words.write(rt, slot, (token,))
        self.acquisitions += 1
        self.held.append(slot)

    def release_all(self, rt: Runtime) -> None:
        for slot in self.held:
            self.lock_words.write(rt, slot)
        self.held.clear()


@dataclass
class EngineStats:
    transactions: int = 0
    rows_read: int = 0
    rows_written: int = 0
    log_records: int = 0
    aborts: int = 0


class StorageEngine:
    """Tables + locks + WAL + buffer-manager bookkeeping."""

    def __init__(self, space: AddressSpace, log_buffer_bytes: int = 1 << 20) -> None:
        self.space = space
        self.tables: dict[str, Table] = {}
        self.locks = LockManager(space)
        self.log_buffer = space.alloc(log_buffer_bytes, "heap", align=_LINE)
        self.log_buffer_bytes = log_buffer_bytes
        self._log_cursor = 0
        # Buffer-manager control blocks (latches, LRU lists): shared.
        self.buffer_control = SimArray(space, 512, _LINE)
        self.stats = EngineStats()

    def create_table(self, name: str, capacity: int, row_bytes: int) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} exists")
        table = Table(self.space, name, capacity, row_bytes)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        return self.tables[name]

    def touch_buffer_manager(self, rt: Runtime) -> None:
        """Page-latch and LRU maintenance on the hot control blocks."""
        slot = self.stats.rows_read % 512
        token = self.buffer_control.read(rt, slot)
        self.buffer_control.write(rt, slot, (token,))

    def log_append(self, rt: Runtime, nbytes: int = 128) -> int:
        """Append a WAL record (sequential stores into the shared buffer)."""
        addr = self.log_buffer + (self._log_cursor % self.log_buffer_bytes)
        self._log_cursor += nbytes
        for off in range(0, min(nbytes, 2 * _LINE), _LINE):
            rt.store(addr + off)
        self.stats.log_records += 1
        return addr

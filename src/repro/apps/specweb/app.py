"""The SPECweb09 e-banking app.

Per request (72 % static / 28 % dynamic, the e-banking profile): HTTP
parse, then either a page-cache file read plus sendfile — almost
entirely kernel work — or a short FastCGI round trip into an external
PHP process (account summary pages), then the response send.  The
external FastCGI hop adds context switches and socket traffic, which is
why the OS dominates this workload's execution time (Figure 1) and
instruction misses (Figure 2's OS bars).
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.load.faban import FabanDriver
from repro.machine.runtime import Runtime

_LINE = 64


class SpecWebApp(ServerApp):
    """Nginx + external FastCGI PHP serving the e-banking mix."""

    name = "specweb09"
    os_intensive = True

    CODE_PLAN = [
        ("nginx_core", 192, "scatter", 8, 0.15),
        ("http_parser", 96, "scatter", 7, 0.2),
        ("mime_types", 48, "scatter", 9, 0.3),
        ("fastcgi_client", 96, "scatter", 8, 0.2),
        ("php_engine", 448, "scatter", 7, 0.1),
        ("ssl_stub", 64, "scatter", 8, 0.2),
        ("logging", 64, "scatter", 9, 0.25),
    ]

    REQUEST_MIX = [
        ("static_small", 38.0),  # icons, css, js
        ("static_large", 34.0),  # statements, images
        ("dynamic_page", 28.0),  # account summary, transfers
    ]

    def __init__(self, seed: int = 0, num_clients: int = 96,
                 num_files: int = 2_000) -> None:
        self.num_clients = num_clients
        self.num_files = num_files
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"specweb.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.driver = FabanDriver(self.num_clients, self.REQUEST_MIX,
                                  seed=self.seed)
        self._req_buf = self.space.alloc(4096, "heap", align=_LINE)
        self._resp_buf = self.space.alloc(32 * 1024, "heap", align=_LINE)
        self.requests_served = 0
        self.static_bytes_sent = 0

    def warm_ranges(self):
        return [(self._resp_buf, 32 * 1024)]

    def serve(self, rt: Runtime) -> None:
        session, kind = self.driver.next_request(affinity=rt.tid)
        self.kernel.recv(rt, 384, into_base=self._req_buf,
                         sock_id=session.session_id)
        with rt.frame(self.fns["nginx_core"]):
            rt.alu(n=30, chain=False)
            with rt.frame(self.fns["http_parser"]):
                token = rt.load(self._req_buf)
                rt.alu((token,), n=40, chain=False)
            with rt.frame(self.fns["mime_types"]):
                rt.alu(n=10, chain=False)
        if kind == "static_small":
            self._static(rt, session, 4 * 1024)
        elif kind == "static_large":
            self._static(rt, session, 24 * 1024)
        else:
            self._dynamic(rt, session)
        with rt.frame(self.fns["logging"]):
            rt.alu(n=12, chain=False)
            rt.store(self._resp_buf)
        self.requests_served += 1

    def _static(self, rt: Runtime, session, nbytes: int) -> None:
        """Static file: page-cache read + sendfile (kernel-dominated)."""
        file_id = session.rng.randrange(self.num_files)
        self.kernel.read_file(rt, 2_000_000 + file_id, 0, nbytes)
        # sendfile(): the NIC DMAs the payload straight from the page cache.
        self.kernel.sendfile(rt, nbytes, sock_id=session.session_id)
        self.static_bytes_sent += nbytes

    def _dynamic(self, rt: Runtime, session) -> None:
        """FastCGI round trip to the external PHP process."""
        with rt.frame(self.fns["fastcgi_client"]):
            rt.alu(n=30, chain=False)
        # Socket hop to the PHP process + context switch both ways.
        self.kernel.send(rt, 512, sock_id=session.session_id)
        self.kernel.context_switch(rt)
        with rt.frame(self.fns["php_engine"]):
            rt.alu(n=240, chain=False)
            token = rt.load(self._req_buf)
            rt.alu((token,), n=60, chain=False)
            for off in range(0, 4096, _LINE):
                rt.store(self._resp_buf + off)
        self.kernel.context_switch(rt)
        self.kernel.recv(rt, 4096, into_base=self._resp_buf,
                         sock_id=session.session_id)
        self.kernel.send(rt, 8 * 1024, payload_base=self._resp_buf,
                         sock_id=session.session_id)

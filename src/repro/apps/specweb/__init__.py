"""SPECweb09 workload (§3.3): the e-banking mix on Nginx + FastCGI PHP.

"We benchmark the e-banking workload running on the Nginx 1.0.1 web
server with an external FastCGI PHP 5.2.6 module and APC ... We disable
connection encryption (SSL)."

The traditional enterprise-web contrast case: dominated by serving
static files and a small number of dynamic scripts, with far heavier OS
involvement and lower core utilization than the modern Web Frontend
workload (§4: "a traditional enterprise web workload behaves
differently from the Web Frontend workload").
"""

from repro.apps.specweb.app import SpecWebApp

__all__ = ["SpecWebApp"]

"""The SAT Solver workload app.

A Klee-like solver process: a stream of constraint systems (random
3-SAT instances near, but below, the hardness transition) is solved one
after another, with each instance's clause database, watch arrays, and
trail allocated fresh from the heap — as a symbolic-execution engine
allocates per-query constraint sets.  Compute-heavy with almost no OS
time; its clause-database traversals produce the highest MLP of the
scale-out class (Figure 3).
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.satsolver.solver import DpllSolver, random_3sat
from repro.machine.runtime import Runtime


class SatSolverApp(ServerApp):
    """One solver process (the paper runs one instance per core)."""

    name = "sat-solver"
    os_intensive = False

    CODE_PLAN = [
        ("propagate", 48, "scatter", 11, 0.4),
        ("decide", 32, "loop", 12, 0.5),
        ("backtrack", 40, "scatter", 10, 0.3),
        ("clause_db", 64, "scatter", 9, 0.25),
        ("simplify", 48, "scatter", 9, 0.25),
        ("query_builder", 96, "scatter", 8, 0.2),
        ("expr_rewriter", 112, "scatter", 8, 0.15),
    ]

    def __init__(self, seed: int = 0, nvars: int = 600, clause_ratio: float = 4.2,
                 decisions_per_slice: int = 2) -> None:
        self.nvars = nvars
        self.nclauses = int(nvars * clause_ratio)
        self.decisions_per_slice = decisions_per_slice
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"klee.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.instances_solved = 0
        self.results: dict[str, int] = {"sat": 0, "unsat": 0, "unknown": 0}
        self._instance_seed = self.seed
        self._solver = self._new_instance()
        # Klee's dominant data footprint is not the clause database but
        # the symbolic-expression arena and query caches: AST nodes from
        # past queries plus a counterexample/cache map far larger than
        # the LLC.
        self.expr_arena_bytes = 96 << 20
        self.expr_arena = self.space.alloc(self.expr_arena_bytes, "heap", align=64)
        self._arena_cursor = 0
        from repro.machine.structures import SimHashMap
        self.query_cache = SimHashMap(self.space, nbuckets=1 << 14, node_bytes=64)
        rt0 = self.runtime(0)
        for entry in range(12_000):
            self.query_cache.put(rt0, entry, entry)
        rt0.take()  # discard setup trace
        self._query_counter = 0

    def _new_instance(self) -> DpllSolver:
        self._instance_seed += 1
        clauses = random_3sat(self.nvars, self.nclauses, self._instance_seed)
        return DpllSolver(self.nvars, clauses, space=self.space,
                          seed=self._instance_seed)

    def warm_ranges(self):
        solver = self._solver
        return [
            (solver.clause_mem.base, solver.clause_mem.nbytes),
            (solver.watch_mem.base, solver.watch_mem.nbytes),
            (solver.activity_mem.base, solver.activity_mem.nbytes),
        ]

    def serve(self, rt: Runtime) -> None:
        """Advance the current instance by a bounded decision budget."""
        solver = self._solver
        with rt.frame(self.fns["query_builder"]):
            rt.alu(n=30, chain=False)
            self._build_query_expressions(rt)
        with rt.frame(self.fns["propagate"]):
            before = solver.decisions
            status = solver.solve(
                rt, max_decisions=before + self.decisions_per_slice
            )
        with rt.frame(self.fns["expr_rewriter"]):
            rt.alu(n=60, chain=False)
            span = max(4096, min(self._arena_cursor, self.expr_arena_bytes))
            probe = (self._query_counter * 127) % max(1, span - 1024)
            rt.scan(self.expr_arena + probe, 512, work_per_line=4)
        timed_out = status == "unknown" and solver.decisions >= 3000
        if status != "unknown" or timed_out:
            # Klee imposes per-query solver timeouts; so do we.
            self.results["unknown" if timed_out else status] += 1
            self.instances_solved += 1
            with rt.frame(self.fns["simplify"]):
                rt.alu(n=60, chain=False)
            self._solver = self._new_instance()

    def _build_query_expressions(self, rt: Runtime) -> None:
        """Construct the query's AST in the expression arena and consult
        the solver's query caches (Klee's CexCache/branch cache)."""
        self._query_counter += 1
        # A handful of fresh AST nodes (cold, write-allocated).
        for _ in range(8):
            node = self.expr_arena + (self._arena_cursor % self.expr_arena_bytes)
            self._arena_cursor += 64
            rt.store(node)
        # Cache probes: pointer walks over a map that long outlives the LLC.
        for probe in range(8):
            self.query_cache.get(rt, (self._query_counter * 7 + probe) % 12_000)
        # Re-traverse a previously built expression (dependent loads).
        span = max(1, min(self._arena_cursor, self.expr_arena_bytes) // 64)
        start = (self._query_counter * 2654435761) % span
        rt.pointer_chase(
            (self.expr_arena + ((start + hop * 37) % span) * 64 for hop in range(16)),
            work_per_hop=2,
        )

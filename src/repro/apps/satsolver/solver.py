"""A complete DPLL SAT solver with watched literals.

Literals are non-zero ints (+v / -v), clauses are tuples of literals.
The solver optionally emits its memory behaviour through a
:class:`~repro.machine.runtime.Runtime`: watch-array scans are
independent sequential loads; the clause inspections they feed are
dependent loads; evaluation outcomes are data-dependent branches.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.machine.address_space import AddressSpace
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray

_LINE = 64

UNASSIGNED = 0
TRUE = 1
FALSE = -1


def random_3sat(nvars: int, nclauses: int, seed: int = 0) -> list[tuple[int, ...]]:
    """A uniformly random 3-SAT instance (distinct variables per clause)."""
    if nvars < 3:
        raise ValueError("need at least 3 variables")
    rng = random.Random(seed)
    clauses = []
    for _ in range(nclauses):
        vars_ = rng.sample(range(1, nvars + 1), 3)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in vars_))
    return clauses


def check_model(clauses: Sequence[tuple[int, ...]], model: dict[int, bool]) -> bool:
    """True iff ``model`` satisfies every clause."""
    for clause in clauses:
        if not any(model.get(abs(lit), False) == (lit > 0) for lit in clause):
            return False
    return True


class DpllSolver:
    """DPLL with two watched literals, VSIDS-ish activity, and restarts."""

    def __init__(
        self,
        nvars: int,
        clauses: Sequence[tuple[int, ...]],
        space: AddressSpace | None = None,
        seed: int = 0,
    ) -> None:
        self.nvars = nvars
        self.clauses = [tuple(c) for c in clauses]
        self.rng = random.Random(seed)
        self.assignment = [UNASSIGNED] * (nvars + 1)
        self.activity = [0.0] * (nvars + 1)
        # trail holds (literal, is_decision, tried_both)
        self.trail: list[tuple[int, bool, bool]] = []
        self.watches: dict[int, list[int]] = {}
        self._watched: list[list[int]] = []  # the two watched lits per clause
        self.propagations = 0
        self.decisions = 0
        self.conflicts = 0
        # Simulated-memory layout (present even untraced; cheap).
        self._space = space
        if space is not None:
            self.clause_mem = SimArray(space, max(1, len(self.clauses)), _LINE)
            self.watch_mem = SimArray(space, max(1, 4 * len(self.clauses) + 4), 8)
            self.trail_mem = SimArray(space, nvars + 1, 16)
            self.activity_mem = SimArray(space, nvars + 1, 8)
        self._init_watches()

    # -- setup -----------------------------------------------------------
    def _init_watches(self) -> None:
        for index, clause in enumerate(self.clauses):
            first_two = list(dict.fromkeys(clause))[:2]
            if len(first_two) == 1:
                first_two = first_two * 2
            self._watched.append(first_two)
            for lit in first_two:
                self.watches.setdefault(lit, []).append(index)

    # -- assignment helpers -------------------------------------------------
    def value(self, lit: int) -> int:
        v = self.assignment[abs(lit)]
        if v == UNASSIGNED:
            return UNASSIGNED
        return v if lit > 0 else -v

    def _assign(self, lit: int, is_decision: bool, rt: Runtime | None) -> bool:
        """Assign ``lit`` True and propagate; False on conflict."""
        self.assignment[abs(lit)] = TRUE if lit > 0 else FALSE
        self.trail.append((lit, is_decision, False))
        if rt is not None:
            self.trail_mem.write(rt, (len(self.trail) - 1) % (self.nvars + 1))
        return self._propagate(-lit, rt)

    def _propagate(self, false_lit: int, rt: Runtime | None) -> bool:
        """Watched-literal propagation of a literal that became false."""
        queue = [false_lit]
        while queue:
            lit = queue.pop()
            watch_list = self.watches.get(lit)
            if not watch_list:
                continue
            if rt is not None:
                head = rt.load(self.watch_mem.addr(abs(lit) % self.watch_mem.count))
            still_watched: list[int] = []
            for scan_pos, clause_index in enumerate(list(watch_list)):
                self.propagations += 1
                if rt is not None:
                    # Sequential scan of the watch array (independent)...
                    entry = rt.load(
                        self.watch_mem.addr((abs(lit) + scan_pos) % self.watch_mem.count)
                    )
                    # ...feeding a dependent clause-data load.
                    rt.load(self.clause_mem.addr(clause_index % self.clause_mem.count),
                            (entry,))
                    rt.alu(n=2)
                clause = self.clauses[clause_index]
                watched = self._watched[clause_index]
                other = watched[0] if watched[1] == lit else watched[1]
                if self.value(other) == TRUE:
                    still_watched.append(clause_index)
                    continue
                # Find a replacement watch.
                replacement = None
                for cand in clause:
                    if cand != lit and cand != other and self.value(cand) != FALSE:
                        replacement = cand
                        break
                if rt is not None:
                    rt.branch(replacement is not None, site="watch.replacement")
                if replacement is not None:
                    if watched[0] == lit:
                        watched[0] = replacement
                    else:
                        watched[1] = replacement
                    self.watches.setdefault(replacement, []).append(clause_index)
                    if rt is not None:
                        rt.store(self.watch_mem.addr(
                            abs(replacement) % self.watch_mem.count))
                    continue
                still_watched.append(clause_index)
                other_value = self.value(other)
                if other_value == UNASSIGNED:
                    # Unit clause: imply `other`.
                    self.assignment[abs(other)] = TRUE if other > 0 else FALSE
                    self.trail.append((other, False, False))
                    if rt is not None:
                        self.trail_mem.write(rt, abs(other) % (self.nvars + 1))
                    queue.append(-other)
                elif other_value == FALSE:
                    # Conflict: keep the unprocessed tail watched.
                    processed = scan_pos + 1
                    self.watches[lit] = still_watched + watch_list[processed:]
                    self.conflicts += 1
                    for v in (abs(l) for l in clause):
                        self.activity[v] += 1.0
                        if rt is not None:
                            rt.store(self.activity_mem.addr(v))
                    return False
            self.watches[lit] = still_watched
        return True

    # -- search -----------------------------------------------------------
    def _pick_variable(self, rt: Runtime | None) -> int:
        best, best_score = 0, -1.0
        for v in range(1, self.nvars + 1):
            if self.assignment[v] == UNASSIGNED and self.activity[v] > best_score:
                best, best_score = v, self.activity[v]
        if rt is not None:
            # The heuristic scan reads the activity array sequentially.
            rt.scan(self.activity_mem.base,
                    min(self.activity_mem.nbytes, 16 * _LINE), work_per_line=1)
        if best and self.rng.random() < 0.5:
            return -best
        return best

    def _backtrack(self, rt: Runtime | None) -> bool:
        """Undo to the most recent decision not yet tried both ways."""
        while self.trail:
            lit, is_decision, tried_both = self.trail.pop()
            self.assignment[abs(lit)] = UNASSIGNED
            if rt is not None:
                rt.store(self.trail_mem.addr(abs(lit) % (self.nvars + 1)))
            if is_decision and not tried_both:
                flipped = -lit
                self.assignment[abs(flipped)] = TRUE if flipped > 0 else FALSE
                self.trail.append((flipped, True, True))
                if not self._propagate(-flipped, rt):
                    continue_search = self._backtrack(rt)
                    if not continue_search:
                        return False
                return True
        return False  # exhausted: UNSAT

    def solve(
        self, rt: Runtime | None = None, max_decisions: int | None = None
    ) -> str:
        """Run to completion (or decision budget).

        Returns 'sat', 'unsat', or 'unknown' (budget exhausted)."""
        # Propagate initial unit clauses.
        for index, clause in enumerate(self.clauses):
            if len(set(clause)) == 1:
                lit = clause[0]
                if self.value(lit) == FALSE:
                    return "unsat"
                if self.value(lit) == UNASSIGNED:
                    if not self._assign(lit, False, rt):
                        if not self._backtrack(rt):
                            return "unsat"
        while True:
            if all(self.assignment[v] != UNASSIGNED for v in range(1, self.nvars + 1)):
                return "sat"
            lit = self._pick_variable(rt)
            if lit == 0:
                return "sat"
            self.decisions += 1
            if max_decisions is not None and self.decisions > max_decisions:
                return "unknown"
            if not self._assign(lit, True, rt):
                if not self._backtrack(rt):
                    return "unsat"

    def model(self) -> dict[int, bool]:
        return {
            v: self.assignment[v] == TRUE
            for v in range(1, self.nvars + 1)
            if self.assignment[v] != UNASSIGNED
        }

"""SAT Solver workload: a DPLL/watched-literal solver (the Klee analog).

Paper setup (§3.2): "We benchmark one instance per core of the Klee SAT
Solver, an important component of the Cloud9 parallel symbolic execution
engine."  Klee solves streams of constraint systems produced by symbolic
execution; we reproduce that as a solver process working through a
stream of generated 3-SAT instances (fixed seeds play the role of the
paper's re-used input traces, since the workload has no steady state).

The solver is complete and real — unit propagation over watched-literal
lists, activity-guided decisions, chronological backtracking with
polarity flipping — and the tests verify the models it returns satisfy
the formulas.  Its clause-database walks (sequential watch-array scans
feeding dependent clause loads) give the workload the highest MLP among
the scale-out class (Figure 3), with almost no OS involvement.
"""

from repro.apps.satsolver.solver import DpllSolver, random_3sat, check_model
from repro.apps.satsolver.app import SatSolverApp

__all__ = ["DpllSolver", "random_3sat", "check_model", "SatSolverApp"]

"""Mini server applications — the workload substrates.

Each subpackage implements a functional, scaled-down equivalent of one
of the paper's workloads (§3.2 scale-out, §3.3 traditional), written
against the traced abstract machine so that executing the application
produces the micro-op stream the simulated processor runs.

Scale-out (CloudSuite):
    kvstore      Data Serving    (Cassandra + YCSB)
    mapreduce    MapReduce       (Hadoop + Mahout Bayes classification)
    streaming    Media Streaming (Darwin Streaming Server + Faban)
    satsolver    SAT Solver      (Klee / Cloud9)
    webstack     Web Frontend    (Nginx + PHP Olio)
    websearch    Web Search      (Nutch/Lucene index serving node)

Traditional:
    oltp         TPC-C and TPC-E on a B+-tree storage engine
    webbackend   Web Backend     (MySQL behind the Web Frontend)
    specweb      SPECweb09       (e-banking, static-file dominated)
    synth        PARSEC / SPEC CINT2006 cpu- and memory-intensive proxies
"""

from repro.apps.base import ServerApp

__all__ = ["ServerApp"]

"""In-memory media library: pre-encoded files at multiple bit-rates."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.machine.address_space import AddressSpace


@dataclass(frozen=True)
class MediaFile:
    """One encoding of one video: a contiguous byte range."""

    file_id: int
    base: int
    nbytes: int
    bitrate_kbps: int

    def addr(self, offset: int) -> int:
        return self.base + (offset % self.nbytes)


class MediaLibrary:
    """A catalog of videos of varying duration and bit-rate (§3.2)."""

    def __init__(
        self,
        space: AddressSpace,
        num_files: int = 48,
        min_mb: int = 4,
        max_mb: int = 24,
        seed: int = 0,
    ) -> None:
        if num_files <= 0:
            raise ValueError("library needs at least one file")
        rng = random.Random(seed)
        self.files: list[MediaFile] = []
        for file_id in range(num_files):
            nbytes = rng.randrange(min_mb, max_mb + 1) * (1 << 20)
            bitrate = rng.choice((300, 500, 800))  # low bit-rates (§3.2)
            base = space.alloc(nbytes, "heap", align=4096)
            self.files.append(MediaFile(file_id, base, nbytes, bitrate))
        self.total_bytes = sum(f.nbytes for f in self.files)
        self._rng = rng

    def pick_popular(self, zipf_draw: int) -> MediaFile:
        """Map a popularity rank onto a file (popular files first)."""
        return self.files[zipf_draw % len(self.files)]

    def __len__(self) -> int:
        return len(self.files)

"""Media Streaming workload: a Darwin-Streaming-Server-like packetizer.

Paper setup (§3.2): "We benchmark the Darwin Streaming Server 6.0.3,
serving videos of varying duration, using the Faban driver to simulate
the clients."

The server manages hundreds of concurrent RTP sessions; each session
streams a different position of a pre-encoded media file, so even
popular content is read at per-client offsets ("the on-demand unicast
nature ... practically guarantees that the streaming server will work
on a different piece of the media file for each client", §2.2).  That
is what gives this workload the highest off-chip bandwidth of the suite
(Figure 7) and makes the L2 prefetchers counter-productive (more
concurrent streams than the stream table can track, Figure 5).  The
per-packet update of global server statistics reproduces the shared
counters the paper calls out in §4.4.
"""

from repro.apps.streaming.library import MediaLibrary, MediaFile
from repro.apps.streaming.app import MediaStreamingApp

__all__ = ["MediaLibrary", "MediaFile", "MediaStreamingApp"]

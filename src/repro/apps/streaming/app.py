"""The Media Streaming server: RTP sessions, packetizer, rate control.

One ``serve`` call advances one client session by one RTP packet:
session lookup, rate-control bookkeeping, packetization of the next
media segment (the kernel send path copies the payload out of the media
file), RTCP/timer housekeeping, and the global statistics update that
§4.4 identifies as the server's (trivially avoidable) sharing
bottleneck.
"""

from __future__ import annotations

from repro.apps.base import ServerApp
from repro.apps.streaming.library import MediaLibrary
from repro.faults.plan import FaultEvent
from repro.load.distributions import ZipfGenerator
from repro.load.faban import FabanDriver
from repro.machine.runtime import Runtime
from repro.machine.structures import SimArray

_LINE = 64
_PACKET = 1448


class MediaStreamingApp(ServerApp):
    """Darwin-like streaming server under a Faban client driver."""

    name = "media-streaming"
    os_intensive = True

    CODE_PLAN = [
        ("rtsp_parser", 160, "scatter", 7, 0.12),
        ("session_mgmt", 192, "scatter", 7, 0.12),
        ("packetizer", 176, "scatter", 8, 0.15),
        ("rtp_framer", 96, "scatter", 8, 0.2),
        ("rate_control", 128, "scatter", 8, 0.15),
        ("timer_wheel", 96, "scatter", 8, 0.2),
        ("rtcp_reports", 112, "scatter", 8, 0.15),
        ("media_cache", 144, "scatter", 7, 0.12),
        ("server_core", 224, "scatter", 7, 0.1),
    ]

    #: A streaming server's real error paths: failing sessions over to
    #: a surviving edge node, client re-buffering control, and
    #: RTCP-driven packet-loss recovery.
    FAULT_CODE_PLAN = ServerApp.FAULT_CODE_PLAN + [
        ("session_failover", 96, "scatter", 7, 0.15),
        ("rebuffer_control", 64, "scatter", 8, 0.2),
        ("loss_recovery", 72, "scatter", 8, 0.2),
    ]

    def __init__(self, seed: int = 0, num_clients: int = 180,
                 num_files: int = 48) -> None:
        self.num_clients = num_clients
        self.num_files = num_files
        super().__init__(seed)

    def setup(self) -> None:
        self.fns = {
            name: self.layout.function(
                f"darwin.{name}", kb * 1024, locality=loc,
                bb_mean=bb, hot_fraction=hot,
            )
            for name, kb, loc, bb, hot in self.CODE_PLAN
        }
        self.library = MediaLibrary(self.space, num_files=self.num_files,
                                    seed=self.seed)
        self.driver = FabanDriver(
            self.num_clients,
            [("send_packet", 95.0), ("rtcp", 3.0), ("reposition", 1.0),
             ("reconnect", 1.0)],
            seed=self.seed,
            metrics=self.service,
            retry=self.fault_policy,
        )
        popularity = ZipfGenerator(self.num_files, theta=0.8, seed=self.seed)
        self._popularity = popularity
        self.sessions_churned = 0
        # Session table: one 256-byte descriptor per client.
        self.sessions = SimArray(self.space, self.num_clients, 256)
        for session in self.driver.sessions:
            media = self.library.pick_popular(popularity.next())
            session.state["file"] = media
            session.state["offset"] = session.rng.randrange(0, media.nbytes, _LINE)
            session.state["sock"] = session.session_id
        # Global server statistics: the shared-counter bottleneck (§4.4).
        self.global_stats = self.space.alloc(4 * _LINE, "heap", align=_LINE)
        self.timer_wheel = SimArray(self.space, 4096, _LINE)
        self.packets_streamed = 0
        self.bytes_streamed = 0

    def warm_ranges(self):
        return [
            (self.sessions.base, self.sessions.nbytes),
            (self.timer_wheel.base, self.timer_wheel.nbytes),
            (self.global_stats, 4 * _LINE),
        ]

    # -- request handling --------------------------------------------------
    def serve(self, rt: Runtime) -> None:
        session, op = self.driver.next_request(affinity=rt.tid)
        if op == "send_packet":
            self._send_packet(rt, session)
        elif op == "rtcp":
            self._rtcp(rt, session)
        elif op == "reconnect":
            self._reconnect(rt, session)
        else:
            self._reposition(rt, session)

    def _send_packet(self, rt: Runtime, session) -> None:
        media = session.state["file"]
        offset = session.state["offset"]
        with rt.frame(self.fns["server_core"]):
            rt.alu(n=210, chain=False)
            with rt.frame(self.fns["session_mgmt"]):
                state = self.sessions.read_record(rt, session.session_id)
                rt.alu((state,), n=150, chain=False)
            with rt.frame(self.fns["rate_control"]):
                rt.alu((state,), n=170, chain=False)
                self.sessions.write(rt, session.session_id, (state,))
            with rt.frame(self.fns["timer_wheel"]):
                slot = (self.packets_streamed + session.session_id) % 4096
                t = self.timer_wheel.read(rt, slot)
                self.timer_wheel.write(rt, slot, (t,))
                rt.alu(n=70, chain=False)
            with rt.frame(self.fns["packetizer"]):
                rt.alu(n=230, chain=False)
                with rt.frame(self.fns["media_cache"]):
                    # Hint-read of the segment header before handing the
                    # payload range to the kernel for the copy-out.
                    rt.load(media.addr(offset))
                    rt.alu(n=90, chain=False)
            with rt.frame(self.fns["rtp_framer"]):
                rt.alu(n=120, chain=False)
        self.kernel.send(
            rt, _PACKET, payload_base=media.addr(offset),
            sock_id=session.state["sock"],
        )
        # Global packet/byte counters: every thread writes these lines.
        token = rt.load(self.global_stats)
        rt.store(self.global_stats, (token,))
        session.state["offset"] = (offset + _PACKET) % media.nbytes
        self.packets_streamed += 1
        self.bytes_streamed += _PACKET

    def _rtcp(self, rt: Runtime, session) -> None:
        with rt.frame(self.fns["rtcp_reports"]):
            rt.alu(n=80, chain=False)
            state = self.sessions.read(rt, session.session_id)
            rt.alu((state,), n=20, chain=False)
        self.kernel.recv(rt, 128, sock_id=session.state["sock"])
        self.kernel.send(rt, 128, sock_id=session.state["sock"])

    def _reconnect(self, rt: Runtime, session) -> None:
        """A client leaves and a new one takes the slot: RTSP TEARDOWN
        then DESCRIBE/SETUP/PLAY — a fresh session record and a new
        (possibly different) media file."""
        self.sessions_churned += 1
        self.kernel.recv(rt, 192, sock_id=session.state["sock"])  # TEARDOWN
        with rt.frame(self.fns["session_mgmt"]):
            rt.alu(n=60, chain=False)
            self.sessions.write(rt, session.session_id)
        # New client: DESCRIBE + SETUP + PLAY handshake.
        self.kernel.recv(rt, 512, sock_id=session.state["sock"])
        with rt.frame(self.fns["rtsp_parser"]):
            rt.alu(n=220, chain=False)
        media = self.library.pick_popular(self._popularity.next())
        session.state["file"] = media
        session.state["offset"] = 0  # new viewers start at the beginning
        with rt.frame(self.fns["session_mgmt"]):
            state = self.sessions.read_record(rt, session.session_id)
            rt.alu((state,), n=40, chain=False)
            self.sessions.write(rt, session.session_id, (state,))
        self.kernel.send(rt, 1024, sock_id=session.state["sock"])  # SDP reply

    def _reposition(self, rt: Runtime, session) -> None:
        """An RTSP PLAY/seek: re-parse the request, move the cursor."""
        self.kernel.recv(rt, 256, sock_id=session.state["sock"])
        with rt.frame(self.fns["rtsp_parser"]):
            rt.alu(n=150, chain=False)
        media = session.state["file"]
        session.state["offset"] = session.rng.randrange(0, media.nbytes, _LINE)
        with rt.frame(self.fns["session_mgmt"]):
            state = self.sessions.read(rt, session.session_id)
            self.sessions.write(rt, session.session_id, (state,))

    # -- degraded paths (active only under an attached FaultInjector) -------
    def fault_replica_crash(self, rt: Runtime, event: FaultEvent) -> None:
        """An edge node died: a slice of its sessions fail over here —
        re-read and rewrite their descriptors, and run the RTSP
        re-handshake traffic for the adopted clients."""
        fns = self._fault_fns
        adopt = min(self.num_clients, 4 + int(4 * event.severity))
        first = self.sessions_churned % self.num_clients
        with rt.frame(fns["session_failover"]):
            for index in range(adopt):
                slot = (first + index) % self.num_clients
                state = self.sessions.read_record(rt, slot)
                self.sessions.write(rt, slot, (state,))
            rt.alu(n=80, chain=False)
        self.kernel.recv(rt, 512)   # adopted client's SETUP/PLAY
        self.kernel.send(rt, 1024)  # SDP reply

    def fault_straggler(self, rt: Runtime, event: FaultEvent) -> None:
        """The disk/NIC is slow: rebuffering control recomputes every
        affected session's send rate and reprograms its timers."""
        fns = self._fault_fns
        with rt.frame(fns["rebuffer_control"]):
            rt.alu(n=60 + int(80 * event.severity), chain=False)
            slot = self.packets_streamed % 4096
            t = self.timer_wheel.read(rt, slot)
            self.timer_wheel.write(rt, slot, (t,))
        self.kernel.context_switch(rt)

    def fault_request_drop(self, rt: Runtime,
                           event: FaultEvent) -> tuple[int, bool, int]:
        """A lost RTP packet: the client's RTCP receiver report flags
        the gap and loss recovery retransmits from the media cache."""
        retries, ok, waited = super().fault_request_drop(rt, event)
        with rt.frame(self._fault_fns["loss_recovery"]):
            rt.alu(n=70, chain=False)
        self.kernel.recv(rt, 128)  # RTCP RR with the loss bitmap
        return retries, ok, waited

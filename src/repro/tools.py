"""Developer tools: trace inspection and counter dumps.

``dump_trace`` materializes a slice of a workload's micro-op stream in a
human/script-readable form — useful for understanding why a workload
behaves the way it does (which functions dominate, how dependent its
loads are, how much of the stream is OS code) without running the
simulator at all.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.core.workloads import build_app
from repro.uarch.uop import MicroOp, OpKind


@dataclass
class TraceSummary:
    """Aggregate statistics over a dumped trace slice."""

    total: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    alu: int = 0
    os_ops: int = 0
    dependent_loads: int = 0
    distinct_code_lines: int = 0
    distinct_data_lines: int = 0

    @property
    def memory_fraction(self) -> float:
        return (self.loads + self.stores) / self.total if self.total else 0.0

    @property
    def os_fraction(self) -> float:
        return self.os_ops / self.total if self.total else 0.0


_KIND_NAMES = {
    OpKind.ALU: "alu",
    OpKind.LOAD: "load",
    OpKind.STORE: "store",
    OpKind.BRANCH: "branch",
}


def format_uop(uop: MicroOp) -> str:
    """One line per micro-op: seq kind pc [addr] [deps] [os]."""
    parts = [f"{uop.seq:>8}", f"{_KIND_NAMES[OpKind(uop.kind)]:<6}",
             f"pc={uop.pc:#012x}"]
    if uop.is_memory():
        parts.append(f"addr={uop.addr:#014x}")
    if uop.deps:
        parts.append(f"deps={','.join(str(d) for d in uop.deps)}")
    if uop.kind == OpKind.BRANCH:
        parts.append("taken" if uop.taken else "not-taken")
    if uop.is_os:
        parts.append("os")
    return " ".join(parts)


def summarize(uops) -> TraceSummary:
    """Aggregate a micro-op iterable into a TraceSummary."""
    summary = TraceSummary()
    code_lines: set[int] = set()
    data_lines: set[int] = set()
    for uop in uops:
        summary.total += 1
        code_lines.add(uop.pc >> 6)
        if uop.kind == OpKind.LOAD:
            summary.loads += 1
            data_lines.add(uop.addr >> 6)
            if uop.deps:
                summary.dependent_loads += 1
        elif uop.kind == OpKind.STORE:
            summary.stores += 1
            data_lines.add(uop.addr >> 6)
        elif uop.kind == OpKind.BRANCH:
            summary.branches += 1
        else:
            summary.alu += 1
        if uop.is_os:
            summary.os_ops += 1
    summary.distinct_code_lines = len(code_lines)
    summary.distinct_data_lines = len(data_lines)
    return summary


def dump_trace(workload: str, num_uops: int = 2_000, seed: int = 7,
               include_listing: bool = True) -> tuple[str, TraceSummary]:
    """Build a workload and dump ``num_uops`` of its trace.

    Returns (text, summary); the text ends with the summary block."""
    from repro.trace.live import take_uops

    app = build_app(workload, seed=seed)
    uops = take_uops(app, 0, num_uops)
    summary = summarize(uops)
    out = io.StringIO()
    if include_listing:
        for uop in uops:
            out.write(format_uop(uop))
            out.write("\n")
    out.write(f"# workload={workload} uops={summary.total}\n")
    out.write(f"# loads={summary.loads} stores={summary.stores} "
              f"branches={summary.branches} alu={summary.alu}\n")
    out.write(f"# memory_fraction={summary.memory_fraction:.3f} "
              f"os_fraction={summary.os_fraction:.3f}\n")
    out.write(f"# dependent_loads={summary.dependent_loads} "
              f"code_lines={summary.distinct_code_lines} "
              f"data_lines={summary.distinct_data_lines}\n")
    return out.getvalue(), summary

"""repro — a reproduction of *Clearing the Clouds* (ASPLOS 2012).

The package rebuilds the paper's entire experimental apparatus in
Python:

* :mod:`repro.uarch` — a cycle-approximate simulator of the Xeon
  X5670-class server processor of Table 1, exposing the performance-
  counter surface the paper reads through VTune;
* :mod:`repro.machine` — the traced abstract machine (simulated address
  space, code layout, OS kernel) the workloads execute on;
* :mod:`repro.apps` — functional mini-implementations of all fourteen
  workloads: the six CloudSuite scale-out workloads of §3.2 and the
  traditional benchmarks of §3.3;
* :mod:`repro.load` — YCSB/Faban-style client drivers;
* :mod:`repro.core` — the characterization methodology: workload
  registry, measurement runner, analyses, and one experiment module per
  table/figure of the evaluation.

Quickstart::

    from repro import run_workload, RunConfig, analysis

    run = run_workload("data-serving", RunConfig(window_uops=50_000))
    print(analysis.ipc(run.result), analysis.instruction_mpki(run.result))

Reproduce a figure::

    from repro.core.experiments import figure1
    print(figure1.run().to_text())
"""

from repro.core import analysis
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core.runner import (
    RunConfig,
    WorkloadRun,
    run_workload,
    run_workload_chip,
    run_workload_members,
    run_workload_smt,
)
from repro.core.workloads import (
    ALL_WORKLOADS,
    REGISTRY,
    SCALE_OUT,
    TRADITIONAL,
    build_app,
    workload_names,
)
from repro.uarch import Chip, Core, MachineParams, MemoryHierarchy

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "ExecutionBreakdown",
    "compute_breakdown",
    "RunConfig",
    "WorkloadRun",
    "run_workload",
    "run_workload_chip",
    "run_workload_members",
    "run_workload_smt",
    "ALL_WORKLOADS",
    "REGISTRY",
    "SCALE_OUT",
    "TRADITIONAL",
    "build_app",
    "workload_names",
    "Chip",
    "Core",
    "MachineParams",
    "MemoryHierarchy",
    "__version__",
]

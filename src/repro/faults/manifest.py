"""Crash-safe checkpointing for long experiment sweeps.

A sweep (several workloads x several modes x a measurement window) can
take long enough that losing all progress to an interruption hurts.
:class:`SweepManifest` persists one JSON document per sweep under
``benchmarks/results/``; every completed cell is recorded with an
atomic write (temp file + ``os.replace``), so a kill at any instant
leaves either the previous or the new manifest on disk — never a torn
one.  Re-invoking the sweep skips cells the manifest already holds.

The manifest is keyed by a ``meta`` dictionary (window, seed, plan
digest, ...): if the sweep's configuration changes, the stale manifest
is discarded rather than mixed in.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile


def atomic_write_json(path: str | pathlib.Path, document: object) -> None:
    """Write ``document`` as JSON via temp file + ``os.replace``.

    A kill at any instant leaves either the previous file or the new
    one on disk — never a torn one.  Shared by the sweep manifest and
    the on-disk result store.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent),
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class SweepManifest:
    """A per-run checkpoint file mapping cell keys to row payloads."""

    FORMAT_VERSION = 1

    def __init__(self, path: str | pathlib.Path, meta: dict) -> None:
        self.path = pathlib.Path(path)
        self.meta = dict(meta)
        self.cells: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return  # missing or torn-by-older-tooling file: start fresh
        if not isinstance(raw, dict):
            return
        if raw.get("version") != self.FORMAT_VERSION:
            return
        if raw.get("meta") != self.meta:
            return  # different sweep configuration: don't mix results
        cells = raw.get("cells")
        if isinstance(cells, dict):
            self.cells = {str(k): v for k, v in cells.items()
                          if isinstance(v, dict)}

    def __contains__(self, key: str) -> bool:
        return key in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def get(self, key: str) -> dict | None:
        """The recorded payload for ``key``, or None if not yet run."""
        return self.cells.get(key)

    def put(self, key: str, payload: dict) -> None:
        """Record a completed cell and persist the manifest atomically."""
        self.cells[key] = payload
        self._flush()

    def discard(self) -> None:
        """Forget all recorded cells and remove the file (``--fresh``)."""
        self.cells = {}
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _flush(self) -> None:
        atomic_write_json(self.path, {
            "version": self.FORMAT_VERSION,
            "meta": self.meta,
            "cells": self.cells,
        })

"""Runaway-trace protection for the measurement harness.

Trace production is app-driven: a buggy serve loop (or a degraded path
gone wrong) could emit micro-ops forever, or emit nothing while the
runner waits for its window to fill.  The watchdog bounds both ways a
run can wedge, so a multi-figure sweep fails fast instead of hanging.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: A guarded trace may overshoot its budget by this factor (serve
#: quanta are coarse) plus a fixed allowance before the watchdog trips.
TRACE_SLACK = 4.0
TRACE_ALLOWANCE = 100_000

#: Consecutive serve calls that emit nothing before the app is
#: declared wedged (see ServerApp.trace).
MAX_SILENT_SERVES = 256


class RunawayTraceError(RuntimeError):
    """A workload trace blew through its micro-op budget or stalled."""


def trace_budget(window_uops: int) -> int:
    """The watchdog ceiling for a requested measurement window."""
    return int(window_uops * TRACE_SLACK) + TRACE_ALLOWANCE


def guard_trace(trace: Iterable, limit: int, label: str) -> Iterator:
    """Yield from ``trace``, raising once ``limit`` micro-ops pass.

    ``label`` names the run in the error message (workload and
    configuration), since the traceback won't.
    """
    count = 0
    for uop in trace:
        count += 1
        if count > limit:
            raise RunawayTraceError(
                f"{label}: trace exceeded the watchdog budget of "
                f"{limit} micro-ops — the serve loop is likely wedged"
            )
        yield uop

"""Deterministic fault injection for the scale-out workloads.

The paper characterizes the suite in healthy steady state only, but
real CloudSuite-style deployments spend significant cycles in error
paths: replica failures, stragglers, dropped requests, GC storms, and
memory-pressure bursts.  This package supplies the apparatus to measure
those degraded modes with the same determinism guarantees as the
healthy pipelines:

* :mod:`repro.faults.plan` — :class:`FaultPlan`/:class:`FaultEvent`, a
  frozen, hashable, seed-driven schedule of fault windows expressed in
  request counts (the only clock every workload shares);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the per-run
  interpreter of a plan: advances the request clock, reports the
  active fault kinds, and supplies the deterministic randomness the
  degraded paths draw from;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, capped exponential
  backoff with bounded jitter, timeouts, and request hedging;
* :mod:`repro.faults.metrics` — :class:`ServiceMetrics`, the
  service-level accumulator (goodput, retry rate, latency percentiles);
* :mod:`repro.faults.watchdog` — the runaway-trace budget guard;
* :mod:`repro.faults.manifest` — :class:`SweepManifest`, the crash-safe
  checkpoint layer multi-cell sweeps resume from.

See ``docs/resilience.md`` for the fault model and how degraded paths
extend the paper's Figure 1/Figure 2 arguments.
"""

from repro.faults.injector import FaultInjector
from repro.faults.manifest import SweepManifest
from repro.faults.metrics import ServiceMetrics
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.faults.watchdog import RunawayTraceError, guard_trace

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "ServiceMetrics",
    "RunawayTraceError",
    "guard_trace",
    "SweepManifest",
]

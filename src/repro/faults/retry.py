"""Shared resilience policy: backoff, timeouts, hedging.

One :class:`RetryPolicy` type serves two consumers with different
clocks:

* the **simulated clients** (YCSB/Faban drivers, the apps' fault
  handling) measure delays in *simulated work units* — the micro-ops a
  request's service path emitted — and construct integer policies;
* the **sweep supervisor** (:mod:`repro.core.supervise`) measures
  delays in *wall-clock seconds* and constructs float policies via
  :meth:`RetryPolicy.for_harness`.

The policy is unit-agnostic: it turns a failure into a bounded,
monotone, jittered backoff schedule, decides when a slow request gets a
hedged duplicate, and caps how many attempts are made before giving
up.  A policy whose ``base_delay`` and ``cap_delay`` are both ints
yields integer delays (the clients' schedules are bit-identical to the
historical behaviour); otherwise delays stay floats.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter, plus timeout/hedging.

    * attempt ``i`` (0-based retry index) backs off a nominal
      ``base_delay * multiplier**i``, hard-capped at ``cap_delay``;
    * jitter inflates each nominal delay by a factor drawn uniformly
      from ``[1, 1 + jitter]`` (never below nominal, so schedules stay
      monotone non-decreasing after the cap clamp);
    * a request slower than ``hedge_after`` gets a hedged duplicate;
      one slower than ``timeout`` counts as timed out and is retried
      (``None`` disables the deadline entirely).
    """

    base_delay: float = 1_500
    multiplier: float = 2.0
    jitter: float = 0.25
    max_retries: int = 3
    cap_delay: float = 12_000
    timeout: float | None = 24_000
    hedge_after: float = 9_000
    #: Probability a retry of a dropped request fails again (the fault
    #: window usually outlives one backoff delay).  Only meaningful for
    #: the simulated clients; the supervisor reruns real work instead.
    retry_failure_p: float = 0.3

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.cap_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= cap_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if not 0.0 <= self.retry_failure_p < 1.0:
            raise ValueError("retry_failure_p must be in [0, 1)")

    @classmethod
    def for_harness(cls, timeout: float | None = None, retries: int = 2,
                    base_delay: float = 0.5,
                    cap_delay: float = 8.0) -> "RetryPolicy":
        """A wall-clock-seconds policy for the sweep supervisor.

        ``timeout`` is the per-cell deadline in seconds (``None`` = no
        deadline); ``retries`` bounds how often a failed, crashed, or
        timed-out cell is re-executed.  Jitter is kept small — it only
        de-synchronizes respawn storms, determinism of *results* never
        depends on it.
        """
        return cls(
            base_delay=float(base_delay),
            multiplier=2.0,
            jitter=0.1,
            max_retries=retries,
            cap_delay=float(max(base_delay, cap_delay)),
            timeout=float(timeout) if timeout is not None else None,
            hedge_after=float(max(base_delay, cap_delay)),
            retry_failure_p=0.0,
        )

    def _quantize(self, value: float) -> float:
        # Integer policies (the simulated clients) keep the historical
        # truncation points so their schedules stay bit-identical.
        if isinstance(self.base_delay, int) and isinstance(self.cap_delay, int):
            return int(value)
        return value

    def schedule(self, rng: random.Random) -> list[float]:
        """The backoff delays for retries ``1..max_retries``.

        Guaranteed monotone non-decreasing, each delay within
        ``[nominal, nominal * (1 + jitter)]`` and never above
        ``cap_delay``.
        """
        delays: list[float] = []
        previous: float = 0
        for attempt in range(self.max_retries):
            nominal = min(self.cap_delay,
                          self._quantize(self.base_delay
                                         * self.multiplier ** attempt))
            jittered = min(self.cap_delay,
                           self._quantize(nominal
                                          * (1.0 + self.jitter * rng.random())))
            value = max(previous, jittered)
            delays.append(value)
            previous = value
        return delays

    def resolve_failure(self, rng: random.Random) -> tuple[int, bool, float]:
        """Play out the retry loop for one failed request.

        Returns ``(retries, succeeded, backoff_spent)``: how many
        retries were issued, whether one of them succeeded, and the
        total backoff delay spent waiting.
        """
        spent: float = 0
        for index, delay in enumerate(self.schedule(rng)):
            spent += delay
            if rng.random() >= self.retry_failure_p:
                return index + 1, True, spent
        return self.max_retries, False, spent

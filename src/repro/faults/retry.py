"""Client-side resilience policy: backoff, timeouts, hedging.

Latencies throughout are in *simulated work units* — the micro-ops a
request's service path emitted — because that is the deterministic
clock the trace-driven harness has before core timing runs.  A
:class:`RetryPolicy` turns a failure into a bounded, monotone,
jittered backoff schedule, decides when a slow request gets a hedged
duplicate, and caps how many attempts a client makes before giving up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter, plus timeout/hedging.

    * attempt ``i`` (0-based retry index) backs off a nominal
      ``base_delay * multiplier**i``, hard-capped at ``cap_delay``;
    * jitter inflates each nominal delay by a factor drawn uniformly
      from ``[1, 1 + jitter]`` (never below nominal, so schedules stay
      monotone non-decreasing after the cap clamp);
    * a request slower than ``hedge_after`` gets a hedged duplicate;
      one slower than ``timeout`` counts as timed out and is retried.
    """

    base_delay: int = 1_500
    multiplier: float = 2.0
    jitter: float = 0.25
    max_retries: int = 3
    cap_delay: int = 12_000
    timeout: int = 24_000
    hedge_after: int = 9_000
    #: Probability a retry of a dropped request fails again (the fault
    #: window usually outlives one backoff delay).
    retry_failure_p: float = 0.3

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.cap_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= cap_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 <= self.retry_failure_p < 1.0:
            raise ValueError("retry_failure_p must be in [0, 1)")

    def schedule(self, rng: random.Random) -> list[int]:
        """The backoff delays for retries ``1..max_retries``.

        Guaranteed monotone non-decreasing, each delay within
        ``[nominal, nominal * (1 + jitter)]`` and never above
        ``cap_delay``.
        """
        delays: list[int] = []
        previous = 0
        for attempt in range(self.max_retries):
            nominal = min(self.cap_delay,
                          int(self.base_delay * self.multiplier ** attempt))
            jittered = min(self.cap_delay,
                           int(nominal * (1.0 + self.jitter * rng.random())))
            value = max(previous, jittered)
            delays.append(value)
            previous = value
        return delays

    def resolve_failure(self, rng: random.Random) -> tuple[int, bool, int]:
        """Play out the retry loop for one failed request.

        Returns ``(retries, succeeded, backoff_spent)``: how many
        retries were issued, whether one of them succeeded, and the
        total backoff delay spent waiting (simulated work units).
        """
        spent = 0
        for index, delay in enumerate(self.schedule(rng)):
            spent += delay
            if rng.random() >= self.retry_failure_p:
                return index + 1, True, spent
        return self.max_retries, False, spent

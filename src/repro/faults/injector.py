"""The per-run interpreter of a :class:`~repro.faults.plan.FaultPlan`.

One injector is attached to one application instance for the lifetime
of a run (warmup included).  It owns the request clock — every serve
call ticks it — and the private RNG all degraded paths draw from, so a
``(workload, seed, plan)`` triple maps to exactly one micro-op trace.
"""

from __future__ import annotations

import random

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan


class FaultInjector:
    """Schedules fault events against a running workload.

    The injector is deliberately passive: applications ask it what is
    active (:meth:`tick`), draw randomness from it (:meth:`roll`), and
    report what they did (:meth:`count`).  All state is deterministic
    under the plan's seed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed ^ 0x0FA7157)
        self.requests_seen = 0
        #: Requests during which each kind's window was open.
        self.exposure: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        #: Degraded-path executions, by kind (apps report via count()).
        self.fired: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.dropped_requests = 0

    @property
    def enabled(self) -> bool:
        """False for empty plans: an inert injector changes nothing."""
        return not self.plan.is_empty()

    def tick(self) -> tuple[FaultEvent, ...]:
        """Advance the request clock; return the open fault windows."""
        index = self.requests_seen
        self.requests_seen += 1
        if not self.plan.events:
            return ()
        active = self.plan.active_at(index)
        for event in active:
            self.exposure[event.kind] += 1
        return active

    def roll(self, probability: float) -> bool:
        """A deterministic Bernoulli draw from the injector's RNG."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    def count(self, kind: str, dropped: bool = False) -> None:
        """Record that a degraded path of ``kind`` actually executed."""
        self.fired[kind] += 1
        if dropped:
            self.dropped_requests += 1

    def total_fired(self) -> int:
        """Degraded-path executions across all kinds."""
        return sum(self.fired.values())

"""Service-level metrics: what the clients observe end to end.

The paper's figures are all server-side microarchitectural counters;
degraded-mode characterization also needs the client's view — how many
requests succeeded (goodput), how often the client retried or hedged,
and what the latency tail looked like.  :class:`ServiceMetrics` is the
accumulator both load generators and the applications feed.
"""

from __future__ import annotations


class ServiceMetrics:
    """Accumulates per-request outcomes for one run.

    Latencies are simulated work units (micro-ops emitted on the
    request's service path, including any degraded-path work and
    backoff delays charged by the retry policy).
    """

    #: Latency samples kept before decimation kicks in.
    MAX_SAMPLES = 65_536

    def __init__(self) -> None:
        self.requests = 0
        self.successes = 0
        self.failures = 0
        self.retries = 0
        self.hedges = 0
        self.timeouts = 0
        self.drops = 0
        self._latencies: list[int] = []
        self._stride = 1
        self._skip = 0

    # -- recording ---------------------------------------------------------
    def observe(self, latency: int, ok: bool = True, retries: int = 0,
                hedged: bool = False, timed_out: bool = False,
                dropped: bool = False) -> None:
        """Record one request's end-to-end outcome."""
        self.requests += 1
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        self.retries += retries
        if hedged:
            self.hedges += 1
        if timed_out:
            self.timeouts += 1
        if dropped:
            self.drops += 1
        self._sample(latency)

    def _sample(self, latency: int) -> None:
        # Uniform decimation: keep every Nth sample once full, doubling
        # N as needed — percentile estimates stay unbiased and bounded.
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self._latencies.append(latency)
        if len(self._latencies) >= self.MAX_SAMPLES:
            self._latencies = self._latencies[::2]
            self._stride *= 2

    def merge(self, other: "ServiceMetrics") -> None:
        """Fold another accumulator into this one (multi-client runs)."""
        self.requests += other.requests
        self.successes += other.successes
        self.failures += other.failures
        self.retries += other.retries
        self.hedges += other.hedges
        self.timeouts += other.timeouts
        self.drops += other.drops
        for latency in other._latencies:
            self._sample(latency)

    # -- derived metrics ---------------------------------------------------
    def goodput(self) -> float:
        """Fraction of issued requests that ultimately succeeded."""
        return self.successes / self.requests if self.requests else 0.0

    def retry_rate(self) -> float:
        """Retries per issued request."""
        return self.retries / self.requests if self.requests else 0.0

    def percentile(self, q: float) -> int:
        """The ``q``-quantile latency (nearest-rank, ``q`` in [0, 1]).

        An out-of-range ``q`` is always a programming error and raises,
        even on an empty reservoir; an empty reservoir with a valid
        ``q`` reports 0 (no requests observed yet).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._latencies:
            return 0
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def p50(self) -> int:
        """Median latency."""
        return self.percentile(0.50)

    def p99(self) -> int:
        """Tail latency: the 99th-percentile simulated service time."""
        return self.percentile(0.99)

    def p999(self) -> int:
        """Deep tail: the 99.9th percentile, where hedging earns its
        keep (meaningful once a run observes ~1000+ requests)."""
        return self.percentile(0.999)

    def summary(self) -> dict[str, float | int]:
        """The figure-8 row payload (JSON-serializable)."""
        return {
            "requests": self.requests,
            "goodput": self.goodput(),
            "retry_rate": self.retry_rate(),
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "drops": self.drops,
            "p50": self.p50(),
            "p99": self.p99(),
            "p999": self.p999(),
        }

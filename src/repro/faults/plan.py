"""Fault schedules: what goes wrong, when, and for how long.

A :class:`FaultPlan` is a frozen, hashable value object — it can sit
inside a :class:`~repro.core.runner.RunConfig` and participate in the
measurement cache key.  Time is measured in *requests served* (the
injector's clock), the only notion of progress every workload shares;
windows therefore scale naturally with the measurement window.

Events may be one-shot (``period == 0``) or periodic (``period > 0``),
in which case the fault re-opens every ``period`` requests.  Periodic
events are what the canonical degraded plans use: they guarantee that
any measurement window, however short, observes the same *rate* of
faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: The event taxonomy (docs/resilience.md describes each mode).
FAULT_KINDS = (
    "replica-crash",
    "straggler",
    "request-drop",
    "gc-storm",
    "memory-pressure",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window.

    ``at_request`` is the request index at which the window first
    opens, ``duration`` how many requests it spans, and ``period``
    (if positive) the recurrence interval.  ``severity`` scales the
    degraded work a handler performs (drop probability, scan sizes,
    straggler inflation) and must stay in (0, 4].
    """

    kind: str
    at_request: int
    duration: int
    period: int = 0
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.at_request < 0:
            raise ValueError("at_request must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.period and self.period < self.duration:
            raise ValueError("period must be zero or >= duration")
        if not 0.0 < self.severity <= 4.0:
            raise ValueError("severity must be in (0, 4]")

    def active_at(self, request_index: int) -> bool:
        """Whether this window is open at ``request_index``."""
        if request_index < self.at_request:
            return False
        if not self.period:
            return request_index < self.at_request + self.duration
        return (request_index - self.at_request) % self.period < self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events.

    ``seed`` feeds the injector's private RNG, so two runs with the
    same plan draw identical per-request randomness (drop coin flips,
    backoff jitter) — the determinism contract the test suite enforces.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists at construction; store a hashable tuple.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The no-fault plan (a strict no-op when attached to a run)."""
        return cls()

    @classmethod
    def degraded(cls, seed: int = 0, intensity: float = 1.0) -> "FaultPlan":
        """The canonical degraded-mode plan used by the Figure 8 sweep.

        Every fault kind recurs periodically so any measurement window
        sees the same fault *rates*; ``intensity`` scales severities.
        """
        if not 0.0 < intensity <= 4.0:
            raise ValueError("intensity must be in (0, 4]")
        s = intensity
        return cls(
            events=(
                FaultEvent("replica-crash", at_request=24, duration=12,
                           period=64, severity=s),
                FaultEvent("straggler", at_request=40, duration=10,
                           period=80, severity=s),
                FaultEvent("request-drop", at_request=8, duration=16,
                           period=48, severity=s),
                FaultEvent("gc-storm", at_request=56, duration=8,
                           period=96, severity=s),
                FaultEvent("memory-pressure", at_request=72, duration=8,
                           period=128, severity=s),
            ),
            seed=seed,
        )

    @classmethod
    def generate(cls, seed: int, horizon: int = 2_000,
                 kinds: tuple[str, ...] = FAULT_KINDS,
                 events_per_kind: int = 3,
                 intensity: float = 1.0) -> "FaultPlan":
        """Draw a randomized (but seed-deterministic) schedule.

        Spreads ``events_per_kind`` one-shot windows of each kind over
        ``[0, horizon)`` requests with durations and severities drawn
        from a private RNG — the same seed always yields the same plan.
        """
        rng = random.Random(seed ^ 0xFA17)
        events = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            for _ in range(events_per_kind):
                start = rng.randrange(0, max(1, horizon))
                duration = rng.randrange(4, 24)
                severity = min(4.0, intensity * (0.5 + rng.random()))
                events.append(FaultEvent(kind, start, duration,
                                         severity=severity))
        events.sort(key=lambda e: (e.at_request, e.kind))
        return cls(events=tuple(events), seed=seed)

    def is_empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.events

    def active_at(self, request_index: int) -> tuple[FaultEvent, ...]:
        """The events whose windows are open at ``request_index``, in
        schedule order (at most one per kind — the earliest wins)."""
        seen: dict[str, FaultEvent] = {}
        for event in self.events:
            if event.kind not in seen and event.active_at(request_index):
                seen[event.kind] = event
        return tuple(seen.values())

    def describe(self) -> str:
        """One line per event, for logs and the resilience docs."""
        if not self.events:
            return "(empty plan)"
        lines = []
        for e in self.events:
            recur = f" every {e.period}" if e.period else ""
            lines.append(f"{e.kind:<16} at {e.at_request:>5} "
                         f"for {e.duration:>3} requests{recur} "
                         f"(severity {e.severity:.2f})")
        return "\n".join(lines)

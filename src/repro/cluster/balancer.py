"""Health-checked load balancing: outlier ejection and readmission.

The balancer tracks a sliding window of per-node outcomes (success,
timeout, refusal).  A node whose recent failure rate crosses the
ejection threshold is removed from routing for a cooldown; after the
cooldown it enters *half-open* state, where the next health probe (or
first routed request) is the trial — one success readmits it, one
failure re-ejects it.  This is the standard envoy/finagle outlier
pattern, here made deterministic: no wall clock, no randomized
cooldowns, every decision a pure function of the simulated-time event
sequence.
"""

from __future__ import annotations

from collections import deque

#: Outcomes required in the window before ejection can trigger —
#: protects a node from being ejected on one unlucky request.
MIN_SAMPLES = 8

#: Recent failure rate above which a node is ejected.
EJECT_THRESHOLD = 0.5


class LoadBalancer:
    """Routes requests to healthy replicas, ejecting outliers."""

    def __init__(self, node_ids: list[int], window: int = 20,
                 cooldown_us: int = 50_000) -> None:
        if window < MIN_SAMPLES:
            raise ValueError(f"window must hold at least {MIN_SAMPLES} samples")
        if cooldown_us < 1:
            raise ValueError("cooldown_us must be positive")
        self.cooldown_us = cooldown_us
        self._windows: dict[int, deque[bool]] = {
            node_id: deque(maxlen=window) for node_id in node_ids}
        #: node id -> simulated time its ejection cooldown expires.
        self._ejected_until: dict[int, int] = {}
        self.ejections = 0
        self.readmissions = 0

    # -- outcome feed ------------------------------------------------------
    def record(self, node_id: int, now: int, ok: bool) -> None:
        """Feed one request/probe outcome for ``node_id`` at ``now``."""
        window = self._windows[node_id]
        if node_id in self._ejected_until:
            if now < self._ejected_until[node_id]:
                return  # still cooling down; outcome is from an old attempt
            # Half-open: this outcome is the trial.
            if ok:
                del self._ejected_until[node_id]
                window.clear()
                window.append(True)
                self.readmissions += 1
            else:
                self._ejected_until[node_id] = now + self.cooldown_us
                self.ejections += 1
            return
        window.append(ok)
        if len(window) >= MIN_SAMPLES:
            failures = sum(1 for outcome in window if not outcome)
            if failures / len(window) > EJECT_THRESHOLD:
                self._ejected_until[node_id] = now + self.cooldown_us
                self.ejections += 1

    # -- routing -----------------------------------------------------------
    def healthy(self, node_id: int, now: int) -> bool:
        """Is ``node_id`` currently routable (not ejected or half-open)?"""
        return node_id not in self._ejected_until \
            or now >= self._ejected_until[node_id]

    def half_open(self, node_id: int, now: int) -> bool:
        """Is ``node_id`` past its cooldown, awaiting a trial outcome?"""
        return node_id in self._ejected_until \
            and now >= self._ejected_until[node_id]

    def order(self, candidates: list[int], now: int) -> list[int]:
        """Routing order: healthy replicas first (preference-list order
        preserved), ejected ones last as a quorum-of-last-resort."""
        ranked = sorted(
            range(len(candidates)),
            key=lambda i: (0 if self.healthy(candidates[i], now) else 1, i))
        return [candidates[i] for i in ranked]

    def ejected_now(self, now: int) -> list[int]:
        """Node ids currently out of rotation, ascending."""
        return sorted(node_id for node_id, until in self._ejected_until.items()
                      if now < until)

"""Fleet-level fault plans: crash, slow node, shard partition.

These are distinct from the per-node :class:`repro.faults.plan.FaultPlan`
(which degrades a single server's request stream on its own request
clock): a :class:`ClusterFaultPlan` schedules *fleet* events on the
simulated-time clock — a node process dying and later recovering, a
node running slow for a window, a shard's replicas partitioned away.
Plans are frozen values so they fingerprint via
:func:`repro.core.sweep.canonical` like every other sweep config.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CLUSTER_FAULT_KINDS = (
    "node-crash",   # target node dies at at_us, recovers duration_us later
    "slow-node",    # target node's service times inflate for duration_us
    "partition",    # the shard owning key `target` loses its replicas
)


@dataclass(frozen=True)
class ClusterFaultEvent:
    """One scheduled fleet fault.

    ``target`` is a node id for node-scoped kinds and a *key* for
    ``partition`` (the shard that owns the key is what partitions —
    this keeps the event meaningful across fleet sizes).  ``severity``
    scales the effect: the slow-node inflation factor is
    ``1 + 3 * severity``.
    """

    kind: str
    target: int
    at_us: int
    duration_us: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in CLUSTER_FAULT_KINDS:
            raise ValueError(f"unknown cluster fault kind {self.kind!r}; "
                             f"known: {', '.join(CLUSTER_FAULT_KINDS)}")
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us < 1:
            raise ValueError("duration_us must be positive")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")


@dataclass(frozen=True)
class ClusterFaultPlan:
    """A named, ordered schedule of fleet faults."""

    name: str = "none"
    events: tuple[ClusterFaultEvent, ...] = field(default_factory=tuple)

    def is_empty(self) -> bool:
        return not self.events

    # -- the figure-9 scenario constructors --------------------------------
    @classmethod
    def none(cls) -> "ClusterFaultPlan":
        """Healthy fleet: the baseline every fault column compares to."""
        return cls()

    @classmethod
    def node_crash(cls, at_us: int = 40_000,
                   duration_us: int = 120_000) -> "ClusterFaultPlan":
        """Node 0 (always a primary for some shards) dies and later
        recovers; hinted writes replay on recovery."""
        return cls(name="node-crash", events=(
            ClusterFaultEvent("node-crash", target=0, at_us=at_us,
                              duration_us=duration_us),))

    @classmethod
    def slow_node(cls, at_us: int = 40_000, duration_us: int = 120_000,
                  severity: float = 1.0) -> "ClusterFaultPlan":
        """Node 0 becomes a fleet-wide straggler (GC storm, noisy
        neighbour): every service time inflates for the window."""
        return cls(name="slow-node", events=(
            ClusterFaultEvent("slow-node", target=0, at_us=at_us,
                              duration_us=duration_us, severity=severity),))

    @classmethod
    def shard_partition(cls, key: int = 0, at_us: int = 40_000,
                        duration_us: int = 90_000) -> "ClusterFaultPlan":
        """The replicas of ``key``'s shard drop off the network and heal
        later — the scenario hinted handoff exists for."""
        return cls(name="partition", events=(
            ClusterFaultEvent("partition", target=key, at_us=at_us,
                              duration_us=duration_us),))


#: The scenario column of figure 9, by name.
CLUSTER_FAULT_PLANS = {
    "none": ClusterFaultPlan.none,
    "node-crash": ClusterFaultPlan.node_crash,
    "slow-node": ClusterFaultPlan.slow_node,
    "partition": ClusterFaultPlan.shard_partition,
}

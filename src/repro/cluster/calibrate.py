"""Calibrate fleet service costs from the microarchitectural simulator.

This is the measured half of the paper's argument applied to our own
fleet figure: instead of pricing replica requests from hand-written
tables, capture one columnar trace per (workload, op class) through
the apps' :meth:`~repro.apps.base.ServerApp.cluster_op_stream`, replay
it through the :mod:`uarch.fastpath <repro.uarch.fastpath>` timing
loop, and convert cycles at a configurable blade frequency into a
:class:`~repro.cluster.costs.ServiceCostModel` of per-op latency
quantile tables.

The whole-window cycle total is attributed back to individual requests
proportionally to their captured micro-op counts (``request_uops`` in
the trace's provenance) — an approximation that deliberately ignores
per-request IPC variation, but one that preserves the genuine
*work-mix* variance of the serve paths (key-popularity walks, query
term counts, periodic GC slices), which is where the quantile spread
comes from.  Every step is deterministic, so one calibration key yields
one byte-identical model in any process, serial or ``--jobs N``.

Calibrated models persist in the :class:`~repro.core.store.ResultStore`
under a fingerprint that folds in the machine parameters (via their
canonical digest) and :data:`~repro.cluster.costs.COST_MODEL_SCHEMA` —
changing a uarch parameter or the calibration semantics invalidates
the cache, never aliases it.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from repro.cluster.costs import (COST_MODEL_SCHEMA, OP_CLASSES, OpCost,
                                 QUANTILE_POINTS, ServiceCostModel)
from repro.uarch.params import MachineParams

__all__ = [
    "CalibrationConfig",
    "uarch_digest",
    "calibration_fingerprint",
    "calibrate",
    "static_model",
    "FLEET_WORKLOADS",
]

#: The workloads that can host a fleet replica (and therefore have a
#: cluster cost table at all).
FLEET_WORKLOADS = ("data-serving", "web-search")


@dataclass(frozen=True)
class CalibrationConfig:
    """Everything a measured cost model depends on — and nothing else.

    ``blade_freq_hz`` is the cycle-to-wall-clock conversion frequency;
    0 (the default) means "the simulated machine's own frequency"
    (``params.freq_hz``), the honest choice when the fleet is built
    from the same blades the uarch model describes.
    """

    workload: str
    params: MachineParams
    window_uops: int = 100_000
    warm_uops: int = 40_000
    seed: int = 7
    blade_freq_hz: float = 0.0

    def frequency_hz(self) -> float:
        return self.blade_freq_hz if self.blade_freq_hz > 0 \
            else self.params.freq_hz


def uarch_digest(params: MachineParams) -> str:
    """Canonical hex digest of one machine configuration.

    Embedded in every measured model (and therefore in every config
    fingerprint of a fleet cell using it), so a uarch parameter change
    invalidates cached measured-cost cells even when the resulting
    quantiles happen to coincide.
    """
    from repro.core.sweep import canonical

    text = json.dumps(canonical(params), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def calibration_fingerprint(config: CalibrationConfig) -> str:
    """The store key for one calibration; structural, like every other
    fingerprint in the harness (:func:`~repro.core.sweep.config_fingerprint`),
    with the cost-model and trace schemas folded in."""
    from repro.core.sweep import canonical
    from repro.trace.codec import TRACE_SCHEMA

    document = {
        "kind": "calibration",
        "cost_model": COST_MODEL_SCHEMA,
        "trace_schema": TRACE_SCHEMA,
        "config": canonical(config),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _quantile(sorted_values: list[float], rank: float) -> int:
    """Nearest-rank quantile, rounded to a positive integer ns."""
    n = len(sorted_values)
    index = min(n - 1, max(0, math.ceil(rank * n) - 1))
    return max(1, int(round(sorted_values[index])))


def calibrate(config: CalibrationConfig, use_store: bool = True,
              store=None) -> ServiceCostModel:
    """Derive one workload's measured cost model from uarch replay.

    Capture (or fetch) one trace per op class, replay each through the
    timing simulator at ``config.params``, convert the cycle totals to
    nanoseconds at the blade frequency, attribute them to requests
    proportionally to per-request micro-op counts, and reduce to
    nearest-rank p25/p50/p75/p95 tables.  The finished model (with
    per-op provenance) is validated and persisted in the result store
    unless ``use_store`` is false.
    """
    # Imported at call time: the cluster package must stay importable
    # without loading the trace pipeline or the persistence layer.
    from repro.core.store import ResultStore
    from repro.core.validate import validate_cost_model
    from repro.trace import pipeline
    from repro.trace.capture import TraceKey

    if config.workload not in FLEET_WORKLOADS:
        raise KeyError(
            f"workload {config.workload!r} has no cluster backend; "
            f"known: {', '.join(FLEET_WORKLOADS)}")
    fingerprint = calibration_fingerprint(config)
    if use_store:
        if store is None:
            store = ResultStore()
        cached = store.get_calibration(fingerprint)
        if cached is not None:
            return ServiceCostModel.from_doc(cached)

    frequency_mhz = config.frequency_hz() / 1e6
    digest = uarch_digest(config.params)
    ops: list[tuple[str, OpCost]] = []
    provenance: dict[str, dict] = {}
    for op in OP_CLASSES:
        key = TraceKey(
            workload=config.workload,
            seed=config.seed,
            window_uops=config.window_uops,
            warm_uops=config.warm_uops,
            op_class=op,
        )
        captured, _app = pipeline.materialize(key, use_store=use_store)
        result = pipeline.replay(captured, config.params)
        request_uops = [count for count in captured.meta["request_uops"]
                        if count > 0]
        total_uops = sum(request_uops)
        # cycles / MHz = µs; the tables are nanoseconds (one request's
        # CPU share is sub-µs, and integer-µs quantiles would collapse).
        window_ns = result.cycles * 1000.0 / frequency_mhz
        latencies = sorted(window_ns * count / total_uops
                           for count in request_uops)
        ops.append((op, OpCost(**{
            name: _quantile(latencies, rank)
            for name, rank in QUANTILE_POINTS
        })))
        provenance[op] = {
            "cycles": int(result.cycles),
            "uops": int(total_uops),
            "requests": len(request_uops),
        }
    model = ServiceCostModel(
        workload=config.workload,
        source="measured",
        ops=tuple(ops),
        uarch=digest,
        blade_mhz=frequency_mhz,
    )
    doc = model.to_doc()
    doc["provenance"] = provenance
    validate_cost_model(doc, context=f"calibration {config.workload!r}")
    if use_store:
        store.put_calibration(fingerprint, doc, validate=False)
    return model


def static_model(workload: str) -> ServiceCostModel:
    """The hand-written fallback table as a (labeled) cost model.

    This is the only place outside the app classes allowed to read
    ``CLUSTER_SERVICE_COSTS`` (the ``service-costs`` lint rule enforces
    it): the static tables survive solely as the explicit
    ``--costs=static`` escape hatch.
    """
    if workload == "data-serving":
        from repro.apps.kvstore import DataServingApp

        return ServiceCostModel.static(
            workload, DataServingApp.CLUSTER_SERVICE_COSTS)
    if workload == "web-search":
        from repro.apps.websearch import WebSearchApp

        return ServiceCostModel.static(
            workload, WebSearchApp.CLUSTER_SERVICE_COSTS)
    raise KeyError(
        f"workload {workload!r} has no cluster backend; "
        "known: data-serving, web-search")

"""Consistent-hash sharding with R-way replication.

Keys and nodes are placed on one hash ring (Dynamo/Cassandra style):
each node owns ``vnodes`` points, a key's *preference list* is the
first R distinct nodes clockwise from the key's point.  Placement
hashes go through :func:`~repro.machine.hashing.stable_hash`, so the
ring — and therefore every shard assignment in a figure — is identical
across processes and interpreters.
"""

from __future__ import annotations

from repro.machine.hashing import stable_hash


class HashRing:
    """A fixed ring of virtual node points over integer node ids."""

    def __init__(self, node_ids: list[int], vnodes: int = 48) -> None:
        if not node_ids:
            raise ValueError("a ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.node_ids = list(node_ids)
        points: list[tuple[int, int]] = []
        for node_id in self.node_ids:
            for replica in range(vnodes):
                points.append(
                    (stable_hash(("ring-point", node_id, replica)), node_id))
        # Points collide only if stable_hash collides; break ties by
        # node id so even that case stays deterministic.
        points.sort()
        self._points = points

    def _start_index(self, key: int | str) -> int:
        # repro-lint: pure -- placement must be a pure function of key and ring
        target = stable_hash(("ring-key", key))
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo % len(self._points)

    def walk(self, key: int | str):
        """Every node id, in ring order from ``key``, each once."""
        seen: dict[int, bool] = {}
        start = self._start_index(key)
        for offset in range(len(self._points)):
            node_id = self._points[(start + offset) % len(self._points)][1]
            if node_id not in seen:
                seen[node_id] = True
                yield node_id

    def preference_list(self, key: int | str, count: int) -> list[int]:
        """The first ``count`` distinct nodes clockwise from ``key``."""
        if count < 1:
            raise ValueError("count must be positive")
        nodes = []
        for node_id in self.walk(key):
            nodes.append(node_id)
            if len(nodes) == count:
                break
        return nodes

    def shard_of(self, key: int | str) -> int:
        # repro-lint: pure -- placement must be a pure function of key and ring
        """The key's home shard: the id of its primary replica."""
        return self.preference_list(key, 1)[0]

"""The fleet simulation: open-loop clients against a replicated service.

One :func:`simulate` call plays a seeded request schedule against a
fleet of :class:`~repro.cluster.node.Node` replicas behind a
health-checked :class:`~repro.cluster.balancer.LoadBalancer`:

* **reads** route down the key's preference list (healthy replicas
  first), carry a per-attempt timeout, hedge a duplicate once they
  outlive ``policy.hedge_after``, and retry on the policy's backoff
  schedule;
* **writes** run a Dynamo-style sloppy quorum: the first R available
  nodes on the ring walk take the write, substitutes durably queue a
  *hint* for each down owner, and the client acks once W = R//2+1
  replicas confirm.  Applied writes are durable (commit-log
  semantics) — a crash loses in-flight work, never applied state — so
  "no acknowledged write is ever lost" is checked against real replica
  contents at the end of the run, not asserted;
* **fleet faults** (crash/slow/partition) fire on the simulated clock;
  recovery replays hinted writes to the returning node and a periodic
  digest check read-repairs stale replicas;
* the :class:`~repro.cluster.recorder.LatencyRecorder` accounts every
  request against its *intended* (open-loop) start, so a stalled fleet
  cannot hide its own queueing delay (coordinated omission).

Everything runs on the :class:`~repro.cluster.clock.EventLoop`; the
whole run is a pure function of the config.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.balancer import LoadBalancer
from repro.cluster.backend import build_backend
from repro.cluster.clock import EventLoop
from repro.cluster.costs import ServiceCostModel
from repro.cluster.faults import ClusterFaultPlan
from repro.cluster.node import Node
from repro.cluster.recorder import LatencyRecorder
from repro.cluster.ring import HashRing
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.load.distributions import ScrambledZipf, UniformGenerator, \
    build_arrivals
from repro.machine.hashing import stable_hash


def default_cluster_policy() -> RetryPolicy:
    """The fleet clients' resilience policy, in integer microseconds."""
    return RetryPolicy(base_delay=500, multiplier=2.0, jitter=0.25,
                       max_retries=2, cap_delay=4_000, timeout=6_000,
                       hedge_after=2_500, retry_failure_p=0.3)


@dataclass(frozen=True)
class ClusterConfig:
    """One fleet simulation cell (fingerprintable via ``canonical``)."""

    workload: str = "data-serving"
    fleet: int = 4
    replication: int = 2
    requests: int = 1_600
    arrival: str = "poisson"
    mean_gap_us: int = 150
    theta: float = 0.0            # 0 = uniform keys; else scrambled Zipf
    keyspace: int = 4_096
    read_fraction: float = 0.95
    workers_per_node: int = 4
    vnodes: int = 48
    network_us: int = 120
    probe_interval_us: int = 10_000
    seed: int = 0
    fault_plan: ClusterFaultPlan = field(default_factory=ClusterFaultPlan.none)
    node_plan: FaultPlan | None = None
    policy: RetryPolicy = field(default_factory=default_cluster_policy)
    #: Where per-op service costs come from: ``"static"`` (the apps'
    #: hand-written tables) or ``"measured"`` (a calibrated model from
    #: :mod:`repro.cluster.calibrate`, carried in ``cost_model``).
    costs: str = "static"
    cost_model: ServiceCostModel | None = None

    def __post_init__(self) -> None:
        if self.fleet < 1:
            raise ValueError("fleet must be positive")
        if self.costs not in ("static", "measured"):
            raise ValueError(
                f"costs must be 'static' or 'measured', got {self.costs!r}")
        if self.costs == "measured":
            if self.cost_model is None:
                raise ValueError(
                    "costs='measured' needs a calibrated cost_model "
                    "(see repro.cluster.calibrate.calibrate)")
            if self.cost_model.source != "measured":
                raise ValueError(
                    "costs='measured' got a model whose provenance says "
                    f"{self.cost_model.source!r}")
            if self.cost_model.workload != self.workload:
                raise ValueError(
                    f"cost_model was calibrated for "
                    f"{self.cost_model.workload!r}, not {self.workload!r}")
        elif self.cost_model is not None:
            raise ValueError("costs='static' takes no cost_model; the "
                             "backend builds the labeled fallback itself")
        if not 1 <= self.replication <= self.fleet:
            raise ValueError("replication must be in [1, fleet]")
        if self.requests < 1:
            raise ValueError("requests must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.theta and not 0.0 < self.theta < 1.0:
            raise ValueError("theta must be 0 or in (0, 1)")
        if self.policy.timeout is None:
            raise ValueError("the cluster policy needs a finite timeout")

    def latency_bound(self) -> int:
        """A physical upper bound on any recorded latency: every
        request resolves (success or declared failure) within its
        attempts' timeouts plus the backoff delays between them."""
        attempts = self.policy.max_retries + 1
        return (attempts * int(self.policy.timeout)
                + self.policy.max_retries * int(self.policy.cap_delay)
                + 4 * self.network_us)


class ClusterService:
    """One fleet instance wired to a seeded event loop."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.policy = config.policy
        self.loop = EventLoop()
        self.node_ids = list(range(config.fleet))
        self.nodes = {
            node_id: Node(node_id,
                          build_backend(config.workload,
                                        model=config.cost_model,
                                        node_id=node_id, seed=config.seed),
                          workers=config.workers_per_node, seed=config.seed,
                          plan=config.node_plan)
            for node_id in self.node_ids
        }
        self.ring = HashRing(self.node_ids, vnodes=config.vnodes)
        self.balancer = LoadBalancer(self.node_ids)
        self.recorder = LatencyRecorder()
        if config.theta:
            self._keys = ScrambledZipf(config.keyspace, theta=config.theta,
                                       seed=stable_hash(("keys", config.seed)))
        else:
            self._keys = UniformGenerator(
                config.keyspace, seed=stable_hash(("keys", config.seed)))
        self._arrivals = build_arrivals(
            config.arrival, config.mean_gap_us,
            seed=stable_hash(("arrivals", config.seed)))
        #: coordinator-side version counter per key
        self._versions: dict[int, int] = {}
        #: every (key, version) the client was told is durable
        self._acked: list[tuple[int, int]] = []
        self.acked_writes = 0

    # -- request entry points ----------------------------------------------
    def _request_rng(self, rid: int) -> random.Random:
        return random.Random(stable_hash(("req", self.config.seed, rid)))

    def _start_request(self, rid: int, intended: int) -> None:
        rng = self._request_rng(rid)
        key = self._keys.next()
        is_read = rng.random() < self.config.read_fraction
        pref = self.ring.preference_list(key, self.config.replication)
        if is_read:
            state = {
                "rid": rid, "key": key, "intended": intended, "pref": pref,
                "attempts": 0, "retries": 0, "outstanding": 0,
                "hedged": False, "done": False, "timed_out": False,
                "backoffs": self.policy.schedule(rng),
            }
            self._send_read(state, self._pick_target(state))
            self.loop.after(int(self.policy.hedge_after),
                            lambda: self._hedge(state))
        else:
            self._start_write(rid, key, intended, pref)

    # -- read path ---------------------------------------------------------
    def _pick_target(self, state: dict) -> int:
        ordered = self.balancer.order(state["pref"], self.loop.now)
        return ordered[state["attempts"] % len(ordered)]

    def _send_read(self, state: dict, node_id: int) -> None:
        state["attempts"] += 1
        state["outstanding"] += 1
        attempt = {"settled": False}
        network = self.config.network_us

        def deliver() -> None:
            if state["done"] or attempt["settled"]:
                return
            node = self.nodes[node_id]
            if not node.available():
                # Connection refused: an error races back one hop.
                self.loop.after(network,
                                lambda: self._read_refused(state, attempt,
                                                           node_id))
                return
            finish = node.admit(self.loop.now, "read")
            if finish is None:
                return  # request-drop fault: silence; the timeout fires

            def respond() -> None:
                if not self.nodes[node_id].up:
                    return  # crashed mid-service: response lost in flight
                self._read_succeeded(state, attempt, node_id)

            self.loop.at(finish + network, respond)

        def expire() -> None:
            if state["done"] or attempt["settled"]:
                return
            attempt["settled"] = True
            state["outstanding"] -= 1
            state["timed_out"] = True
            self.balancer.record(node_id, self.loop.now, False)
            self._next_read_attempt(state)

        self.loop.after(network, deliver)
        self.loop.after(int(self.policy.timeout), expire)

    def _read_refused(self, state: dict, attempt: dict, node_id: int) -> None:
        if state["done"] or attempt["settled"]:
            return
        attempt["settled"] = True
        state["outstanding"] -= 1
        self.balancer.record(node_id, self.loop.now, False)
        self._next_read_attempt(state)

    def _read_succeeded(self, state: dict, attempt: dict,
                        node_id: int) -> None:
        if attempt["settled"]:
            return  # answered after its own deadline: already counted
        attempt["settled"] = True
        state["outstanding"] -= 1
        self.balancer.record(node_id, self.loop.now, True)
        if state["done"]:
            return  # the hedge's sibling already won this request
        state["done"] = True
        self.recorder.observe(state["intended"], self.loop.now, ok=True,
                              retries=state["retries"],
                              hedged=state["hedged"],
                              timed_out=state["timed_out"])
        if state["rid"] % 8 == 0 and self.config.replication > 1:
            self._digest_check(state["key"], node_id, state["pref"])

    def _next_read_attempt(self, state: dict) -> None:
        if state["done"]:
            return
        index = state["retries"]
        if index < len(state["backoffs"]):
            state["retries"] += 1
            delay = int(state["backoffs"][index])
            self.loop.after(delay, lambda: self._retry_read(state))
        elif state["outstanding"] > 0:
            # Retries are spent but an attempt is still in flight; its
            # own response or per-attempt timeout decides the request.
            return
        else:
            state["done"] = True
            self.recorder.observe(state["intended"], self.loop.now, ok=False,
                                  retries=state["retries"],
                                  hedged=state["hedged"],
                                  timed_out=state["timed_out"],
                                  dropped=not state["timed_out"])

    def _retry_read(self, state: dict) -> None:
        if state["done"]:
            return
        self._send_read(state, self._pick_target(state))

    def _hedge(self, state: dict) -> None:
        if state["done"] or state["hedged"]:
            return
        state["hedged"] = True
        self._send_read(state, self._pick_target(state))

    def _digest_check(self, key: int, responder: int,
                      pref: list[int]) -> None:
        """Compare the responder's version with the next replica's; the
        staler side is repaired in the background (read repair)."""
        partner = next((n for n in pref if n != responder), None)
        if partner is None:
            return
        a, b = self.nodes[responder], self.nodes[partner]
        va, vb = a.backend.version_of(key), b.backend.version_of(key)
        if va == vb:
            return
        stale, newer = (a, vb) if va < vb else (b, va)
        if not stale.available():
            return
        finish = stale.admit(self.loop.now, "repair")
        if finish is None:
            return

        def apply_repair() -> None:
            if stale.up:
                stale.backend.apply(key, newer)
                stale.counters.read_repairs += 1

        self.loop.at(finish, apply_repair)

    # -- write path --------------------------------------------------------
    def _start_write(self, rid: int, key: int, intended: int,
                     pref: list[int]) -> None:
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        quorum = self.config.replication // 2 + 1
        network = self.config.network_us

        # Sloppy quorum: each down owner is substituted by the next
        # available node on the ring walk, which holds a durable hint.
        extras = [n for n in self.ring.walk(key) if n not in pref]
        assignments: list[tuple[int, str, int | None]] = []
        extra_index = 0
        for owner in pref:
            if self.nodes[owner].available():
                assignments.append((owner, "update", None))
                continue
            while extra_index < len(extras) \
                    and not self.nodes[extras[extra_index]].available():
                extra_index += 1
            if extra_index < len(extras):
                assignments.append((extras[extra_index], "hint", owner))
                extra_index += 1

        state = {"acks": 0, "done": False,
                 "acked_by": {node_id: False for node_id, _, _ in assignments}}

        def make_deliver(node_id: int, op: str, owner: int | None):
            def deliver() -> None:
                node = self.nodes[node_id]
                if not node.available():
                    return  # crashed since assignment: silence
                finish = node.admit(self.loop.now, op)
                if finish is None:
                    return

                def complete() -> None:
                    node_now = self.nodes[node_id]
                    if not node_now.up:
                        return  # in-flight work died with the process
                    # The write is durable from this point on.
                    if op == "update":
                        node_now.backend.apply(key, version)
                    else:
                        node_now.backend.store_hint(owner, key, version)
                        node_now.counters.hints_stored += 1
                    self.loop.after(network, ack)

                def ack() -> None:
                    self.balancer.record(node_id, self.loop.now, True)
                    if state["done"]:
                        return
                    state["acked_by"][node_id] = True
                    state["acks"] += 1
                    if state["acks"] >= quorum:
                        state["done"] = True
                        self.acked_writes += 1
                        self._acked.append((key, version))
                        self.recorder.observe(intended, self.loop.now,
                                              ok=True)

                self.loop.at(finish, complete)

            return deliver

        for node_id, op, owner in assignments:
            self.loop.after(network, make_deliver(node_id, op, owner))

        def deadline() -> None:
            if state["done"]:
                return
            state["done"] = True
            for node_id, acked in state["acked_by"].items():
                if not acked:
                    self.balancer.record(node_id, self.loop.now, False)
            self.recorder.observe(intended, self.loop.now, ok=False,
                                  timed_out=True,
                                  dropped=not assignments)

        self.loop.after(int(self.policy.timeout), deadline)

    # -- fleet faults ------------------------------------------------------
    def _schedule_faults(self) -> None:
        for event in self.config.fault_plan.events:
            heal_at = event.at_us + event.duration_us
            if event.kind == "node-crash":
                node = self.nodes[event.target % self.config.fleet]
                self.loop.at(event.at_us, node.crash)
                self.loop.at(heal_at,
                             lambda n=node: self._recover_node(n))
            elif event.kind == "slow-node":
                node = self.nodes[event.target % self.config.fleet]
                factor = 1.0 + 3.0 * event.severity
                self.loop.at(event.at_us,
                             lambda n=node, until=heal_at, f=factor:
                             n.slow(until, f))
            elif event.kind == "partition":
                shard = self.ring.preference_list(event.target,
                                                  self.config.replication)
                self.loop.at(event.at_us,
                             lambda ids=shard: self._partition(ids, True))
                self.loop.at(heal_at,
                             lambda ids=shard: self._partition(ids, False))

    def _recover_node(self, node: Node) -> None:
        node.recover()
        self._replay_hints(node.node_id)

    def _partition(self, node_ids: list[int], isolated: bool) -> None:
        for node_id in node_ids:
            self.nodes[node_id].partition(isolated)
        if not isolated:
            for node_id in node_ids:
                self._replay_hints(node_id)

    def _replay_hints(self, node_id: int) -> None:
        """Deliver every hinted write queued for a returning node."""
        target = self.nodes[node_id]
        for holder_id in self.node_ids:
            if holder_id == node_id:
                continue
            for key, version in self.nodes[holder_id].backend \
                    .take_hints(node_id):
                target.backend.apply(key, version)
                target.counters.hints_replayed += 1

    # -- health probing ----------------------------------------------------
    def _probe(self, total: int) -> None:
        now = self.loop.now
        for node_id in self.node_ids:
            node = self.nodes[node_id]
            node.counters.probes += 1
            self.balancer.record(node_id, now, node.available())
        if self.recorder.requests < total:
            self.loop.after(self.config.probe_interval_us,
                            lambda: self._probe(total))

    # -- the run -----------------------------------------------------------
    def run(self) -> dict:
        config = self.config
        when = 0
        for rid in range(config.requests):
            when += self._arrivals.next_gap(when)
            self.loop.at(when, lambda r=rid, t=when: self._start_request(r, t))
        last_intended = when
        self._schedule_faults()
        self.loop.after(config.probe_interval_us,
                        lambda: self._probe(config.requests))
        fault_end = max(
            (e.at_us + e.duration_us for e in config.fault_plan.events),
            default=0)
        horizon = (max(last_intended, fault_end) + config.latency_bound()
                   + 2 * config.probe_interval_us + 1_000_000)
        self.loop.run(horizon=horizon)
        return self._summary(last_intended)

    def _audit(self) -> int:
        """Acked writes no replica (nor hint log) can produce anymore."""
        lost = 0
        for key, version in self._acked:
            for node in self.nodes.values():
                if node.backend.version_of(key) >= version:
                    break
                if node.backend.hinted_version_of(key) >= version:
                    break
            else:
                lost += 1
        return lost

    def _summary(self, last_intended: int) -> dict:
        config = self.config
        per_node = [self.nodes[node_id].counters.summary()
                    for node_id in self.node_ids]
        busy_total = sum(profile["busy_us"] for profile in per_node)
        hot_share = (max(profile["busy_us"] for profile in per_node)
                     / busy_total if busy_total else 0.0)
        summary = dict(self.recorder.summary())
        summary.update({
            "workload": config.workload,
            "costs": config.costs,
            "fleet": config.fleet,
            "replication": config.replication,
            "fault": config.fault_plan.name,
            "arrival": config.arrival,
            "theta": config.theta,
            "seed": config.seed,
            "acked_writes": self.acked_writes,
            "acked_lost": self._audit(),
            "ejections": self.balancer.ejections,
            "readmissions": self.balancer.readmissions,
            "hints_stored": sum(p["hints_stored"] for p in per_node),
            "hints_replayed": sum(p["hints_replayed"] for p in per_node),
            "read_repairs": sum(p["read_repairs"] for p in per_node),
            "probes": sum(p["probes"] for p in per_node),
            "hot_node_share": hot_share,
            "latency_bound": config.latency_bound(),
            "sim_us": self.loop.now,
            "events_fired": self.loop.fired,
            "last_intended_us": last_intended,
            "per_node": per_node,
        })
        return summary


def simulate(config: ClusterConfig) -> dict:
    """Run one fleet cell and return its JSON-shaped summary."""
    return ClusterService(config).run()

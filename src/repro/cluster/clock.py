"""Simulated time for the fleet layer: a deterministic event loop.

Everything in :mod:`repro.cluster` runs against *simulated
microseconds*, never the wall clock — the ``cluster-clock`` lint rule
enforces that ``time.time``/``time.monotonic``/``time.sleep`` cannot
appear anywhere in this package.  The loop is a classic discrete-event
simulator: a heap of ``(when, seq, action)`` entries where ``seq`` is a
monotonically increasing tie-breaker, so two events scheduled for the
same instant always fire in scheduling order.  Determinism therefore
holds by construction: the same seeds schedule the same events in the
same order on every interpreter.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Event:
    """A handle to one scheduled action; ``cancel()`` makes it a no-op.

    Cancellation is how request hedging discards the losing duplicate
    and how a resolved request ignores its stale timeout timers: the
    entry stays in the heap (removal would be O(n)) but the loop skips
    it when popped.
    """

    __slots__ = ("when", "seq", "action", "cancelled")

    def __init__(self, when: int, seq: int, action: Callable[[], None]):
        self.when = when
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self.action = _nothing


def _nothing() -> None:
    """The cancelled-event action (drops the original closure)."""


class EventLoop:
    """A deterministic simulated-time event loop (integer microseconds)."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self.fired = 0

    def at(self, when: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` for absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule into the past ({when} < now {self.now})")
        event = Event(int(when), self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, (event.when, event.seq, event))
        return event

    def after(self, delay: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self.now + int(delay), action)

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, until: Callable[[], bool] | None = None,
            horizon: int | None = None) -> int:
        """Drain the heap in ``(when, seq)`` order; returns final time.

        ``until`` (checked between events) stops the loop early once a
        condition holds — the service uses it to stop once every
        request has resolved, so self-rescheduling health probes do not
        spin the loop forever.  ``horizon`` is a hard runaway guard: a
        simulation that schedules past it raises instead of hanging the
        sweep (the cluster analogue of the runaway-trace watchdog).
        """
        while self._heap:
            if until is not None and until():
                break
            when, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if horizon is not None and when > horizon:
                raise RuntimeError(
                    f"simulation ran past its {horizon}us horizon "
                    f"(event at {when}us); the fleet cannot drain its "
                    "load — check arrival rate vs. service capacity")
            self.now = when
            self.fired += 1
            event.action()
        return self.now

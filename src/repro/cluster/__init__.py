"""The fault-tolerant simulated fleet (figure 9).

The paper measures one scale-out blade; this package models the *fleet*
those blades form in production: consistent-hash sharding with R-way
replication and hinted handoff, a health-checked load balancer with
outlier ejection, timeout/backoff/hedging clients, and open-loop
arrivals recorded coordinated-omission-safe — all on a deterministic
simulated-microsecond event loop (never the wall clock; the
``cluster-clock`` lint rule enforces it).
"""

from repro.cluster.balancer import LoadBalancer
from repro.cluster.backend import ReplicaBackend, build_backend
from repro.cluster.clock import Event, EventLoop
from repro.cluster.faults import (CLUSTER_FAULT_KINDS, CLUSTER_FAULT_PLANS,
                                  ClusterFaultEvent, ClusterFaultPlan)
from repro.cluster.node import Node, NodeCounters
from repro.cluster.recorder import LatencyRecorder
from repro.cluster.ring import HashRing
from repro.cluster.service import (ClusterConfig, ClusterService,
                                   default_cluster_policy, simulate)
from repro.cluster.sweep import ClusterCell, ClusterSweepEngine

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "CLUSTER_FAULT_PLANS",
    "ClusterCell",
    "ClusterConfig",
    "ClusterFaultEvent",
    "ClusterFaultPlan",
    "ClusterService",
    "ClusterSweepEngine",
    "Event",
    "EventLoop",
    "HashRing",
    "LatencyRecorder",
    "LoadBalancer",
    "Node",
    "NodeCounters",
    "ReplicaBackend",
    "build_backend",
    "default_cluster_policy",
    "simulate",
]

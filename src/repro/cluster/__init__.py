"""The fault-tolerant simulated fleet (figure 9).

The paper measures one scale-out blade; this package models the *fleet*
those blades form in production: consistent-hash sharding with R-way
replication and hinted handoff, a health-checked load balancer with
outlier ejection, timeout/backoff/hedging clients, and open-loop
arrivals recorded coordinated-omission-safe — all on a deterministic
simulated-microsecond event loop (never the wall clock; the
``cluster-clock`` lint rule enforces it).

Per-op service costs come from a :class:`ServiceCostModel`: measured
quantile tables calibrated from microarchitectural replay
(:mod:`repro.cluster.calibrate`), or the apps' hand-written tables as
the explicitly-labeled ``--costs=static`` fallback (the
``service-costs`` lint rule confines those literals to their owners).
"""

from repro.cluster.balancer import LoadBalancer
from repro.cluster.backend import ReplicaBackend, build_backend
from repro.cluster.calibrate import (CalibrationConfig, FLEET_WORKLOADS,
                                     calibrate, calibration_fingerprint,
                                     static_model, uarch_digest)
from repro.cluster.clock import Event, EventLoop
from repro.cluster.costs import (COST_MODEL_SCHEMA, OP_CLASSES, OpCost,
                                 ServiceCostModel)
from repro.cluster.faults import (CLUSTER_FAULT_KINDS, CLUSTER_FAULT_PLANS,
                                  ClusterFaultEvent, ClusterFaultPlan)
from repro.cluster.node import Node, NodeCounters
from repro.cluster.recorder import LatencyRecorder
from repro.cluster.ring import HashRing
from repro.cluster.service import (ClusterConfig, ClusterService,
                                   default_cluster_policy, simulate)
from repro.cluster.sweep import ClusterCell, ClusterSweepEngine

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "CLUSTER_FAULT_PLANS",
    "COST_MODEL_SCHEMA",
    "CalibrationConfig",
    "ClusterCell",
    "ClusterConfig",
    "ClusterFaultEvent",
    "ClusterFaultPlan",
    "ClusterService",
    "ClusterSweepEngine",
    "Event",
    "EventLoop",
    "FLEET_WORKLOADS",
    "HashRing",
    "LatencyRecorder",
    "LoadBalancer",
    "Node",
    "NodeCounters",
    "OP_CLASSES",
    "OpCost",
    "ReplicaBackend",
    "ServiceCostModel",
    "build_backend",
    "calibrate",
    "calibration_fingerprint",
    "default_cluster_policy",
    "simulate",
    "static_model",
    "uarch_digest",
]

"""One simulated fleet member: queueing, degraded modes, counters.

A :class:`Node` wraps a replica backend with the *server* concerns the
paper's single-blade model never needed: a bounded worker pool whose
queueing delay is where tail latency is born, a per-node
:class:`~repro.faults.plan.FaultPlan` interpreted on the node's own
request clock (the same plans PR 1 introduced for single-node degraded
modes), a per-node :class:`~repro.faults.metrics.ServiceMetrics`
accumulator, and liveness/reachability state driven by the cluster
fault plan (crash, slow node, partition).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.backend import ReplicaBackend
from repro.faults.metrics import ServiceMetrics
from repro.faults.plan import FaultPlan
from repro.machine.hashing import stable_hash

#: Service-time inflation per active per-node fault kind, scaled by the
#: event's severity.  ``request-drop`` is handled separately (the
#: request gets no response at all).
_INFLATION = {
    "replica-crash": 1.0,     # failure detection + handoff bookkeeping
    "straggler": 2.0,         # the slow-path request itself
    "gc-storm": 1.5,          # stop-the-world pause amortized per request
    "memory-pressure": 0.5,   # re-faulting the working set
}


@dataclass
class NodeCounters:
    """Service-level per-node counters (the fleet figure's profile)."""

    served: int = 0
    reads: int = 0
    writes: int = 0
    dropped: int = 0
    hints_stored: int = 0
    hints_replayed: int = 0
    read_repairs: int = 0
    probes: int = 0
    busy_us: int = 0
    queue_peak: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "served": self.served,
            "reads": self.reads,
            "writes": self.writes,
            "dropped": self.dropped,
            "hints_stored": self.hints_stored,
            "hints_replayed": self.hints_replayed,
            "read_repairs": self.read_repairs,
            "probes": self.probes,
            "busy_us": self.busy_us,
            "queue_peak": self.queue_peak,
        }


class Node:
    """A fleet member hosting one replica backend."""

    def __init__(self, node_id: int, backend: ReplicaBackend,
                 workers: int = 4, seed: int = 0,
                 plan: FaultPlan | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.node_id = node_id
        self.backend = backend
        self.plan = plan if plan is not None and not plan.is_empty() else None
        self.metrics = ServiceMetrics()
        self.counters = NodeCounters()
        self.up = True
        self.reachable = True
        self.slow_until = 0
        self.slow_factor = 1.0
        self._slots = [0] * workers
        self._rng = random.Random(stable_hash(("node", node_id, seed)))
        self._requests_seen = 0

    # -- cluster fault-plan hooks ------------------------------------------
    def crash(self) -> None:
        """The process dies: unreachable until :meth:`recover`; durable
        backend state (commit log) survives, in-flight work is lost."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    def partition(self, isolated: bool) -> None:
        """(Un)isolate the node from the cluster network."""
        self.reachable = not isolated

    def slow(self, until: int, factor: float) -> None:
        """Inflate every service time by ``factor`` until ``until``."""
        self.slow_until = until
        self.slow_factor = max(1.0, factor)

    def available(self) -> bool:
        return self.up and self.reachable

    # -- request service ---------------------------------------------------
    def admit(self, now: int, op: str) -> int | None:
        """Accept one request at ``now``; returns its completion time.

        The node runs a bounded worker pool: the request waits for the
        earliest-free slot, then executes for its (fault- and
        load-independent) service time — a deterministic draw from the
        backend's per-op cost model (a quantile table under
        ``--costs=measured``, the historical constant under static),
        scaled by fault inflation and node jitter.  Returns ``None``
        when a ``request-drop`` fault window swallows the request — the
        caller sees silence and must time out.
        """
        self._requests_seen += 1
        inflation = 1.0
        active = self.plan.active_at(self._requests_seen) if self.plan else ()
        for event in active:
            if event.kind == "request-drop":
                self.counters.dropped += 1
                return None
            inflation += _INFLATION[event.kind] * event.severity
        if now < self.slow_until:
            inflation *= self.slow_factor
        base = self.backend.cost(op)
        jitter = 1.0 + 0.25 * self._rng.random()
        service = max(1, int(base * inflation * jitter))
        slot = min(range(len(self._slots)), key=self._slots.__getitem__)
        start = max(now, self._slots[slot])
        finish = start + service
        self._slots[slot] = finish
        queued = sum(1 for busy_until in self._slots if busy_until > now)
        self.counters.queue_peak = max(self.counters.queue_peak, queued)
        self.counters.busy_us += service
        self.counters.served += 1
        if op == "read":
            self.counters.reads += 1
        elif op == "update":
            self.counters.writes += 1
        self.metrics.observe(finish - now, ok=True)
        return finish

"""Coordinated-omission-safe latency recording.

The classic benchmarking mistake (Tene's "coordinated omission"): a
closed-loop client that waits for each response before sending the next
request silently stops *measuring* exactly when the system stalls, so
the recorded tail misses the stall it should be dominated by.  The fix
is intended-start accounting over an open-loop arrival schedule: every
request has an arrival time fixed by the load process alone, and its
latency is ``completion - intended_start`` — queueing delay caused by a
stalled server counts against the server, not the schedule.

All samples are integer simulated microseconds and percentiles are
nearest-rank over the full (unsampled) population, so summaries are
byte-identical across processes.
"""

from __future__ import annotations


class LatencyRecorder:
    """Intended-start latency accounting for one simulated run."""

    def __init__(self) -> None:
        self.requests = 0
        self.successes = 0
        self.failures = 0
        self.retries = 0
        self.hedges = 0
        self.timeouts = 0
        self.drops = 0
        self._latencies: list[int] = []

    def observe(self, intended_us: int, completed_us: int, ok: bool,
                retries: int = 0, hedged: bool = False,
                timed_out: bool = False, dropped: bool = False) -> None:
        """Record one request against its *intended* start time."""
        if completed_us < intended_us:
            raise ValueError("completion precedes intended start")
        self.requests += 1
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        self.retries += retries
        if hedged:
            self.hedges += 1
        if timed_out:
            self.timeouts += 1
        if dropped:
            self.drops += 1
        self._latencies.append(completed_us - intended_us)

    # -- derived -----------------------------------------------------------
    def goodput(self) -> float:
        return self.successes / self.requests if self.requests else 0.0

    def percentile(self, q: float) -> int:
        """Nearest-rank quantile over every recorded request."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._latencies:
            return 0
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def p50(self) -> int:
        return self.percentile(0.50)

    def p99(self) -> int:
        return self.percentile(0.99)

    def p999(self) -> int:
        return self.percentile(0.999)

    def max_latency(self) -> int:
        return max(self._latencies) if self._latencies else 0

    def summary(self) -> dict[str, float | int]:
        return {
            "requests": self.requests,
            "successes": self.successes,
            "failures": self.failures,
            "goodput": self.goodput(),
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "drops": self.drops,
            "p50": self.p50(),
            "p99": self.p99(),
            "p999": self.p999(),
            "max": self.max_latency(),
        }

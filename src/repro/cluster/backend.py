"""Per-node application replicas the fleet layer hosts.

A backend is the *state machine* side of an app instance: it holds the
replica's durable contents (what survives a process crash, as a real
commit log would provide) and prices each request class in simulated
microseconds.  Prices come from a
:class:`~repro.cluster.costs.ServiceCostModel` — either the measured
tables :mod:`repro.cluster.calibrate` derives from microarchitectural
replay, or the apps' hand-written static tables as an explicitly
labeled fallback — so the fleet model and the uarch model describe the
same software *at the same speed*.  :meth:`ReplicaBackend.cost` turns
each request into a deterministic draw from the model's quantile
table, seeded via ``stable_hash`` so serial and ``--jobs N`` runs see
identical service times.

The versioned write state is what makes the fleet's headline invariant
*checkable* rather than asserted: every quorum-acknowledged write must
still be readable from some replica (or hint log) after the fault plan
has done its worst.
"""

from __future__ import annotations

import random

from repro.cluster.costs import (NS_PER_US, OP_CLASSES, ServiceCostModel,
                                 unknown_op_error)
from repro.machine.hashing import stable_hash

__all__ = ["ReplicaBackend", "build_backend"]


class ReplicaBackend:
    """A versioned key-value replica pricing ops from a cost model."""

    def __init__(self, model: ServiceCostModel, node_id: int = 0,
                 seed: int = 0) -> None:
        self.model = model
        # The cost stream gets its own generator, distinct from the
        # node's jitter stream: a static (degenerate-quantile) model
        # must reproduce the historical constant costs without
        # perturbing any other draw sequence in the simulation.
        self._rng = random.Random(
            stable_hash(("backend", node_id, seed, model.source)))
        #: key -> highest applied write version (durable).
        self.versions: dict[int, int] = {}
        #: intended-owner node id -> [(key, version), ...] hinted writes
        #: held for a replica that was down when the write arrived.
        self.hints: dict[int, list[tuple[int, int]]] = {}
        #: key -> every hinted version held for it, across owners; kept
        #: in lockstep with ``hints`` so the read-repair digest check is
        #: one dict probe instead of a scan of every owner's hint list.
        self._hints_by_key: dict[int, list[int]] = {}

    def cost(self, op: str) -> int:
        """The uncontended service cost of one ``op``, in microseconds.

        A deterministic sample from the model's per-op quantile table
        (a static model degenerates to the old constant).  Unknown ops
        are a validation error naming the known classes.

        The model samples in nanoseconds; the event loop runs on
        integer microseconds, so the draw is floored to 1µs — the loop
        tick — on the way out.  Static tables (µs times 1000) convert
        back exactly.
        """
        if op not in OP_CLASSES:
            raise unknown_op_error(op, OP_CLASSES)
        sampled_ns = self.model.sample(op, self._rng.random())
        return max(1, int(round(sampled_ns / NS_PER_US)))

    # -- replica state -----------------------------------------------------
    def apply(self, key: int, version: int) -> None:
        """Apply one write (idempotent; newest version wins)."""
        if version > self.versions.get(key, 0):
            self.versions[key] = version

    def version_of(self, key: int) -> int:
        """The replica's applied version for ``key`` (0 = never seen)."""
        return self.versions.get(key, 0)

    def store_hint(self, owner: int, key: int, version: int) -> None:
        """Durably queue a write intended for the down node ``owner``."""
        self.hints.setdefault(owner, []).append((key, version))
        self._hints_by_key.setdefault(key, []).append(version)

    def take_hints(self, owner: int) -> list[tuple[int, int]]:
        """Remove and return every hint held for ``owner``."""
        taken = self.hints.pop(owner, [])
        for key, version in taken:
            held = self._hints_by_key[key]
            held.remove(version)
            if not held:
                del self._hints_by_key[key]
        return taken

    def hinted_version_of(self, key: int) -> int:
        """The highest version held for ``key`` in this hint log."""
        return max(self._hints_by_key.get(key, ()), default=0)


def build_backend(workload: str, model: ServiceCostModel | None = None,
                  node_id: int = 0, seed: int = 0) -> ReplicaBackend:
    """A replica backend for one of the fleet-capable workloads.

    Without an explicit ``model`` this falls back to the workload's
    static hand-written cost table (labeled as such in the model's
    provenance); pass a measured model from
    :func:`repro.cluster.calibrate.calibrate` to price requests from
    uarch replay instead.
    """
    if model is None:
        from repro.cluster.calibrate import static_model

        model = static_model(workload)
    elif model.workload != workload:
        raise ValueError(
            f"cost model was calibrated for {model.workload!r}, "
            f"not {workload!r}")
    return ReplicaBackend(model, node_id=node_id, seed=seed)

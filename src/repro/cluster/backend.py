"""Per-node application replicas the fleet layer hosts.

A backend is the *state machine* side of an app instance: it holds the
replica's durable contents (what survives a process crash, as a real
commit log would provide) and prices each request class in simulated
microseconds.  The costs come straight from the application classes —
``DataServingApp.CLUSTER_SERVICE_COSTS`` / ``WebSearchApp
.CLUSTER_SERVICE_COSTS`` — so the fleet model and the
microarchitectural model describe the same software.

The versioned write state is what makes the fleet's headline invariant
*checkable* rather than asserted: every quorum-acknowledged write must
still be readable from some replica (or hint log) after the fault plan
has done its worst.
"""

from __future__ import annotations


class ReplicaBackend:
    """A versioned key-value replica with per-op service costs."""

    def __init__(self, costs: dict[str, int]) -> None:
        for op in ("read", "update", "hint", "repair", "probe"):
            if costs.get(op, 0) <= 0:
                raise ValueError(f"backend needs a positive cost for {op!r}")
        self._costs = dict(costs)
        #: key -> highest applied write version (durable).
        self.versions: dict[int, int] = {}
        #: intended-owner node id -> [(key, version), ...] hinted writes
        #: held for a replica that was down when the write arrived.
        self.hints: dict[int, list[tuple[int, int]]] = {}

    def cost(self, op: str) -> int:
        """The uncontended service cost of one ``op``, in microseconds."""
        return self._costs[op]

    # -- replica state -----------------------------------------------------
    def apply(self, key: int, version: int) -> None:
        """Apply one write (idempotent; newest version wins)."""
        if version > self.versions.get(key, 0):
            self.versions[key] = version

    def version_of(self, key: int) -> int:
        """The replica's applied version for ``key`` (0 = never seen)."""
        return self.versions.get(key, 0)

    def store_hint(self, owner: int, key: int, version: int) -> None:
        """Durably queue a write intended for the down node ``owner``."""
        self.hints.setdefault(owner, []).append((key, version))

    def take_hints(self, owner: int) -> list[tuple[int, int]]:
        """Remove and return every hint held for ``owner``."""
        return self.hints.pop(owner, [])

    def hinted_version_of(self, key: int) -> int:
        """The highest version held for ``key`` in this hint log."""
        best = 0
        for pending in self.hints.values():
            for hint_key, version in pending:
                if hint_key == key and version > best:
                    best = version
        return best


def build_backend(workload: str) -> ReplicaBackend:
    """A replica backend for one of the fleet-capable workloads."""
    if workload == "data-serving":
        from repro.apps.kvstore import DataServingApp

        return ReplicaBackend(DataServingApp.CLUSTER_SERVICE_COSTS)
    if workload == "web-search":
        from repro.apps.websearch import WebSearchApp

        return ReplicaBackend(WebSearchApp.CLUSTER_SERVICE_COSTS)
    raise KeyError(
        f"workload {workload!r} has no cluster backend; "
        "known: data-serving, web-search")

"""Fleet cells under the supervised sweep machinery.

The supervisor, checkpoint journal, and result store were built
payload-agnostic (a cell is ``(index, cell, fingerprint)``, a journal
entry an opaque list), so the fleet layer rides the same rails as the
microarchitectural sweeps: crash-isolated parallel workers, per-cell
deadlines and retries, resumable checkpoints, validation gating every
payload, and cell-order merging so ``--jobs N`` is byte-identical to a
serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.service import ClusterConfig, simulate
from repro.core.sweep import config_fingerprint


@dataclass(frozen=True)
class ClusterCell:
    """One declarative fleet measurement (kind is always ``cluster``)."""

    name: str
    config: ClusterConfig
    kind: str = field(default="cluster", init=False)

    def fingerprint(self) -> str:
        return config_fingerprint(self.kind, self.name, self.config)


def _cluster_cell_worker(task: tuple[ClusterCell, bool]) -> list[dict]:
    """Pool worker: simulate one fleet cell, return its summary list.

    The summary is already JSON-shaped, so unlike the runner cells no
    decode step is needed on the supervising side.
    """
    cell, _use_cache = task  # fleet cells have no in-process LRU
    return [simulate(cell.config)]


class ClusterSweepEngine:
    """The fleet counterpart of :class:`~repro.core.sweep.SweepEngine`.

    Same knobs, same guarantees; results are summary-dict lists (one
    summary per cell) instead of ``WorkloadRun`` lists.
    """

    def __init__(self, jobs: int = 1, use_cache: bool = True,
                 store=None, retry=None, checkpoint_dir=None,
                 resume: bool = False, worker=None) -> None:
        from repro.faults.retry import RetryPolicy

        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.use_cache = use_cache
        self.store = store
        self.retry = retry if retry is not None else RetryPolicy.for_harness()
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.worker = worker if worker is not None else _cluster_cell_worker

    def run(self, cells: Sequence[ClusterCell]) -> list[list[dict]]:
        from repro.core.supervise import (SweepCellError, SweepCheckpoint,
                                          SweepSupervisor, run_serial)
        from repro.core.validate import (ValidationError,
                                         validate_cluster_summaries)

        fingerprints = [cell.fingerprint() for cell in cells]
        checkpoint = None
        if self.checkpoint_dir is not None:
            checkpoint = SweepCheckpoint(self.checkpoint_dir, fingerprints,
                                         resume=self.resume)
        results: list[list[dict] | None] = [None] * len(cells)
        pending: list[tuple[int, ClusterCell, str]] = []
        for index, (cell, fingerprint) in enumerate(zip(cells, fingerprints)):
            hit = None
            if self.store is not None and self.use_cache:
                hit = self.store.get_cluster(fingerprint)
            if hit is None and checkpoint is not None:
                hit = self._from_checkpoint(checkpoint, cell, fingerprint)
            if hit is not None:
                results[index] = hit
            else:
                pending.append((index, cell, fingerprint))

        def accept(index: int, cell: ClusterCell, fingerprint: str,
                   summaries: list[dict]) -> None:
            if not isinstance(summaries, list):
                raise ValidationError(
                    f"cell {cell.kind}:{cell.name}",
                    [f"worker payload is not a list: {summaries!r}"])
            validate_cluster_summaries(
                summaries, context=f"cell {cell.kind}:{cell.name}")
            if checkpoint is not None:
                checkpoint.put(fingerprint, summaries)
            if self.store is not None and self.use_cache:
                self.store.put_cluster(fingerprint, summaries,
                                       validate=False)
            results[index] = summaries

        failures: list[dict] = []
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                supervisor = SweepSupervisor(self.worker, self.jobs,
                                             self.retry,
                                             use_cache=self.use_cache)
                failures = supervisor.run(pending, accept)
            else:
                failures = run_serial(
                    pending,
                    lambda cell: self.worker((cell, self.use_cache)),
                    self.retry, accept)
        if failures:
            raise SweepCellError(failures)
        if checkpoint is not None:
            checkpoint.complete()
        return results  # type: ignore[return-value]

    def _from_checkpoint(self, checkpoint, cell: ClusterCell,
                         fingerprint: str) -> list[dict] | None:
        """A journaled cell's summaries, re-validated before reuse."""
        from repro.core.validate import (ValidationError,
                                         validate_cluster_summaries)

        payload = checkpoint.get(fingerprint)
        if payload is None:
            return None
        try:
            validate_cluster_summaries(
                payload, context=f"checkpoint {cell.kind}:{cell.name}")
        except ValidationError:
            return None  # torn or stale journal entry: recompute
        if self.store is not None and self.use_cache:
            self.store.put_cluster(fingerprint, payload, validate=False)
        return payload

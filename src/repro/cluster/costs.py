"""Per-op service-cost models the fleet layer prices requests from.

A :class:`ServiceCostModel` is a table of per-op-class latency
*quantiles* (p25/p50/p75/p95, simulated **nanoseconds**) plus provenance:
where the numbers came from (``static`` hand-written tables or
``measured`` microarchitectural replay), which machine configuration
produced them (the canonical ``uarch`` digest), and at what blade
frequency cycles were converted.  :meth:`ServiceCostModel.sample` is
the single point where a backend turns a uniform draw into a service
time — an inverse-CDF walk over the quantile table, so a fleet run
exercises a latency *distribution* rather than a scalar mean (what a
tail-latency model actually needs), while a static model degenerates to
the old constant per-op cost.

Tables are stored in nanoseconds because one replica request's CPU
time on the simulated blade is sub-microsecond: integer-µs tables
would collapse every measured quantile to 1.  The event loop still
runs on integer microseconds; :meth:`ReplicaBackend.cost
<repro.cluster.backend.ReplicaBackend.cost>` converts a sampled
nanosecond latency back with :data:`NS_PER_US` (static tables, written
in µs, convert exactly both ways).

:data:`OP_CLASSES` is the one authoritative op-class list; the backend
constructor, the calibration layer, and validation all consult it, and
an unknown op is a :class:`~repro.core.validate.ValidationError` naming
the known set instead of a bare ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sweep import COST_MODEL_SCHEMA

__all__ = [
    "OP_CLASSES",
    "COST_MODEL_SCHEMA",
    "NS_PER_US",
    "QUANTILE_POINTS",
    "OpCost",
    "ServiceCostModel",
    "unknown_op_error",
]

#: Cost tables are nanoseconds; the event loop is microseconds.
NS_PER_US = 1000

#: The request classes a replica backend serves, in canonical order.
#: This tuple is the *only* authoritative op-class list — everything
#: else (backends, calibration, validation, the apps' handler tables)
#: derives from it or is checked against it.
OP_CLASSES = ("read", "update", "hint", "repair", "probe")

#: The quantile grid every cost table carries: (field name, rank).
QUANTILE_POINTS = (("p25", 0.25), ("p50", 0.50),
                   ("p75", 0.75), ("p95", 0.95))


def unknown_op_error(op: str, known) -> "Exception":
    """The validation error for an op class outside ``known``."""
    # Imported lazily: core.validate pulls in the uarch counter model,
    # which this leaf module must not load just to define a table.
    from repro.core.validate import ValidationError

    return ValidationError(
        "service cost model",
        [f"unknown op class {op!r}; known: {', '.join(known)}"])


@dataclass(frozen=True)
class OpCost:
    """One op class's latency quantiles (simulated nanoseconds)."""

    p25: int
    p50: int
    p75: int
    p95: int

    def __post_init__(self) -> None:
        for name, _rank in QUANTILE_POINTS:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name} must be an integer, got {value!r}")
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not self.p25 <= self.p50 <= self.p75 <= self.p95:
            raise ValueError(
                f"quantiles must be monotone: p25 {self.p25} <= p50 "
                f"{self.p50} <= p75 {self.p75} <= p95 {self.p95}")

    @classmethod
    def flat(cls, cost: int) -> "OpCost":
        """A degenerate table: every quantile equals ``cost``.

        This is what a static hand-written cost becomes, so sampling a
        static model returns exactly the historical constant.
        """
        return cls(p25=cost, p50=cost, p75=cost, p95=cost)

    def sample(self, u: float) -> int:
        """The latency at rank ``u`` in [0, 1): inverse-CDF over the
        quantile grid, piecewise-linear between points and clamped to
        p25/p95 at the tails (the table carries no information beyond
        them, so the model deliberately does not extrapolate)."""
        points = [(rank, getattr(self, name))
                  for name, rank in QUANTILE_POINTS]
        if u <= points[0][0]:
            return points[0][1]
        for (lo_rank, lo), (hi_rank, hi) in zip(points, points[1:]):
            if u <= hi_rank:
                span = hi_rank - lo_rank
                return int(round(lo + (hi - lo) * (u - lo_rank) / span))
        return points[-1][1]


@dataclass(frozen=True)
class ServiceCostModel:
    """Per-op quantile cost tables with calibration provenance.

    ``source`` is ``"static"`` (hand-written app tables, degenerate
    quantiles) or ``"measured"`` (derived from uarch replay by
    :mod:`repro.cluster.calibrate`); measured models carry the machine
    configuration's canonical digest in ``uarch`` and the cycle
    conversion frequency in ``blade_mhz``, so a fingerprint over a
    config embedding this model changes whenever the uarch model does.
    """

    workload: str
    source: str
    ops: tuple[tuple[str, OpCost], ...]
    uarch: str = ""
    blade_mhz: float = 0.0
    schema: int = field(default=COST_MODEL_SCHEMA)

    def __post_init__(self) -> None:
        if self.source not in ("static", "measured"):
            raise ValueError(f"source must be 'static' or 'measured', "
                             f"got {self.source!r}")
        names = tuple(name for name, _cost in self.ops)
        if names != OP_CLASSES:
            raise ValueError(
                f"ops must cover exactly {OP_CLASSES} in order, "
                f"got {names}")
        if self.source == "measured":
            if not self.uarch:
                raise ValueError("a measured model needs its uarch digest")
            if self.blade_mhz <= 0:
                raise ValueError("a measured model needs a positive "
                                 "blade frequency")

    def cost_table(self) -> dict[str, OpCost]:
        return dict(self.ops)

    def sample(self, op: str, u: float) -> int:
        """The service time of one ``op`` at rank ``u``, in ns."""
        for name, cost in self.ops:
            if name == op:
                return cost.sample(u)
        raise unknown_op_error(op, OP_CLASSES)

    # -- persistence --------------------------------------------------------
    def to_doc(self) -> dict:
        """The JSON document shape the result store persists."""
        return {
            "workload": self.workload,
            "source": self.source,
            "schema": self.schema,
            "uarch": self.uarch,
            "blade_mhz": self.blade_mhz,
            "ops": {
                name: {q: getattr(cost, q)
                       for q, _rank in QUANTILE_POINTS}
                for name, cost in self.ops
            },
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ServiceCostModel":
        """Rebuild a model from :meth:`to_doc` output (provenance keys
        beyond the model fields are ignored)."""
        ops = tuple(
            (name, OpCost(**{q: int(doc["ops"][name][q])
                             for q, _rank in QUANTILE_POINTS}))
            for name in OP_CLASSES
        )
        return cls(workload=doc["workload"], source=doc["source"],
                   ops=ops, uarch=doc.get("uarch", ""),
                   blade_mhz=float(doc.get("blade_mhz", 0.0)))

    @classmethod
    def static(cls, workload: str, costs_us: dict[str, int]
               ) -> "ServiceCostModel":
        """A static model from a hand-written per-op cost table.

        The app tables are written in microseconds (they predate the
        calibration layer); they convert exactly to the model's
        nanosecond unit and back, so sampling a static model still
        reproduces the historical constants on the event loop.
        """
        missing = [op for op in OP_CLASSES if costs_us.get(op, 0) <= 0]
        if missing:
            raise ValueError(
                f"static cost table for {workload!r} needs a positive "
                f"cost for: {', '.join(missing)}")
        extra = sorted(set(costs_us) - set(OP_CLASSES))
        if extra:
            raise unknown_op_error(extra[0], OP_CLASSES)
        ops = tuple((op, OpCost.flat(int(costs_us[op]) * NS_PER_US))
                    for op in OP_CLASSES)
        return cls(workload=workload, source="static", ops=ops)

"""Command-line interface: ``python -m repro <command>``.

Commands:

    list                      list the registered workloads
    run <workload> [N]        characterize one workload (N window micro-ops)
    trace <workload> [N]      dump N micro-ops of a workload's trace
    table1                    print Table 1
    figure1 .. figure7        regenerate one figure's table
    faults [workload...]      healthy vs. degraded-mode table (Figure 8)
    ablations                 run the §4-implications ablations
    verify                    check every paper claim against fresh runs
    all                       regenerate every table and figure

Options:

    --window N    measurement window in micro-ops   (default 80000)
    --warm N      functional-warming replay budget  (default window/3)
    --seed N      deterministic run seed            (default 7)
    --bars        render figures as ASCII bar charts instead of tables
    --fresh       discard the faults sweep manifest before running
"""

from __future__ import annotations

import sys

from repro.core.runner import RunConfig

#: Flags that consume the following token as an integer value.
_VALUE_FLAGS = ("--window", "--warm", "--seed")
#: Boolean switches.
_SWITCH_FLAGS = ("--bars", "--fresh")


def _usage_error(message: str) -> None:
    """Print a one-line usage error and exit with status 2."""
    print(f"error: {message}", file=sys.stderr)
    print("try `python -m repro help` for usage", file=sys.stderr)
    raise SystemExit(2)


def _parse_config(args: list[str]) -> tuple[list[str], RunConfig, bool, bool]:
    """Split ``args`` into (commands, config, bars, fresh).

    Malformed flag values and unknown ``--flags`` are usage errors:
    they print a diagnostic and exit with status 2 rather than leaking
    a raw ``StopIteration``/``ValueError`` traceback.
    """
    values = {"--window": 80_000, "--warm": None, "--seed": 7}
    switches = {name: False for name in _SWITCH_FLAGS}
    rest: list[str] = []
    it = iter(args)
    for arg in it:
        if arg in _VALUE_FLAGS:
            raw = next(it, None)
            if raw is None:
                _usage_error(f"{arg} requires an integer value")
            try:
                values[arg] = int(raw)
            except ValueError:
                _usage_error(f"{arg} requires an integer value, got {raw!r}")
        elif arg in _SWITCH_FLAGS:
            switches[arg] = True
        elif arg.startswith("-") and arg not in ("-h", "--help"):
            _usage_error(f"unknown flag {arg!r}")
        else:
            rest.append(arg)
    window = values["--window"]
    warm = values["--warm"]
    config = RunConfig(window_uops=window,
                       warm_uops=warm if warm is not None else window // 3,
                       seed=values["--seed"])
    return rest, config, switches["--bars"], switches["--fresh"]


def _run_figure(name: str, config: RunConfig, bars: bool = False) -> None:
    from repro.core.experiments import ALL_EXPERIMENTS

    module = ALL_EXPERIMENTS[name]
    table = module.run(config)
    if bars and name != "table1":
        label = table.columns[0]
        numeric = [c for c in table.columns[1:]
                   if all(isinstance(r.get(c), (int, float))
                          for r in table.rows)]
        print(table.to_bars(label, numeric[:2]))
    else:
        print(table.to_text())


def _run_workload_command(args: list[str], config: RunConfig) -> None:
    from repro.core import analysis
    from repro.core.breakdown import compute_breakdown
    from repro.core.runner import run_workload

    if not args:
        print("usage: python -m repro run <workload> [--window N]")
        raise SystemExit(2)
    run = run_workload(args[0], config)
    r = run.result
    b = compute_breakdown(r)
    print(f"{args[0]}: IPC={analysis.ipc(r):.2f} MLP={r.mlp:.2f} "
          f"stalled={b.stalled:.0%} memory={b.memory:.0%} "
          f"L1I-MPKI={analysis.instruction_mpki(r):.1f} "
          f"bw={run.bandwidth_utilization():.1%}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch a CLI command; returns the exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    args, config, bars, fresh = _parse_config(argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    command = args[0]
    if command == "list":
        from repro.core.workloads import REGISTRY

        try:
            for name, spec in sorted(REGISTRY.items()):
                print(f"{name:<18} {spec.group:<10} {spec.display_name}")
        except BrokenPipeError:  # piped into head etc.
            pass
        return 0
    if command == "run":
        _run_workload_command(args[1:], config)
        return 0
    if command == "trace":
        from repro.tools import dump_trace

        if len(args) < 2:
            print("usage: python -m repro trace <workload> [N]")
            return 2
        count = int(args[2]) if len(args) > 2 else 200
        text, _summary = dump_trace(args[1], count)
        try:
            print(text, end="")
        except BrokenPipeError:
            pass
        return 0
    if command == "faults":
        from repro.core.experiments import figure8_faults

        workloads = args[1:] or None
        try:
            table = figure8_faults.run(config, workloads=workloads,
                                       fresh=fresh)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(table.to_text())
        return 0
    if command == "verify":
        from repro.core.paper import verify

        report = verify(config)
        print(report.to_text())
        return 0 if all(row["OK"] == "yes" for row in report.rows) else 1
    if command == "ablations":
        from repro.core.experiments import ablations

        for experiment in (ablations.narrow_cores, ablations.window_size,
                           ablations.llc_latency):
            print(experiment(config).to_text())
            print()
        return 0
    if command == "all":
        from repro.core.experiments import ALL_EXPERIMENTS

        for name in ALL_EXPERIMENTS:
            _run_figure(name, config, bars)
            print()
        return 0
    from repro.core.experiments import ALL_EXPERIMENTS

    if command in ALL_EXPERIMENTS:
        _run_figure(command, config, bars)
        return 0
    print(f"unknown command {command!r}; try `python -m repro help`")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands:

    list                      list the registered workloads
    run <workload> [N]        characterize one workload (N window micro-ops)
    trace <workload> [N]      dump N micro-ops of a workload's trace
    trace capture <workload>  capture a workload's trace into the store
    trace ls                  list the captured traces in the store
    trace rm <prefix|all>     remove captured traces by fingerprint prefix
    trace stats               trace-store totals and pipeline taps
    table1                    print Table 1
    figure1 .. figure7        regenerate one figure's table
    figure9                   fleet tail-latency table (see `cluster`)
    faults [workload...]      healthy vs. degraded-mode table (Figure 8)
    cluster [workload]        simulated-fleet sweep (Figure 9): replicated
                              sharding, health-checked balancing, hedged
                              requests, CO-safe tail latency
    cluster calibrate [workload]
                              derive per-op service-cost quantiles from
                              uarch replay (both fleet workloads when
                              no workload is named)
    ablations                 run the §4-implications ablations
    verify                    check every paper claim against fresh runs
    all                       regenerate every table and figure
    cache [stats|clear]       inspect or empty the on-disk result store
    doctor [--check]          scan/validate the store; quarantine defects
    lint [paths...]           static determinism & invariant linter
                              (own flags; see `python -m repro lint -h`)

Options:

    --window N    measurement window in micro-ops   (default 80000)
    --warm N      functional-warming replay budget  (default window/3)
    --seed N      deterministic run seed            (default 7)
    --jobs N      worker processes for figure sweeps (default 1)
    --timeout S   per-cell wall-clock deadline in seconds (default none)
    --retries N   re-executions of a failed/crashed/timed-out cell
                  before the sweep reports it (default 2)
    --resume      rerun only the cells missing from an interrupted
                  sweep's checkpoint journal
    --fleet N     cluster/figure9: sweep only this fleet size
    --replication R  cluster/figure9: replicas per shard (default 2)
    --costs M     cluster/figure9: service-cost source — static
                  (hand-written tables, the default), measured
                  (uarch-replay-calibrated quantile tables), or delta
                  (both, with a static-vs-measured comparison table)
    --no-cache    bypass the in-process and on-disk result caches
    --bars        render figures as ASCII bar charts instead of tables
    --fresh       discard the faults sweep manifest before running
    --check       doctor only: report defects without quarantining

Figure sweeps persist results under ``~/.cache/repro/`` (override with
``REPRO_CACHE_DIR``), keyed by a full-configuration fingerprint, so
regenerating a figure is incremental across invocations.  Sweeps run
supervised: a crashed or hung worker costs only the cells in flight,
completed cells are journaled crash-safely (``--resume`` picks an
interrupted sweep back up), and every result is validated against
physical invariants before it reaches the store or a figure —
``doctor`` audits the store the same way.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

from repro.core.runner import RunConfig

#: Flags that consume the following token as an integer value.
_VALUE_FLAGS = ("--window", "--warm", "--seed", "--jobs", "--retries",
                "--fleet", "--replication")
#: Flags that consume the following token as a float value.
_FLOAT_FLAGS = ("--timeout",)
#: Boolean switches.
_SWITCH_FLAGS = ("--bars", "--fresh", "--no-cache", "--resume", "--check")
#: Flags that consume the following token from a fixed choice set.
_CHOICE_FLAGS = {"--costs": ("static", "measured", "delta")}


@dataclass
class CliOptions:
    """Parsed switches that tune *how* a command runs."""

    bars: bool = False
    fresh: bool = False
    jobs: int = 1
    no_cache: bool = False
    timeout: float | None = None
    retries: int = 2
    resume: bool = False
    check: bool = False
    fleet: int | None = None
    replication: int = 2
    costs: str = "static"


def _usage_error(message: str) -> None:
    """Print a one-line usage error and exit with status 2."""
    print(f"error: {message}", file=sys.stderr)
    print("try `python -m repro help` for usage", file=sys.stderr)
    raise SystemExit(2)


def _parse_config(args: list[str]) -> tuple[list[str], RunConfig, CliOptions]:
    """Split ``args`` into (commands, config, options).

    Malformed flag values and unknown ``--flags`` are usage errors:
    they print a diagnostic and exit with status 2 rather than leaking
    a raw ``StopIteration``/``ValueError`` traceback.
    """
    values = {"--window": 80_000, "--warm": None, "--seed": 7, "--jobs": 1,
              "--retries": 2, "--fleet": None, "--replication": 2}
    floats: dict[str, float | None] = {"--timeout": None}
    choices = {"--costs": "static"}
    switches = {name: False for name in _SWITCH_FLAGS}
    rest: list[str] = []
    it = iter(args)
    for arg in it:
        if arg in _CHOICE_FLAGS or \
                ("=" in arg and arg.split("=", 1)[0] in _CHOICE_FLAGS):
            if "=" in arg:
                name, raw = arg.split("=", 1)
            else:
                name, raw = arg, next(it, None)
            allowed = _CHOICE_FLAGS[name]
            if raw is None or raw not in allowed:
                _usage_error(f"{name} requires one of "
                             f"{', '.join(allowed)}; got {raw!r}")
            choices[name] = raw
        elif arg in _VALUE_FLAGS:
            raw = next(it, None)
            if raw is None:
                _usage_error(f"{arg} requires an integer value")
            try:
                values[arg] = int(raw)
            except ValueError:
                _usage_error(f"{arg} requires an integer value, got {raw!r}")
        elif arg in _FLOAT_FLAGS:
            raw = next(it, None)
            if raw is None:
                _usage_error(f"{arg} requires a numeric value")
            try:
                floats[arg] = float(raw)
            except ValueError:
                _usage_error(f"{arg} requires a numeric value, got {raw!r}")
        elif arg in _SWITCH_FLAGS:
            switches[arg] = True
        elif arg.startswith("-") and arg not in ("-h", "--help"):
            _usage_error(f"unknown flag {arg!r}")
        else:
            rest.append(arg)
    if values["--jobs"] < 1:
        _usage_error(f"--jobs must be >= 1, got {values['--jobs']}")
    if values["--retries"] < 0:
        _usage_error(f"--retries must be >= 0, got {values['--retries']}")
    timeout = floats["--timeout"]
    if timeout is not None and timeout <= 0:
        _usage_error(f"--timeout must be positive, got {timeout:g}")
    if values["--fleet"] is not None and values["--fleet"] < 1:
        _usage_error(f"--fleet must be >= 1, got {values['--fleet']}")
    if values["--replication"] < 1:
        _usage_error(
            f"--replication must be >= 1, got {values['--replication']}")
    window = values["--window"]
    warm = values["--warm"]
    config = RunConfig(window_uops=window,
                       warm_uops=warm if warm is not None else window // 3,
                       seed=values["--seed"])
    options = CliOptions(bars=switches["--bars"], fresh=switches["--fresh"],
                         jobs=values["--jobs"],
                         no_cache=switches["--no-cache"],
                         timeout=timeout, retries=values["--retries"],
                         resume=switches["--resume"],
                         check=switches["--check"],
                         fleet=values["--fleet"],
                         replication=values["--replication"],
                         costs=choices["--costs"])
    return rest, config, options


def _build_engine(options: CliOptions):
    """The sweep engine the figure commands share: supervised and
    parallel when asked, backed by the persistent store unless
    ``--no-cache`` (the crash-safe checkpoint journal is kept either
    way, so ``--resume`` works even for uncached sweeps)."""
    from repro.core.store import ResultStore, default_cache_dir
    from repro.core.sweep import SweepEngine
    from repro.faults.retry import RetryPolicy

    store = None if options.no_cache else ResultStore()
    policy = RetryPolicy.for_harness(timeout=options.timeout,
                                     retries=options.retries)
    return SweepEngine(jobs=options.jobs, use_cache=not options.no_cache,
                       store=store, retry=policy,
                       checkpoint_dir=default_cache_dir() / "checkpoints",
                       resume=options.resume)


def _run_figure(name: str, config: RunConfig, options: CliOptions,
                engine=None) -> None:
    from repro.core.experiments import ALL_EXPERIMENTS

    module = ALL_EXPERIMENTS[name]
    table = module.run(config, engine=engine or _build_engine(options))
    if options.bars and name != "table1":
        label = table.columns[0]
        numeric = [c for c in table.columns[1:]
                   if all(isinstance(r.get(c), (int, float))
                          for r in table.rows)]
        print(table.to_bars(label, numeric[:2]))
    else:
        print(table.to_text())
    _report_trace_taps()


def _report_trace_taps() -> None:
    """One trace-pipeline progress line per sweep, on stderr.

    Stderr keeps figure tables byte-comparable across invocations with
    different cache temperatures (CI diffs captured stdout).
    """
    from repro.trace.pipeline import TAPS

    if TAPS.captures or TAPS.replays or TAPS.store_hits:
        print(TAPS.summary(), file=sys.stderr)


def _run_workload_command(args: list[str], config: RunConfig) -> None:
    from repro.core import analysis
    from repro.core.breakdown import compute_breakdown
    from repro.core.runner import run_workload

    if not args:
        print("usage: python -m repro run <workload> [--window N]")
        raise SystemExit(2)
    try:
        run = run_workload(args[0], config)
    except KeyError as exc:
        _usage_error(str(exc.args[0]))
    r = run.result
    b = compute_breakdown(r)
    print(f"{args[0]}: IPC={analysis.ipc(r):.2f} MLP={r.mlp:.2f} "
          f"stalled={b.stalled:.0%} memory={b.memory:.0%} "
          f"L1I-MPKI={analysis.instruction_mpki(r):.1f} "
          f"bw={run.bandwidth_utilization():.1%}")


def _cache_command(args: list[str]) -> int:
    from repro.core.store import ResultStore

    store = ResultStore()
    action = args[0] if args else "stats"
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.directory}")
        return 0
    if action != "stats":
        _usage_error(f"unknown cache action {action!r}; "
                     "expected 'stats' or 'clear'")
    stats = store.stats()
    print(f"store:   {stats['path']}")
    print(f"entries: {stats['entries']}")
    print(f"bytes:   {stats['bytes']}")
    if stats["corrupt_entries"]:
        print(f"corrupt: {stats['corrupt_entries']} quarantined document(s) "
              "(see `python -m repro doctor`)")
    if stats["stale_versions"]:
        print(f"stale:   {', '.join(stats['stale_versions'])} "
              "(older schema versions; safe to delete)")
    return 0


def _doctor_command(options: CliOptions) -> int:
    """Scan and validate the result *and* trace stores.

    Exit status 0 means every document and trace container is healthy;
    1 means defects were found (and, unless ``--check``, moved into
    ``corrupt/``).
    """
    from repro.core.store import ResultStore, default_cache_dir
    from repro.trace.store import TraceStore

    store = ResultStore()
    report = store.doctor(repair=not options.check)
    print(f"store:     {report['path']}")
    print(f"scanned:   {report['scanned']}")
    print(f"healthy:   {report['healthy']}")
    verb = "quarantined" if report["repaired"] else "defective"
    print(f"{verb}: {len(report['defects'])}")
    for fingerprint, reason in report["defects"]:
        print(f"  {fingerprint[:16]}…: {reason}")
    if report["corrupt_entries"]:
        print(f"corrupt/:  {report['corrupt_entries']} document(s) "
              f"under {store.corrupt_directory}")
    if report["stale_versions"]:
        print(f"stale:     {', '.join(report['stale_versions'])} "
              "(older schema versions; safe to delete)")
    trace_store = TraceStore()
    trace_report = trace_store.doctor(repair=not options.check)
    print(f"traces:    {trace_report['path']}")
    print(f"scanned:   {trace_report['scanned']}")
    print(f"healthy:   {trace_report['healthy']}")
    print(f"{verb}: {len(trace_report['defects'])}")
    for fingerprint, reason in trace_report["defects"]:
        print(f"  {fingerprint[:16]}…: {reason}")
    if trace_report["corrupt_entries"]:
        print(f"corrupt/:  {trace_report['corrupt_entries']} container(s) "
              f"under {trace_store.corrupt_directory}")
    if trace_report["stale_versions"]:
        print(f"stale:     {', '.join(trace_report['stale_versions'])} "
              "(older trace schemas; safe to delete)")
    journals = sorted((default_cache_dir() / "checkpoints")
                      .glob("sweep-*.json"))
    if journals:
        print(f"journals:  {len(journals)} interrupted sweep(s) can be "
              "picked up with --resume")
    return 1 if report["defects"] or trace_report["defects"] else 0


def _trace_dump(args: list[str]) -> int:
    """``trace <workload> [N]`` — the legacy listing dump."""
    from repro.tools import dump_trace

    count = 200
    if len(args) > 1:
        try:
            count = int(args[1])
        except ValueError:
            _usage_error(f"trace count must be an integer, got {args[1]!r}")
    try:
        text, _summary = dump_trace(args[0], count)
    except KeyError as exc:
        _usage_error(str(exc.args[0]))
    try:
        print(text, end="")
    except BrokenPipeError:
        pass
    return 0


def _trace_command(args: list[str], config: RunConfig,
                   options: CliOptions) -> int:
    """Dispatch the ``trace`` subcommands (see the module doc)."""
    from repro.trace.pipeline import TAPS, materialize
    from repro.trace.capture import TraceKey
    from repro.trace.store import TraceStore

    if not args:
        print("usage: python -m repro trace "
              "<workload> [N] | capture <workload> | ls | rm <prefix|all> "
              "| stats")
        return 2
    action = args[0]
    if action == "capture":
        if len(args) < 2:
            _usage_error("trace capture requires a workload name")
        key = TraceKey.from_config(args[1], config)
        try:
            captured, _app = materialize(key,
                                         use_store=not options.no_cache)
        except KeyError as exc:
            _usage_error(str(exc.args[0]))
        source = "store hit" if TAPS.store_hits else "captured"
        print(f"{source}: {captured.label} "
              f"fingerprint={captured.fingerprint[:16]}… "
              f"uops={captured.total_uops()} bytes={captured.nbytes()}")
        print(TAPS.summary())
        return 0
    if action == "ls":
        store = TraceStore()
        entries = store.entries()
        for entry in entries:
            meta = entry["meta"]
            print(f"{entry['fingerprint'][:16]}  {entry['label']:<24} "
                  f"window={meta.get('window_uops', '?'):<7} "
                  f"seed={meta.get('seed', '?'):<3} "
                  f"uops={entry['uops']:<8} bytes={entry['bytes']}")
        print(f"{len(entries)} trace(s) in {store.directory}")
        return 0
    if action == "rm":
        if len(args) < 2:
            _usage_error("trace rm requires a fingerprint prefix or 'all'")
        store = TraceStore()
        prefix = "" if args[1] == "all" else args[1]
        removed = store.remove(prefix)
        print(f"removed {removed} trace(s) from {store.directory}")
        return 0
    if action == "stats":
        stats = TraceStore().stats()
        print(f"store:   {stats['path']}")
        print(f"entries: {stats['entries']}")
        print(f"bytes:   {stats['bytes']}")
        if stats["corrupt_entries"]:
            print(f"corrupt: {stats['corrupt_entries']} quarantined "
                  "container(s) (see `python -m repro doctor`)")
        if stats["stale_versions"]:
            print(f"stale:   {', '.join(stats['stale_versions'])} "
                  "(older trace schemas; safe to delete)")
        print(TAPS.summary())
        return 0
    return _trace_dump(args)


def _calibrate_command(args: list[str], config: RunConfig,
                       options: CliOptions) -> int:
    """``cluster calibrate [workload]`` — print measured cost tables.

    Calibrates every fleet workload when none is named; each model is
    derived from uarch replay of the per-op-class traces and persisted
    in the result store (unless ``--no-cache``).
    """
    from repro.cluster.calibrate import (CalibrationConfig, FLEET_WORKLOADS,
                                         calibrate)
    from repro.cluster.costs import QUANTILE_POINTS

    workloads = args or list(FLEET_WORKLOADS)
    for workload in workloads:
        calibration = CalibrationConfig(
            workload=workload, params=config.params,
            window_uops=config.window_uops, warm_uops=config.warm_uops,
            seed=config.seed)
        try:
            model = calibrate(calibration,
                              use_store=not options.no_cache)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"{workload}: measured service costs (ns) at "
              f"{model.blade_mhz:.0f} MHz, uarch {model.uarch[:16]}…")
        header = "  ".join(f"{name:>6}" for name, _rank in QUANTILE_POINTS)
        print(f"  {'op':<8}{header}")
        for op, cost in model.ops:
            row = "  ".join(f"{getattr(cost, name):>6}"
                            for name, _rank in QUANTILE_POINTS)
            print(f"  {op:<8}{row}")
    _report_trace_taps()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch a CLI command; returns the exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # The linter owns its flag grammar (--format, --baseline, ...);
        # dispatch before the figure-sweep flag parser can reject it.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args, config, options = _parse_config(argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    command = args[0]
    if command == "list":
        from repro.core.workloads import REGISTRY

        try:
            for name, spec in sorted(REGISTRY.items()):
                print(f"{name:<18} {spec.group:<10} {spec.display_name}")
        except BrokenPipeError:  # piped into head etc.
            pass
        return 0
    if command == "run":
        _run_workload_command(args[1:], config)
        return 0
    if command == "cache":
        return _cache_command(args[1:])
    if command == "doctor":
        return _doctor_command(options)
    if command == "trace":
        return _trace_command(args[1:], config, options)
    if command == "faults":
        from repro.core.experiments import figure8_faults

        workloads = args[1:] or None
        try:
            table = figure8_faults.run(config, workloads=workloads,
                                       fresh=options.fresh)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(table.to_text())
        return 0
    if command == "cluster":
        from repro.core.experiments import figure9_cluster
        from repro.core.store import ResultStore, default_cache_dir
        from repro.core.supervise import SweepCellError
        from repro.cluster.sweep import ClusterSweepEngine
        from repro.faults.retry import RetryPolicy

        store = None if options.no_cache else ResultStore()
        policy = RetryPolicy.for_harness(timeout=options.timeout,
                                         retries=options.retries)
        engine = ClusterSweepEngine(
            jobs=options.jobs, use_cache=not options.no_cache, store=store,
            retry=policy, checkpoint_dir=default_cache_dir() / "checkpoints",
            resume=options.resume)
        if len(args) > 1 and args[1] == "calibrate":
            return _calibrate_command(args[2:], config, options)
        workload = args[1] if len(args) > 1 else "data-serving"
        fleets = [options.fleet] if options.fleet is not None else None
        try:
            if options.costs == "delta":
                table = figure9_cluster.delta_table(
                    config, engine=engine, workload=workload, fleets=fleets,
                    replication=options.replication)
            else:
                table = figure9_cluster.run(
                    config, engine=engine, workload=workload, fleets=fleets,
                    replication=options.replication, costs=options.costs)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        except SweepCellError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(table.to_text())
        _report_trace_taps()
        return 0
    if command == "verify":
        from repro.core.paper import verify

        report = verify(config)
        print(report.to_text())
        return 0 if all(row["OK"] == "yes" for row in report.rows) else 1
    if command == "ablations":
        from repro.core.experiments import ablations

        for experiment in (ablations.narrow_cores, ablations.window_size,
                           ablations.llc_latency):
            print(experiment(config).to_text())
            print()
        return 0
    from repro.core.supervise import SweepCellError

    if command == "all":
        from repro.core.experiments import ALL_EXPERIMENTS

        engine = _build_engine(options)
        for name in ALL_EXPERIMENTS:
            try:
                _run_figure(name, config, options, engine=engine)
            except SweepCellError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print()
        return 0
    from repro.core.experiments import ALL_EXPERIMENTS

    if command in ALL_EXPERIMENTS:
        try:
            _run_figure(command, config, options)
        except SweepCellError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    print(f"unknown command {command!r}; try `python -m repro help`")
    return 2


def _entry() -> int:
    try:
        return main()
    except BrokenPipeError:
        # `python -m repro trace ls | head` closes our stdout early;
        # follow the Unix convention (die quietly) instead of dumping a
        # traceback.  Detach stdout so interpreter shutdown does not
        # raise the same error again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    raise SystemExit(_entry())

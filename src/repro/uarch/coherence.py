"""Read-write-sharing directory (Figure 6 methodology).

The paper measures the fraction of LLC data references that access cache
blocks most recently *written* by a thread running on a remote core, by
splitting the workload across two sockets so such accesses appear as
remote-cache hits.  We keep an explicit last-writer directory over line
addresses: every store records (core, socket); every L2 data miss checks
whether the block's most recent writer was a different core, and whether
that core sits on the other socket.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SharingStats:
    llc_data_refs: int = 0
    remote_dirty_hits: int = 0
    os_remote_dirty_hits: int = 0
    remote_socket_hits: int = 0

    @property
    def remote_dirty_fraction(self) -> float:
        if not self.llc_data_refs:
            return 0.0
        return self.remote_dirty_hits / self.llc_data_refs

    @property
    def app_remote_dirty_hits(self) -> int:
        return self.remote_dirty_hits - self.os_remote_dirty_hits


class LastWriterDirectory:
    """Tracks the last writing core per cache line.

    The directory is unbounded (a dict); scale-out datasets touch many
    lines but only written lines are recorded.
    """

    def __init__(self, line_bytes: int = 64, cores_per_socket: int = 2) -> None:
        self._line_shift = line_bytes.bit_length() - 1
        self._line_bytes = line_bytes
        self.cores_per_socket = cores_per_socket
        self._writer: dict[int, int] = {}
        self.stats = SharingStats()
        # Per-core invalidation hooks (registered by the Chip): a write
        # invalidates the line in every *other* core's private caches, so
        # their next access misses and is classified — without this,
        # recurring sharing would be counted only once per core.
        self._invalidators: dict[int, object] = {}

    def attach_core(self, core_id: int, invalidate) -> None:
        """Register a callable(addr) that drops a line from the private
        caches of ``core_id``."""
        self._invalidators[core_id] = invalidate

    def socket_of(self, core: int) -> int:
        return core // self.cores_per_socket

    def record_write(self, addr: int, core: int) -> None:
        line = addr >> self._line_shift
        previous = self._writer.get(line)
        self._writer[line] = core
        if self._invalidators and previous != core:
            line_addr = line << self._line_shift
            for other_id, invalidate in self._invalidators.items():
                if other_id != core:
                    invalidate(line_addr)

    def classify_llc_data_ref(self, addr: int, core: int, is_os: bool) -> bool:
        """Account an LLC data reference; True if it hits remote-dirty data."""
        stats = self.stats
        stats.llc_data_refs += 1
        writer = self._writer.get(addr >> self._line_shift)
        if writer is None or writer == core:
            return False
        stats.remote_dirty_hits += 1
        if is_os:
            stats.os_remote_dirty_hits += 1
        if self.socket_of(writer) != self.socket_of(core):
            stats.remote_socket_hits += 1
        # Reading migrates ownership for subsequent classification only when
        # the reader later writes; reads alone leave the writer unchanged.
        return True

    def clear(self) -> None:
        self._writer.clear()

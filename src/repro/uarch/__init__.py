"""Micro-architectural simulator substrate.

This package models the server processor of the paper's Table 1 — an
Intel Xeon X5670-class chip: aggressive 4-wide out-of-order cores, a
three-level cache hierarchy (32 KB split L1, 256 KB per-core L2, 12 MB
shared LLC), hardware prefetchers (next-line, adjacent-line, HW stream,
DCU streamer), two-way SMT, a last-writer coherence directory, and DDR3
bandwidth accounting.  It exposes the same performance-counter surface
the paper reads through VTune.
"""

from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp, OpKind
from repro.uarch.cache import Cache, CacheStats
from repro.uarch.hierarchy import MemoryHierarchy, AccessResult
from repro.uarch.core import Core, CoreResult
from repro.uarch.inorder import InOrderCore
from repro.uarch.chip import Chip, ChipResult
from repro.uarch.counters import CounterSet

__all__ = [
    "MachineParams",
    "MicroOp",
    "OpKind",
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "AccessResult",
    "Core",
    "CoreResult",
    "InOrderCore",
    "Chip",
    "ChipResult",
    "CounterSet",
]

"""Micro-op record.

Workloads (via :mod:`repro.machine.runtime`) compile to a stream of
micro-ops.  A micro-op carries everything the core model needs: its kind,
program counter (for instruction-fetch behaviour), memory address for
loads/stores, true data dependencies on earlier micro-ops, and tags for
the App/OS split and the issuing software thread.
"""

from __future__ import annotations

from enum import IntEnum


class OpKind(IntEnum):
    """Micro-op categories distinguished by the core model."""

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH = 3


class MicroOp:
    """One dynamic micro-op.

    ``deps`` holds sequence numbers (per-thread, monotonically increasing)
    of the micro-ops whose results this one consumes; the core may only
    issue it once all of them have completed.
    """

    __slots__ = ("kind", "pc", "addr", "deps", "seq", "is_os", "tid", "taken", "target")

    def __init__(
        self,
        kind: int,
        pc: int,
        addr: int = 0,
        deps: tuple[int, ...] = (),
        seq: int = 0,
        is_os: bool = False,
        tid: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.kind = kind
        self.pc = pc
        self.addr = addr
        self.deps = deps
        self.seq = seq
        self.is_os = is_os
        self.tid = tid
        self.taken = taken
        self.target = target

    def is_memory(self) -> bool:
        return self.kind == OpKind.LOAD or self.kind == OpKind.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = OpKind(self.kind).name
        extra = f" addr={self.addr:#x}" if self.is_memory() else ""
        os_tag = " os" if self.is_os else ""
        return f"<uop #{self.seq} {name} pc={self.pc:#x}{extra} deps={self.deps}{os_tag}>"

"""Branch predictor: gshare direction predictor plus a BTB.

The core charges a frontend redirect penalty on mispredictions; the
paper's desktop/parallel comparison workloads (§4, Fig. 1 discussion)
stall noticeably on wrong-path flushes, so the predictor must see real
taken/not-taken streams from the workloads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchStats:
    branches: int = 0
    mispredicts: int = 0
    btb_misses: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class BranchPredictor:
    """Bimodal 2-bit-counter direction predictor with a direct-mapped BTB.

    A large per-site counter table captures the per-branch bias that
    dominates compiled code; capacity pressure on the BTB (4 K entries
    against multi-megabyte instruction footprints) is what penalizes
    large-code workloads, as on the real machine.
    """

    def __init__(self, table_bits: int = 16, btb_entries: int = 4096) -> None:
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self._counters = bytearray([2] * self.table_size)  # weakly taken
        self._history = 0
        self._history_mask = self.table_size - 1
        self._btb: dict[int, int] = {}
        self._btb_entries = btb_entries
        self.stats = BranchStats()

    def predict_and_update(self, pc: int, taken: bool, target: int) -> tuple[bool, bool]:
        """Predict one branch and train on its outcome.

        Returns ``(direction_mispredicted, btb_missed)``.  A direction
        misprediction flushes the pipeline (full penalty); a correct
        direction with a wrong/missing BTB target only re-steers the
        frontend (a short bubble).  Branch sites are identified at
        instruction-line granularity.
        """
        stats = self.stats
        stats.branches += 1
        site = pc >> 4
        index = site & self._history_mask
        counter = self._counters[index]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        btb_missed = False
        if taken and not mispredicted:
            btb_slot = site % self._btb_entries
            if self._btb.get(btb_slot) != target:
                stats.btb_misses += 1
                btb_missed = True
        if taken:
            self._btb[site % self._btb_entries] = target
        # Update the 2-bit counter and global history.
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask
        if mispredicted:
            stats.mispredicts += 1
        return mispredicted, btb_missed

"""Hardware prefetchers of the X5670 (§4.3 and BIOS switches of §3).

Four prefetchers are modelled, matching the processor documentation names
used in the paper:

* **L1-I next-line** — on an instruction fetch of line N, prefetch N+1
  into the L1-I.
* **Adjacent-line** — on an L2 demand miss, also fetch the buddy line
  that completes the aligned 128-byte pair.
* **HW prefetcher** (L2 stream prefetcher / MLC streamer) — detects
  ascending or descending streams within a 4 KB page and runs ahead of
  the demand stream by a configurable degree.
* **DCU streamer** — L1-D next-line prefetcher triggered by loads.

Each prefetcher only *proposes* line addresses; the hierarchy decides how
to install them (which levels fill) and accounts usefulness/pollution.
"""

from __future__ import annotations

#: Shared "no proposals" result — callers only iterate proposal lists,
#: and the stream prefetcher returns empty on most observations, so the
#: hot path avoids allocating a fresh empty list per access.
_NO_PROPOSALS: list[int] = []


class NextLinePrefetcher:
    """L1-I next-line prefetcher (also used as the DCU streamer)."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes
        self._last_line = -1

    def observe(self, addr: int, hit: bool) -> list[int]:
        line = addr // self.line_bytes
        proposals: list[int] = []
        if line != self._last_line:
            proposals.append((line + 1) * self.line_bytes)
        self._last_line = line
        return proposals


class AdjacentLinePrefetcher:
    """Fetch the buddy line of a missing line (128-byte-pair completion)."""

    def __init__(self, line_bytes: int = 64) -> None:
        self.line_bytes = line_bytes

    def observe(self, addr: int, hit: bool) -> list[int]:
        if hit:
            return []
        line = addr // self.line_bytes
        return [(line ^ 1) * self.line_bytes]


class StreamEntry:
    """Per-page stream-detector state (direction + confidence)."""
    __slots__ = ("last_line", "direction", "confidence")

    def __init__(self, last_line: int) -> None:
        self.last_line = last_line
        self.direction = 0
        self.confidence = 0


class StreamPrefetcher:
    """L2 HW (stream) prefetcher: per-4KB-page stream detection.

    A page is tracked in a small table; two consecutive accesses in the
    same direction within a page train the entry, after which it issues
    ``degree`` prefetches ahead of the demand stream.
    """

    def __init__(
        self,
        line_bytes: int = 64,
        page_bytes: int = 4096,
        table_entries: int = 32,
        degree: int = 2,
        train_threshold: int = 1,
    ) -> None:
        self.line_bytes = line_bytes
        self.lines_per_page = page_bytes // line_bytes
        self.page_bytes = page_bytes
        self.table_entries = table_entries
        self.degree = degree
        self.train_threshold = train_threshold
        self._table: dict[int, StreamEntry] = {}
        # Power-of-two sizes (every modelled machine) use shifts on the
        # observe hot path; -1 falls back to division.
        self._line_shift = (line_bytes.bit_length() - 1
                            if line_bytes & (line_bytes - 1) == 0 else -1)
        self._page_shift = (page_bytes.bit_length() - 1
                            if page_bytes & (page_bytes - 1) == 0 else -1)

    def observe(self, addr: int, hit: bool) -> list[int]:
        shift = self._line_shift
        if shift >= 0:
            line = addr >> shift
            page = addr >> self._page_shift
        else:
            line = addr // self.line_bytes
            page = addr // self.page_bytes
        entry = self._table.get(page)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # FIFO replacement of the oldest tracked page.
                self._table.pop(next(iter(self._table)))
            self._table[page] = StreamEntry(line)
            return _NO_PROPOSALS
        # LRU bump for the page entry.
        del self._table[page]
        self._table[page] = entry
        delta = line - entry.last_line
        if delta == 0:
            return _NO_PROPOSALS
        proposals: list[int] = []
        if delta != 0:
            direction = 1 if delta > 0 else -1
            if direction == entry.direction:
                entry.confidence = min(entry.confidence + 1, 4)
            else:
                entry.direction = direction
                entry.confidence = 0
            if entry.confidence >= self.train_threshold:
                page_base = page * self.lines_per_page
                page_end = page_base + self.lines_per_page
                for i in range(1, self.degree + 1):
                    target = line + direction * i
                    if page_base <= target < page_end:
                        proposals.append(target * self.line_bytes)
            entry.last_line = line
        return proposals

    def reset(self) -> None:
        self._table.clear()
